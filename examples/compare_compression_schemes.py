"""Compare all six synchronization schemes on the CIFAR-like workload.

Reproduces a miniature of the paper's Table 2 row for AlexNet/CIFAR-10:
PSGD, signSGD majority vote, EF-signSGD, SSDM, Marsit-K and Marsit all
train the same model on the same data stream; the table shows how accuracy,
traffic, and simulated time trade off.

Usage::

    python examples/compare_compression_schemes.py [rounds]
"""

import sys

from repro.bench import WORKLOADS, build_strategy, format_table, strategy_names
from repro.train import DistributedTrainer, TrainConfig


def main(rounds: int = 120) -> None:
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    num_workers = 4
    rows = []
    for name in strategy_names():
        strategy = build_strategy(name, spec, num_workers, train_set)
        config = TrainConfig(
            num_workers=num_workers,
            rounds=rounds,
            batch_size=spec.batch_size,
            topology="ring",
            eval_every=max(1, rounds // 8),
            seed=0,
        )
        result = DistributedTrainer(
            spec.model_factory, train_set, test_set, strategy, config
        ).run()
        rows.append(
            [
                name,
                f"{100 * result.best_accuracy():.2f}",
                f"{result.total_comm_bytes / 1e6:.3f}",
                f"{result.total_sim_time_s * 1e3:.2f}",
                f"{result.avg_bits_per_element:.2f}",
            ]
        )
        print(f"finished {name}")
    print()
    print(
        format_table(
            ["scheme", "best acc (%)", "comm (MB)", "sim time (ms)", "bits/elem"],
            rows,
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
