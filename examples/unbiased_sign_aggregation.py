"""The heart of Marsit: unbiased one-bit aggregation without decompression.

This example uses no training at all — it demonstrates the algorithmic core
on raw vectors:

1. the ``⊙`` merge (Eq. 2) turns a chain of one-bit exchanges into an
   unbiased sample of the *mean sign* across workers;
2. cascading compression (Section 3.2), the naive alternative, destroys the
   direction: its matching rate against the exact aggregate collapses to a
   coin flip and its variance explodes with the worker count (Theorem 3).

Usage::

    python examples/unbiased_sign_aggregation.py
"""

import numpy as np

from repro.allreduce import cascading_ring_allreduce
from repro.comm import Cluster, ring_topology
from repro.compression import SSDMCompressor
from repro.core import MarsitConfig, MarsitSynchronizer
from repro.theory import cascading_deviation_bound, matching_rate

DIMENSION = 5000
TRIALS = 200


def main() -> None:
    rng = np.random.default_rng(0)

    for num_workers in (3, 8):
        gradients = [rng.standard_normal(DIMENSION) for _ in range(num_workers)]
        exact_mean = np.mean(gradients, axis=0)
        mean_sign = np.mean([np.sign(g) + (g == 0) for g in gradients], axis=0)

        # --- Marsit's one-bit consensus, averaged over many rounds -------
        accumulated = np.zeros(DIMENSION)
        for trial in range(TRIALS):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=1.0, seed=trial), num_workers, DIMENSION
            )
            cluster = Cluster(ring_topology(num_workers))
            report = sync.synchronize(
                cluster, [g.copy() for g in gradients], round_idx=1
            )
            accumulated += report.global_updates[0]
        marsit_estimate = accumulated / TRIALS
        marsit_bias = np.abs(marsit_estimate - mean_sign).mean()

        # --- Cascading compression, a single round ----------------------
        cluster = Cluster(ring_topology(num_workers))
        rngs = [np.random.default_rng(10 + i) for i in range(num_workers)]
        cascaded = cascading_ring_allreduce(
            cluster, [g.copy() for g in gradients], SSDMCompressor(), rngs
        )[0]

        print(f"M = {num_workers}")
        print(
            f"  marsit:    E[one-bit consensus] vs mean sign, "
            f"mean |bias| = {marsit_bias:.4f}  (sampling noise "
            f"~{1.0 / np.sqrt(TRIALS):.3f})"
        )
        print(
            f"  marsit:    single-round matching rate vs exact mean = "
            f"{matching_rate(marsit_estimate, exact_mean):.3f}"
        )
        print(
            f"  cascading: matching rate vs exact mean = "
            f"{matching_rate(cascaded, exact_mean):.3f}  (coin flip = 0.500)"
        )
        deviation = float(((cascaded - exact_mean) ** 2).sum())
        bound = cascading_deviation_bound(
            DIMENSION, num_workers, max(np.linalg.norm(g) for g in gradients)
        )
        print(
            f"  cascading: ||s3 - s1||^2 = {deviation:.3e}  "
            f"(Theorem 3 bound {bound:.3e})\n"
        )


if __name__ == "__main__":
    main()
