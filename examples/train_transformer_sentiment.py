"""Train the DistilBERT-mini transformer with Marsit-driven Adam.

Shows the library's NN framework end-to-end on the sentiment workload: a
real multi-head-attention encoder, Adam preconditioning applied locally on
each worker, and one-bit Marsit synchronization — the paper's
DistilBERT/IMDb configuration at simulation scale.

Usage::

    python examples/train_transformer_sentiment.py
"""

from repro.data import imdb_like, train_test_split
from repro.nn.zoo import distilbert_mini
from repro.train import DistributedTrainer, MarsitStrategy, PSGDStrategy, TrainConfig

NUM_WORKERS = 4
ROUNDS = 150
BATCH = 16
LR = 5e-4


def model_factory():
    return distilbert_mini(
        vocab_size=128, max_len=16, dim=32, num_heads=4, num_layers=2,
        ffn_dim=64, num_classes=2, seed=7,
    )


def main() -> None:
    data = imdb_like(num_samples=2000, seq_len=16, seed=3)
    train_set, test_set = train_test_split(data, 0.25, seed=1)
    dimension = model_factory().num_parameters()
    print(f"DistilBERT-mini: {dimension:,} parameters, {NUM_WORKERS} workers\n")

    for name, strategy in (
        ("adam + fp32 (PSGD)", PSGDStrategy(lr=LR, num_workers=NUM_WORKERS,
                                            base_optimizer="adam")),
        ("adam + marsit 1-bit", MarsitStrategy(
            local_lr=LR, global_lr=2 * LR, num_workers=NUM_WORKERS,
            dimension=dimension, base_optimizer="adam",
        )),
    ):
        config = TrainConfig(
            num_workers=NUM_WORKERS, rounds=ROUNDS, batch_size=BATCH,
            topology="ring", eval_every=25, seed=0,
        )
        result = DistributedTrainer(
            model_factory, train_set, test_set, strategy, config
        ).run()
        curve = "  ".join(
            f"r{record.round_idx}:{record.test_accuracy:.2f}"
            for record in result.history
        )
        print(f"{name}")
        print(f"  accuracy curve: {curve}")
        print(
            f"  best {result.best_accuracy():.3f} | "
            f"{result.total_comm_bytes / 1e6:.2f} MB on the wire | "
            f"{result.avg_bits_per_element:.0f} bits/elem\n"
        )


if __name__ == "__main__":
    main()
