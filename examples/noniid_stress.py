"""Stress Marsit's iid assumption with label-skewed (Dirichlet) shards.

Marsit's global compensation leans on iid cloud data: "every client
compresses and obtains the same gradient in expectation" (Section 4.1.3),
which justifies applying an identical compensation on every worker.  This
example trains under increasingly skewed Dirichlet shards and shows how
Marsit and PSGD degrade — a small extension study beyond the paper.

Usage::

    python examples/noniid_stress.py
"""

from repro.bench import WORKLOADS, build_strategy, format_table
from repro.train import DistributedTrainer, TrainConfig

ROUNDS = 150
M = 4


def main() -> None:
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    rows = []
    for label, sharding, alpha in (
        ("iid", "iid", None),
        ("dirichlet a=1.0", "dirichlet", 1.0),
        ("dirichlet a=0.3", "dirichlet", 0.3),
    ):
        for scheme in ("psgd", "marsit"):
            strategy = build_strategy(scheme, spec, M, train_set)
            config = TrainConfig(
                num_workers=M,
                rounds=ROUNDS,
                batch_size=spec.batch_size,
                topology="ring",
                eval_every=25,
                seed=0,
                sharding=sharding,
                dirichlet_alpha=alpha if alpha is not None else 0.5,
            )
            result = DistributedTrainer(
                spec.model_factory, train_set, test_set, strategy, config
            ).run()
            rows.append(
                [label, scheme, f"{100 * result.best_accuracy():.2f}",
                 f"{100 * result.final_accuracy:.2f}"]
            )
            print(f"done: {label} / {scheme}")
    print()
    print(format_table(["sharding", "scheme", "best acc (%)", "final acc (%)"], rows))


if __name__ == "__main__":
    main()
