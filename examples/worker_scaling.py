"""Worker scaling: "the more GPUs participate, the faster Marsit converges".

Theorem 1 promises an O(1/sqrt(MT)) rate — linear speedup in the worker
count.  The clean law is checked on a controlled noisy quadratic in
``benchmarks/bench_theorem1_speedup.py``; this example shows how the effect
surfaces in actual training at simulation scale, in a variance-dominated
regime (batch size 2, plain SGD): PSGD's rounds-to-target shrink as workers
are added, and Marsit's attainable accuracy climbs as more workers' signs
sharpen each one-bit vote.

Usage::

    python examples/worker_scaling.py
"""

from repro.bench import format_table
from repro.data import mnist_like, train_test_split
from repro.nn.zoo import mlp
from repro.train import DistributedTrainer, MarsitStrategy, PSGDStrategy, TrainConfig

TARGET = 0.75
ROUNDS = 300


def factory():
    return mlp(64, hidden=(32,), num_classes=10, seed=7)


def main() -> None:
    data = mnist_like(num_samples=4000, size=8, noise=1.4, seed=0)
    train_set, test_set = train_test_split(data, 0.25, seed=1)
    dimension = factory().num_parameters()
    rows = []
    for m in (2, 4, 8, 16):
        for name, strategy in (
            ("psgd", PSGDStrategy(lr=0.05, num_workers=m,
                                  base_optimizer="sgd")),
            ("marsit", MarsitStrategy(local_lr=0.05, global_lr=1e-3,
                                      num_workers=m, dimension=dimension,
                                      base_optimizer="sgd")),
        ):
            config = TrainConfig(
                num_workers=m, rounds=ROUNDS, batch_size=2,
                topology="ring", eval_every=5, seed=0,
            )
            result = DistributedTrainer(
                factory, train_set, test_set, strategy, config
            ).run()
            reached = result.rounds_to_accuracy(TARGET)
            rows.append(
                [m, name,
                 reached if reached is not None else f"{ROUNDS}+",
                 f"{100 * result.best_accuracy():.1f}"]
            )
            print(f"done: M={m} {name}")
    print()
    print(format_table(
        ["M", "scheme", f"rounds to {TARGET:.0%}", "best acc (%)"], rows
    ))
    print(
        "\nMore workers: PSGD reaches the bar in fewer rounds; Marsit's "
        "best accuracy climbs as the one-bit votes sharpen.  The exact "
        "O(1/sqrt(MT)) law: benchmarks/bench_theorem1_speedup.py."
    )


if __name__ == "__main__":
    main()
