"""Write your own synchronization strategy: top-k with error feedback.

The library's trainer only needs a ``SyncStrategy`` with one method, so new
schemes compose from the existing pieces.  This example builds a top-k
sparsification strategy with per-worker error feedback (the classic
"memory" fix for biased compressors), runs it against Marsit, and prints
the accuracy/traffic trade-off.

Under MAR, sparse supports grow as they merge (see
``benchmarks/bench_related_work.py``), so this strategy gathers the sparse
messages PS-style conceptually: each worker's (indices, values) payload is
charged on the wire and the mean of the decoded vectors is the update.

Usage::

    python examples/custom_strategy.py
"""

import numpy as np

from repro.bench import WORKLOADS, build_strategy, format_table
from repro.comm.cluster import Cluster
from repro.compression.topk import TopKCompressor
from repro.train import DistributedTrainer, TrainConfig
from repro.train.strategies import StepResult, SyncStrategy


class TopKErrorFeedbackStrategy(SyncStrategy):
    """Keep the k largest coordinates of (gradient + carried error)."""

    name = "topk-ef"

    def __init__(self, lr: float, num_workers: int, k_fraction: float = 0.05,
                 momentum: float = 0.9) -> None:
        self.lr = lr
        self.num_workers = num_workers
        self.k_fraction = k_fraction
        self.momentum = momentum
        self._memories = [None] * num_workers
        self._buffers = [None] * num_workers

    def step(self, cluster: Cluster, grads, round_idx: int) -> StepResult:
        dimension = grads[0].size
        k = max(1, int(self.k_fraction * dimension))
        compressor = TopKCompressor(k=k)
        decoded = []
        total_bytes = 0
        for worker, grad in enumerate(grads):
            if self._buffers[worker] is None:
                self._buffers[worker] = np.zeros(dimension)
                self._memories[worker] = np.zeros(dimension)
            self._buffers[worker] = (
                self.momentum * self._buffers[worker] + grad
            )
            corrected = (
                self.lr * self._buffers[worker] + self._memories[worker]
            )
            payload = compressor.compress(corrected)
            total_bytes += payload.nbytes
            dense = payload.decode()
            self._memories[worker] = corrected - dense
            decoded.append(dense)
        # Charge the sparse payloads on a ring circulation (gather-style).
        for hop in range(cluster.num_workers - 1):
            cluster.begin_step()
            for rank in range(cluster.num_workers):
                cluster.send(
                    rank,
                    (rank + 1) % cluster.num_workers,
                    np.zeros(total_bytes // cluster.num_workers // 8),
                    tag=f"topk{hop}",
                )
            for rank in range(cluster.num_workers):
                cluster.recv(
                    rank, (rank - 1) % cluster.num_workers, tag=f"topk{hop}"
                )
            cluster.end_step()
        update = np.mean(decoded, axis=0)
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=64.0 * self.k_fraction,
        )


def main() -> None:
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    num_workers, rounds = 4, 150
    rows = []
    strategies = {
        "topk-ef (5%)": TopKErrorFeedbackStrategy(
            lr=spec.local_lr, num_workers=num_workers, k_fraction=0.05
        ),
        "marsit": build_strategy("marsit", spec, num_workers, train_set),
        "psgd": build_strategy("psgd", spec, num_workers, train_set),
    }
    for name, strategy in strategies.items():
        config = TrainConfig(
            num_workers=num_workers, rounds=rounds,
            batch_size=spec.batch_size, topology="ring", eval_every=25,
            seed=0,
        )
        result = DistributedTrainer(
            spec.model_factory, train_set, test_set, strategy, config
        ).run()
        rows.append(
            [name, f"{100 * result.best_accuracy():.2f}",
             f"{result.total_comm_bytes / 1e6:.3f}",
             f"{result.avg_bits_per_element:.2f}"]
        )
        print(f"done: {name}")
    print()
    print(format_table(["scheme", "best acc (%)", "comm (MB)", "bits/elem"],
                       rows))


if __name__ == "__main__":
    main()
