"""Straggler study: one slow link under ring vs torus vs PS.

A synchronous ring stage is only as fast as its slowest link, so a single
degraded link stalls every RAR hop that crosses it.  The 2D torus routes
most traffic around it, and a PS star only suffers if the slow link touches
the server.  This example times one PSGD round under each topology with one
link at 10% speed.

Usage::

    python examples/straggler_links.py
"""

import numpy as np

from repro.allreduce.ps import ps_allreduce
from repro.allreduce.ring import ring_allreduce_mean
from repro.allreduce.torus import torus_allreduce_mean
from repro.bench import format_table
from repro.comm.cluster import Cluster
from repro.comm.timing import CostModel
from repro.comm.topology import ring_topology, star_topology, torus_topology

M = 8
DIMENSION = 200_000
SLOW = {"factor": 0.1}


def _one_round(topology_name, slow_link):
    model = CostModel(latency_s=5e-6, bandwidth_Bps=1.25e8)
    rng = np.random.default_rng(0)
    vectors = [rng.standard_normal(DIMENSION) for _ in range(M)]
    factors = {slow_link: SLOW["factor"]} if slow_link else None
    if topology_name == "ring":
        cluster = Cluster(ring_topology(M), cost_model=model,
                          link_speed_factors=factors)
        ring_allreduce_mean(cluster, vectors)
    elif topology_name == "torus":
        cluster = Cluster(torus_topology(2, 4), cost_model=model,
                          link_speed_factors=factors)
        torus_allreduce_mean(cluster, vectors)
    else:
        cluster = Cluster(star_topology(M, server=0), cost_model=model,
                          link_speed_factors=factors)
        ps_allreduce(
            cluster,
            [np.asarray(v, dtype=np.float32) for v in vectors],
            aggregate=lambda xs: np.mean(xs, axis=0),
            concurrent_uploads=True,
        )
    return 1e3 * cluster.timeline.total


def main() -> None:
    cases = [
        ("ring", None, "healthy"),
        ("ring", (0, 1), "slow link 0->1"),
        ("torus", None, "healthy"),
        ("torus", (0, 1), "slow row link 0->1"),
        ("star", None, "healthy"),
        ("star", (1, 0), "slow upload 1->server"),
    ]
    rows = []
    for topology, slow_link, label in cases:
        elapsed = _one_round(topology, slow_link)
        rows.append([topology, label, f"{elapsed:.3f}"])
    print(format_table(["topology", "condition", "one round (ms)"], rows))
    print(
        "\nThe ring pays the slow link on every one of its 2(M-1) stages; "
        "the torus only on the stages of the one affected row ring; the PS "
        "star only on that worker's upload."
    )


if __name__ == "__main__":
    main()
