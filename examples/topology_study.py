"""Topology study: the same training job under RAR, TAR, and PS.

Shows how the communication substrate changes the per-round time profile:
the ring pays 2(M-1) sequential hops, the 2D torus only 2(rows+cols-2), and
the parameter server pays server-link congestion — while all three move the
data needed for the same learning trajectory.

Usage::

    python examples/topology_study.py
"""

from repro.bench import WORKLOADS, build_strategy, format_table
from repro.train import DistributedTrainer, TrainConfig

ROUNDS = 40
M = 8


def main() -> None:
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    rows = []
    for scheme in ("psgd", "marsit"):
        for topology, torus_shape in (
            ("ring", None),
            ("torus", (2, 4)),
            ("star", None),
        ):
            if scheme == "marsit" and topology == "star":
                continue  # Marsit is a multi-hop scheme; PS has no hops
            strategy = build_strategy(scheme, spec, M, train_set)
            config = TrainConfig(
                num_workers=M,
                rounds=ROUNDS,
                batch_size=spec.batch_size,
                topology=topology,
                torus_shape=torus_shape,
                eval_every=ROUNDS,
                seed=0,
            )
            result = DistributedTrainer(
                spec.model_factory, train_set, test_set, strategy, config
            ).run()
            label = {"ring": "RAR", "torus": "TAR 2x4", "star": "PS"}[topology]
            breakdown = result.time_breakdown_s
            rows.append(
                [
                    scheme,
                    label,
                    f"{100 * result.final_accuracy:.1f}",
                    f"{result.total_comm_bytes / 1e6:.3f}",
                    f"{1e6 * breakdown['computation'] / ROUNDS:.1f}",
                    f"{1e6 * breakdown['compression'] / ROUNDS:.1f}",
                    f"{1e6 * breakdown['communication'] / ROUNDS:.1f}",
                ]
            )
    print(
        format_table(
            [
                "scheme",
                "topology",
                "acc (%)",
                "comm (MB)",
                "compute (us/rnd)",
                "compress (us/rnd)",
                "comm (us/rnd)",
            ],
            rows,
        )
    )
    print(
        "\nNote the TAR rows: same bytes as RAR (all-reduce is volume-"
        "optimal either way) but fewer sequential hops, hence less "
        "communication time — Figure 5's effect."
    )


if __name__ == "__main__":
    main()
