"""Quickstart: train one model with Marsit and compare against PSGD.

Runs the bundled MNIST-like workload with 8 simulated workers on a ring,
once with full-precision PSGD and once with Marsit's one-bit
synchronization, then prints accuracy, bytes on the wire, and simulated
wall-clock for both.

Usage::

    python examples/quickstart.py
"""

from repro import quick_train


def main() -> None:
    print("training MNIST-like / MLP with 8 workers on a ring...\n")
    rows = []
    for strategy in ("psgd", "marsit", "marsit-k"):
        result = quick_train(strategy=strategy, num_workers=8, rounds=120)
        rows.append(
            (
                strategy,
                result.final_accuracy,
                result.best_accuracy(),
                result.total_comm_bytes / 1e6,
                result.total_sim_time_s * 1e3,
                result.avg_bits_per_element,
            )
        )
    header = (
        f"{'scheme':<10} {'final acc':>9} {'best acc':>9} "
        f"{'comm (MB)':>10} {'sim (ms)':>9} {'bits/elem':>9}"
    )
    print(header)
    print("-" * len(header))
    for name, final, best, mb, ms, bits in rows:
        print(
            f"{name:<10} {final:>9.3f} {best:>9.3f} {mb:>10.3f} "
            f"{ms:>9.2f} {bits:>9.2f}"
        )
    psgd_mb = rows[0][3]
    marsit_mb = rows[1][3]
    print(
        f"\nMarsit moved {100 * (1 - marsit_mb / psgd_mb):.1f}% fewer bytes "
        "than PSGD at comparable accuracy."
    )


if __name__ == "__main__":
    main()
