"""Terminal plots: accuracy-vs-bytes curves without a plotting stack.

Renders a Figure-4b-style accuracy-vs-communication plot with the built-in
ASCII plotter — handy on remote boxes where the results files are all you
have.

Usage::

    python examples/ascii_curves.py
"""

from repro.bench import WORKLOADS, build_strategy
from repro.bench.reporting import ascii_plot
from repro.train import DistributedTrainer, TrainConfig

ROUNDS = 150
M = 4


def main() -> None:
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    curves = {}
    for name in ("psgd", "signsgd", "marsit"):
        strategy = build_strategy(name, spec, M, train_set)
        config = TrainConfig(
            num_workers=M, rounds=ROUNDS, batch_size=spec.batch_size,
            topology="ring", eval_every=10, seed=0,
        )
        result = DistributedTrainer(
            spec.model_factory, train_set, test_set, strategy, config
        ).run()
        curves[name] = [
            (record.comm_bytes / 1e6, record.test_accuracy)
            for record in result.history
        ]
        print(f"done: {name}")
    print("\naccuracy vs communication (MB) — Figure 4b at a glance\n")
    print(ascii_plot(curves, width=70, height=18, y_range=(0.0, 1.0)))


if __name__ == "__main__":
    main()
