"""Fault tolerance: sign-flipping workers vs mean- and vote-based schemes.

signSGD with majority vote is "communication efficient and fault tolerant"
(paper ref [13]): a minority of adversarial workers that invert their
gradients cannot flip the per-coordinate majority.  Mean-based aggregation
(PSGD) has no such protection — each adversary cancels one honest worker.
Marsit's stochastic one-bit consensus sits in between: the adversary shifts
the sign probabilities but cannot pin them.

Usage::

    python examples/fault_tolerance.py
"""

from repro.bench import WORKLOADS, build_strategy, format_table
from repro.train import DistributedTrainer, TrainConfig

M = 5
ROUNDS = 150


def main() -> None:
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    rows = []
    for byzantine in (0, 1):
        for scheme in ("psgd", "signsgd", "marsit"):
            strategy = build_strategy(scheme, spec, M, train_set)
            config = TrainConfig(
                num_workers=M,
                rounds=ROUNDS,
                batch_size=spec.batch_size,
                topology="ring",
                eval_every=25,
                seed=0,
                byzantine_workers=byzantine,
            )
            result = DistributedTrainer(
                spec.model_factory, train_set, test_set, strategy, config
            ).run()
            rows.append(
                [
                    byzantine,
                    scheme,
                    f"{100 * result.best_accuracy():.2f}",
                    "yes" if result.diverged else "no",
                ]
            )
            print(f"done: byzantine={byzantine} {scheme}")
    print()
    print(
        format_table(
            ["byzantine workers", "scheme", "best acc (%)", "diverged"], rows
        )
    )


if __name__ == "__main__":
    main()
