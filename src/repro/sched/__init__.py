"""Plan/compile/execute pipeline for synchronization rounds.

``repro.sched`` holds the topology-agnostic half of the one-bit machinery:
the :class:`~repro.sched.plan.SyncPlan` IR and the two interpreters that run
any plan.  The per-topology compilers live next to their hand-written
schedules in :mod:`repro.allreduce` and are reached through that package's
topology registry.
"""

from __future__ import annotations

from repro.sched.executor import LaneStackedExecutor, ScalarExecutor
from repro.sched.plan import (
    Barrier,
    CompileContext,
    FpAllReduce,
    Gather,
    GridSpec,
    Merge,
    MergeSign,
    Output,
    Pack,
    Restack,
    SendRecv,
    Step,
    SyncPlan,
    Transfer,
    Unstack,
    full_precision_plan,
    plan_segment_lengths,
)

__all__ = [
    "Barrier",
    "CompileContext",
    "FpAllReduce",
    "Gather",
    "GridSpec",
    "LaneStackedExecutor",
    "Merge",
    "MergeSign",
    "Output",
    "Pack",
    "Restack",
    "ScalarExecutor",
    "SendRecv",
    "Step",
    "SyncPlan",
    "Transfer",
    "Unstack",
    "executor_names",
    "full_precision_plan",
    "get_executor",
    "plan_segment_lengths",
]

_EXECUTORS = {
    "scalar": ScalarExecutor(),
    "batched": LaneStackedExecutor(),
}


def executor_names() -> tuple[str, ...]:
    """Registered engine names, for dynamic validation messages."""
    return tuple(sorted(_EXECUTORS))


def get_executor(name: str):
    """Look up an executor by engine name (``"scalar"`` / ``"batched"``)."""
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"engine must be one of {', '.join(executor_names())}, "
            f"got {name!r}"
        ) from None
