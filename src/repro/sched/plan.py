"""The SyncPlan IR: a declarative schedule for one synchronization round.

A :class:`SyncPlan` is a flat, ordered list of *steps* over named *grids*.
A grid is a (lane, segment) matrix of packed sign vectors — the same shape
:class:`~repro.allreduce.ring.PackedLaneGrid` materializes — annotated with
which cluster rank owns each lane.  Per-topology **compilers** (living next
to their hand-written schedules in :mod:`repro.allreduce`) lower a topology
into a plan once; exactly two **executors** (:mod:`repro.sched.executor`)
interpret any plan, so adding a topology never touches executor code.

Steps
-----
``Pack``
    Pack the signs of each lane's slice ``matrix[rank, start:stop]`` into
    ``num_segments`` segments (``numpy.array_split`` boundaries).
``Restack`` / ``Unstack``
    Re-shard data between grids (e.g. the torus row phase's owned segment
    re-split across the column grid, and back).
``SendRecv`` + ``MergeSign``
    One reduce hop: every transfer's payload crosses the wire inside one
    synchronous step, then each receiver merges via Algorithm 1's ``⊙``
    (transient tie-break drawn from the *receiving* rank's rng stream).
    A ``SendRecv`` is always immediately followed by its ``MergeSign``;
    executors fuse the pair into a single accounted step.  Merges are
    grouped into *waves*: within a wave every destination lane is unique,
    and waves execute in order, which pins the per-rank rng draw order so
    both executors consume identical stream prefixes.
``Gather``
    One all-gather/broadcast hop: payloads move, nothing is merged.
``Barrier``
    Opens or closes a tracing phase span (``reduce-scatter`` etc.) and
    optionally charges the up-front pack/compress cost inside it.
``FpAllReduce``
    The full-precision escape hatch for K-sync rounds: delegate the whole
    round to the topology's registered mean all-reduce.

The IR is data, not code: plans serialize to canonical JSON (stable key
order, no floats) and hash to a 12-hex-digit digest used for golden
snapshot tests and run reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Union

__all__ = [
    "Barrier",
    "CompileContext",
    "FpAllReduce",
    "Gather",
    "GridSpec",
    "Merge",
    "MergeSign",
    "Output",
    "Pack",
    "Restack",
    "SendRecv",
    "Step",
    "SyncPlan",
    "Transfer",
    "Unstack",
    "full_precision_plan",
    "plan_segment_lengths",
]


def plan_segment_lengths(total: int, parts: int) -> list[int]:
    """Segment lengths produced by ``numpy.array_split(range(total), parts)``.

    Pure-integer twin of the split the executors perform, so compilers can
    reason about segment sizes without touching numpy.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    base, extra = divmod(total, parts)
    return [base + 1 if i < extra else base for i in range(parts)]


@dataclass(frozen=True)
class CompileContext:
    """Everything a topology compiler may depend on.

    ``meta`` carries the topology's own annotations (torus ``rows``/``cols``,
    tree ``arity``/``root``, halving-doubling ``order``); ``segment_elems``
    is Marsit's optional pipelining chunk size (ring only).
    """

    num_workers: int
    dimension: int
    meta: Mapping[str, Any] = field(default_factory=dict)
    segment_elems: int | None = None


@dataclass(frozen=True)
class GridSpec:
    """A named (lane, segment) matrix of packed sign vectors.

    ``lane_ranks[lane]`` is the cluster rank that owns the lane — the rank
    whose rng stream pays for merges into it and whose mailbox receives its
    transfers.
    """

    name: str
    lane_ranks: tuple[int, ...]
    num_segments: int


@dataclass(frozen=True)
class Transfer:
    """Move segment ``seg`` of ``src_lane`` to the same slot of ``dst_lane``."""

    src_lane: int
    dst_lane: int
    seg: int


@dataclass(frozen=True)
class Merge:
    """One ``⊙`` application: fold the received copy of ``seg`` into
    ``dst_lane``'s local copy with the given vote weights."""

    dst_lane: int
    src_lane: int
    seg: int
    received_weight: int
    local_weight: int


@dataclass(frozen=True)
class Pack:
    """Pack ``matrix[rank, start:stop]`` signs into the grid, one lane per
    entry of the grid's ``lane_ranks``."""

    grid: str
    start: int
    stop: int


@dataclass(frozen=True)
class Restack:
    """Build ``grid`` by re-splitting one source segment per destination lane.

    ``sources[lane]`` names the ``(src_lane, src_seg)`` of ``src_grid``
    whose payload becomes destination lane ``lane``, split into ``parts``
    segments (``parts`` equals the destination grid's ``num_segments``).
    """

    grid: str
    src_grid: str
    sources: tuple[tuple[int, int], ...]
    parts: int


@dataclass(frozen=True)
class Unstack:
    """Concatenate each source lane's segments back into one destination slot.

    ``targets[lane]`` is the ``(dst_lane, dst_seg)`` of ``grid`` that
    receives the concatenation of ``src_grid``'s lane ``lane``.
    """

    grid: str
    src_grid: str
    targets: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class SendRecv:
    """The wire half of a reduce hop (always followed by a MergeSign)."""

    grid: str
    tag: str
    transfers: tuple[Transfer, ...]


@dataclass(frozen=True)
class MergeSign:
    """The compute half of a reduce hop.

    ``waves`` fix the merge (and therefore rng-draw) order; the ``*_elems``
    fields parameterize the cost model charges for the fused hop:
    ``compress_elems`` (``None`` when packing was pre-charged by the phase
    barrier), ``rng_elems`` transient draws, ``bitop_elems`` merge bit-ops.
    """

    grid: str
    waves: tuple[tuple[Merge, ...], ...]
    compress_elems: int | None
    rng_elems: int
    bitop_elems: int


@dataclass(frozen=True)
class Gather:
    """One broadcast/all-gather hop: transfers land verbatim, no merge."""

    grid: str
    tag: str
    transfers: tuple[Transfer, ...]


@dataclass(frozen=True)
class Barrier:
    """Open (``kind="begin"``) or close (``kind="end"``) a phase span.

    ``compress_elems`` on a begin barrier charges the up-front sign-packing
    cost inside the freshly opened span.
    """

    kind: str
    span: str = ""
    tag: str | None = None
    compress_elems: int | None = None


@dataclass(frozen=True)
class FpAllReduce:
    """Run the registered full-precision mean all-reduce for ``topology``."""

    topology: str


@dataclass(frozen=True)
class Output:
    """One grid whose lane contents are the round's result (and must agree
    across lanes — ``where`` labels the consensus-violation error)."""

    grid: str
    where: str


Step = Union[
    Pack, Restack, Unstack, SendRecv, MergeSign, Gather, Barrier, FpAllReduce
]


@dataclass(frozen=True)
class SyncPlan:
    """A compiled synchronization round.

    ``kind`` is ``"one_bit"`` or ``"full_precision"``; ``outputs`` lists the
    grids (in concatenation order) holding the agreed result of a one-bit
    plan.
    """

    kind: str
    topology: str
    num_workers: int
    dimension: int
    grids: tuple[GridSpec, ...]
    steps: tuple[Step, ...]
    outputs: tuple[Output, ...] = ()
    #: optional ``(key, value)`` string pairs recording how the plan came to
    #: be (e.g. crash recovery notes its original family and survivor set).
    #: Serialized — and therefore digested — only when non-empty, so plans
    #: without provenance keep their historical digests.
    provenance: tuple[tuple[str, str], ...] = ()

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def grid(self, name: str) -> GridSpec:
        for spec in self.grids:
            if spec.name == name:
                return spec
        raise KeyError(f"plan has no grid named {name!r}")

    def to_json_dict(self) -> dict[str, Any]:
        """Canonical pure-JSON form (every step tagged with its ``op``)."""
        steps = []
        for step in self.steps:
            entry: dict[str, Any] = {"op": type(step).__name__}
            entry.update(asdict(step))
            steps.append(entry)
        document = {
            "kind": self.kind,
            "topology": self.topology,
            "num_workers": self.num_workers,
            "dimension": self.dimension,
            "grids": [asdict(spec) for spec in self.grids],
            "steps": steps,
            "outputs": [asdict(out) for out in self.outputs],
        }
        if self.provenance:
            document["provenance"] = [list(pair) for pair in self.provenance]
        return document

    def to_json(self) -> str:
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """12-hex-digit content hash of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("ascii")).hexdigest()[:12]

    def validate(self) -> None:
        """Structural invariants every well-formed plan satisfies."""
        names = [spec.name for spec in self.grids]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate grid names in plan: {names}")
        specs = {spec.name: spec for spec in self.grids}
        for pos, step in enumerate(self.steps):
            grid_name = getattr(step, "grid", None)
            if grid_name is not None and grid_name not in specs:
                raise ValueError(
                    f"step {pos} ({type(step).__name__}) references unknown "
                    f"grid {grid_name!r}"
                )
            if isinstance(step, SendRecv):
                follower = (
                    self.steps[pos + 1] if pos + 1 < len(self.steps) else None
                )
                if not isinstance(follower, MergeSign):
                    raise ValueError(
                        f"SendRecv at step {pos} is not followed by a "
                        "MergeSign — executors fuse the pair"
                    )
                if follower.grid != step.grid:
                    raise ValueError(
                        f"SendRecv/MergeSign pair at step {pos} straddles "
                        f"grids {step.grid!r} and {follower.grid!r}"
                    )
            if isinstance(step, MergeSign):
                for wave in step.waves:
                    dsts = [merge.dst_lane for merge in wave]
                    if len(set(dsts)) != len(dsts):
                        raise ValueError(
                            f"MergeSign at step {pos} has a wave with "
                            "duplicate destination lanes"
                        )
        for out in self.outputs:
            if out.grid not in specs:
                raise ValueError(f"output references unknown grid {out.grid!r}")


def full_precision_plan(
    topology: str, num_workers: int, dimension: int
) -> SyncPlan:
    """The K-sync round plan: one FpAllReduce wrapped in its phase span."""
    return SyncPlan(
        kind="full_precision",
        topology=topology,
        num_workers=num_workers,
        dimension=dimension,
        grids=(),
        steps=(
            Barrier(kind="begin", span="fp-allreduce"),
            FpAllReduce(topology=topology),
            Barrier(kind="end", span="fp-allreduce"),
        ),
        outputs=(),
    )
