"""The two SyncPlan interpreters.

Both executors run *any* plan; the per-topology knowledge lives entirely in
the compilers (:mod:`repro.allreduce`).  They differ only in how a hop's
merges and transfers are realized:

- :class:`ScalarExecutor` keeps per-lane :class:`~repro.comm.bits.PackedBits`
  segment lists and moves one message at a time through
  ``Cluster.send``/``recv`` — the reference path.
- :class:`LaneStackedExecutor` materializes each grid as a
  :class:`~repro.allreduce.ring.PackedLaneGrid` and executes each hop as one
  fancy-index gather, one batched merge expression, and one bulk
  ``Cluster.exchange`` — the lockstep path.

Both consume identical per-rank RNG streams (a plan's merge *waves* pin the
draw order), apply identical cost-model charges, and emit identical traffic
and wire metrics, so the engines stay bit-for-bit interchangeable — the
invariant ``tests/sched/test_engine_identity.py`` enforces for every
registered topology.

Cost accounting per reduce hop (Section 4.1.1's overlap claim): the sign
extraction and the transient draw for the next segment overlap the
transfer, so only their excess over the transfer makespan is charged; the
post-receive bit merge needs the received bits and is charged in full.
``repro.allreduce`` is imported lazily inside the run methods: the compilers
over there import :mod:`repro.sched.plan` at module scope, and eager imports
here would close the cycle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.bits import PackedBits, PackedBitsBatch
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.core.sign_ops import (
    merge_sign_bits_batch,
    merge_sign_bits_packed,
    transient_vector_batch,
    transient_vector_packed,
)
from repro.sched.plan import (
    Barrier,
    FpAllReduce,
    Gather,
    GridSpec,
    MergeSign,
    Pack,
    Restack,
    SendRecv,
    SyncPlan,
    Unstack,
)

__all__ = ["LaneStackedExecutor", "ScalarExecutor"]


class _PlanExecutor:
    """Shared plan walking: barriers, charges, and the full-precision path."""

    name = "?"

    # ------------------------------------------------------------------
    # shared step handling
    # ------------------------------------------------------------------
    def _exec_barrier(self, cluster: Cluster, step: Barrier) -> None:
        tracer = cluster.obs.tracer
        if step.kind == "begin":
            if step.tag is None:
                tracer.begin(step.span, cat="phase")
            else:
                tracer.begin(step.span, cat="phase", tag=step.tag)
            if step.compress_elems is not None:
                # The first outgoing segment's signs must exist before hop 0.
                cluster.charge(
                    Phase.COMPRESSION,
                    cluster.cost_model.compress_time(step.compress_elems),
                )
        elif step.kind == "end":
            tracer.end()
        else:
            raise ValueError(f"unknown barrier kind {step.kind!r}")

    def _charge_hop(
        self, cluster: Cluster, merge: MergeSign, transfer: float
    ) -> None:
        # Sign extraction + transient draw for the next hop overlap the
        # transfer (Section 4.1.1); only the excess is critical path.
        model = cluster.cost_model
        if merge.compress_elems is not None:
            overlapped = model.compress_time(
                merge.compress_elems
            ) + model.rng_time(merge.rng_elems)
        else:
            overlapped = model.rng_time(merge.rng_elems)
        cluster.charge(Phase.COMPRESSION, max(0.0, overlapped - transfer))
        # The merge itself needs the received bits: charged in full.
        cluster.charge(
            Phase.COMPRESSION, model.bitop_time(merge.bitop_elems)
        )

    # ------------------------------------------------------------------
    # full-precision plans
    # ------------------------------------------------------------------
    def run_full_precision(
        self, plan: SyncPlan, cluster: Cluster, vectors: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Execute a ``kind="full_precision"`` plan; returns per-worker means."""
        outputs: list[np.ndarray] | None = None
        for step in plan.steps:
            if isinstance(step, Barrier):
                self._exec_barrier(cluster, step)
            elif isinstance(step, FpAllReduce):
                from repro.allreduce import get_topology

                entry = get_topology(step.topology)
                if entry.mean_allreduce is None:
                    raise ValueError(
                        f"topology {step.topology!r} has no registered "
                        "full-precision mean all-reduce"
                    )
                outputs = entry.mean_allreduce(cluster, vectors)
            else:
                raise TypeError(
                    f"unexpected step {type(step).__name__} in a "
                    "full-precision plan"
                )
        if outputs is None:
            raise ValueError("full-precision plan ran no FpAllReduce step")
        return outputs


class ScalarExecutor(_PlanExecutor):
    """Per-message reference interpreter over PackedBits segment lists."""

    name = "scalar"

    def run_one_bit(
        self,
        plan: SyncPlan,
        cluster: Cluster,
        matrix: np.ndarray,
        rngs: Sequence[np.random.Generator],
        verify_consensus: bool = True,
    ) -> PackedBits:
        from repro.allreduce.ring import split_segments

        specs = {spec.name: spec for spec in plan.grids}
        segs: dict[str, list[list[PackedBits]]] = {}
        steps = plan.steps
        pos = 0
        while pos < len(steps):
            step = steps[pos]
            if isinstance(step, Barrier):
                self._exec_barrier(cluster, step)
            elif isinstance(step, Pack):
                spec = specs[step.grid]
                segs[step.grid] = [
                    [
                        PackedBits.from_signs(part)
                        for part in split_segments(
                            matrix[rank, step.start : step.stop],
                            spec.num_segments,
                            copy=False,
                        )
                    ]
                    for rank in spec.lane_ranks
                ]
            elif isinstance(step, Restack):
                source = segs[step.src_grid]
                segs[step.grid] = [
                    source[src_lane][src_seg].split(step.parts)
                    for src_lane, src_seg in step.sources
                ]
            elif isinstance(step, Unstack):
                source = segs[step.src_grid]
                target = segs[step.grid]
                for lane, (dst_lane, dst_seg) in enumerate(step.targets):
                    target[dst_lane][dst_seg] = PackedBits.concat(source[lane])
            elif isinstance(step, SendRecv):
                merge = steps[pos + 1]
                assert isinstance(merge, MergeSign)
                self._reduce_hop(
                    cluster, specs[step.grid], segs[step.grid], step, merge,
                    rngs,
                )
                pos += 2
                continue
            elif isinstance(step, Gather):
                self._gather_hop(cluster, specs[step.grid], segs[step.grid], step)
            else:
                raise TypeError(
                    f"unexpected step {type(step).__name__} in a one-bit plan"
                )
            pos += 1
        return self._collect(plan, segs, verify_consensus)

    def _reduce_hop(
        self,
        cluster: Cluster,
        spec: GridSpec,
        rows: list[list[PackedBits]],
        send: SendRecv,
        merge: MergeSign,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        """One fused SendRecv + MergeSign hop, one synchronous step."""
        ranks = spec.lane_ranks
        metrics = cluster.obs.metrics
        faults = cluster.faults
        flips = faults is not None and faults.flips_active
        cluster.begin_step()
        for transfer in send.transfers:
            cluster.send(
                ranks[transfer.src_lane],
                ranks[transfer.dst_lane],
                rows[transfer.src_lane][transfer.seg],
                tag=send.tag,
            )
        for wave in merge.waves:
            for entry in wave:
                rank = ranks[entry.dst_lane]
                received: PackedBits = cluster.recv(
                    rank, ranks[entry.src_lane], tag=send.tag
                )
                if flips:
                    # Wire corruption lands on the received copy before the
                    # merge; the mask is keyed by (tag, link), so the
                    # batched engine applies the identical one.
                    mask = faults.flip_mask(
                        send.tag, ranks[entry.src_lane], rank, len(received)
                    )
                    if mask is not None:
                        received = received ^ mask
                local = rows[entry.dst_lane][entry.seg]
                transient = transient_vector_packed(
                    local,
                    received_weight=entry.received_weight,
                    local_weight=entry.local_weight,
                    rng=rngs[rank],
                )
                if metrics is not None:
                    # Disagreeing coordinates are exactly the ones the
                    # transient vector decides (⊙ keeps agreements verbatim).
                    metrics.counter("marsit.transient_draws").inc(
                        (received ^ local).popcount()
                    )
                    metrics.counter("marsit.merged_bits").inc(len(local))
                rows[entry.dst_lane][entry.seg] = merge_sign_bits_packed(
                    received, local, transient
                )
        elapsed = cluster.end_step(tag=send.tag)
        self._charge_hop(cluster, merge, elapsed)

    def _gather_hop(
        self,
        cluster: Cluster,
        spec: GridSpec,
        rows: list[list[PackedBits]],
        step: Gather,
    ) -> None:
        ranks = spec.lane_ranks
        cluster.begin_step()
        for transfer in step.transfers:
            cluster.send(
                ranks[transfer.src_lane],
                ranks[transfer.dst_lane],
                rows[transfer.src_lane][transfer.seg],
                tag=step.tag,
            )
        for transfer in step.transfers:
            rows[transfer.dst_lane][transfer.seg] = cluster.recv(
                ranks[transfer.dst_lane], ranks[transfer.src_lane], tag=step.tag
            )
        cluster.end_step(tag=step.tag)

    def _collect(
        self,
        plan: SyncPlan,
        segs: dict[str, list[list[PackedBits]]],
        verify_consensus: bool,
    ) -> PackedBits:
        pieces: list[PackedBits] = []
        for out in plan.outputs:
            rows = segs[out.grid]
            final = PackedBits.concat(rows[0])
            if verify_consensus:
                for lane in range(1, len(rows)):
                    if not final.equals(PackedBits.concat(rows[lane])):
                        raise AssertionError(
                            f"consensus violated after {out.where}"
                        )
            pieces.append(final)
        if len(pieces) == 1:
            return pieces[0]
        return PackedBits.concat(pieces)


class LaneStackedExecutor(_PlanExecutor):
    """Lockstep interpreter: one batched numpy op per hop over all lanes."""

    name = "batched"

    def run_one_bit(
        self,
        plan: SyncPlan,
        cluster: Cluster,
        matrix: np.ndarray,
        rngs: Sequence[np.random.Generator],
        verify_consensus: bool = True,
    ) -> PackedBits:
        from repro.allreduce.ring import PackedLaneGrid

        specs = {spec.name: spec for spec in plan.grids}
        grids: dict[str, PackedLaneGrid] = {}
        steps = plan.steps
        pos = 0
        while pos < len(steps):
            step = steps[pos]
            if isinstance(step, Barrier):
                self._exec_barrier(cluster, step)
            elif isinstance(step, Pack):
                spec = specs[step.grid]
                lanes = list(spec.lane_ranks)
                if lanes == list(range(matrix.shape[0])):
                    # Identity lane order: basic slicing keeps this a view
                    # instead of a fancy-index copy of the whole matrix.
                    rows = matrix[:, step.start : step.stop]
                else:
                    rows = matrix[lanes, step.start : step.stop]
                grids[step.grid] = PackedLaneGrid.from_sign_matrix(
                    rows, spec.num_segments
                )
            elif isinstance(step, Restack):
                source = grids[step.src_grid]
                grids[step.grid] = PackedLaneGrid.from_packed_rows(
                    [
                        source.row(src_lane, src_seg).split(step.parts)
                        for src_lane, src_seg in step.sources
                    ]
                )
            elif isinstance(step, Unstack):
                source = grids[step.src_grid]
                target = grids[step.grid]
                for lane, (dst_lane, dst_seg) in enumerate(step.targets):
                    target.set_row(
                        dst_lane,
                        dst_seg,
                        PackedBits.concat(source.segments_of(lane)),
                    )
            elif isinstance(step, SendRecv):
                merge = steps[pos + 1]
                assert isinstance(merge, MergeSign)
                self._reduce_hop(
                    cluster, specs[step.grid], grids[step.grid], step, merge,
                    rngs,
                )
                pos += 2
                continue
            elif isinstance(step, Gather):
                self._gather_hop(
                    cluster, specs[step.grid], grids[step.grid], step
                )
            else:
                raise TypeError(
                    f"unexpected step {type(step).__name__} in a one-bit plan"
                )
            pos += 1
        return self._collect(plan, grids, verify_consensus)

    def _reduce_hop(
        self,
        cluster: Cluster,
        spec: GridSpec,
        grid,
        send: SendRecv,
        merge: MergeSign,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        """One fused hop: batched merges first (payload sizes are read
        pre-merge), then the bulk exchange — the lockstep ordering."""
        ranks = spec.lane_ranks
        metrics = cluster.obs.metrics
        faults = cluster.faults
        flips = faults is not None and faults.flips_active
        exchange = [
            (
                ranks[transfer.src_lane],
                ranks[transfer.dst_lane],
                int(
                    (grid.lengths[transfer.src_lane, transfer.seg] + 7) // 8
                ),
            )
            for transfer in send.transfers
        ]
        for wave in merge.waves:
            dst = np.fromiter(
                (entry.dst_lane for entry in wave), dtype=np.int64,
                count=len(wave),
            )
            src = np.fromiter(
                (entry.src_lane for entry in wave), dtype=np.int64,
                count=len(wave),
            )
            seg = np.fromiter(
                (entry.seg for entry in wave), dtype=np.int64, count=len(wave)
            )
            received = PackedBitsBatch._trusted(
                grid.words[src, seg], grid.lengths[src, seg]
            )
            local = PackedBitsBatch._trusted(
                grid.words[dst, seg], grid.lengths[dst, seg]
            )
            if flips:
                # Same per-(tag, link) masks the scalar engine draws; the
                # fancy-indexed gather above copies, so XOR-ing rows here
                # never touches the grid's own storage.
                for row, entry in enumerate(wave):
                    mask = faults.flip_mask(
                        send.tag,
                        ranks[entry.src_lane],
                        ranks[entry.dst_lane],
                        int(received.lengths[row]),
                    )
                    if mask is not None:
                        received.words[row, : mask.words.size] ^= mask.words
            transient = transient_vector_batch(
                local,
                received_weights=np.fromiter(
                    (entry.received_weight for entry in wave),
                    dtype=np.int64,
                    count=len(wave),
                ),
                local_weights=np.fromiter(
                    (entry.local_weight for entry in wave),
                    dtype=np.int64,
                    count=len(wave),
                ),
                rngs=[rngs[ranks[entry.dst_lane]] for entry in wave],
            )
            if metrics is not None:
                # Same statistic as the scalar path, batched over lanes.
                metrics.counter("marsit.transient_draws").inc(
                    int((received ^ local).popcounts().sum())
                )
                metrics.counter("marsit.merged_bits").inc(
                    int(local.lengths.sum())
                )
            merged = merge_sign_bits_batch(received, local, transient)
            grid.words[dst, seg] = merged.words
            grid.lengths[dst, seg] = merged.lengths
        elapsed = cluster.exchange(exchange, tag=send.tag)
        self._charge_hop(cluster, merge, elapsed)

    def _gather_hop(
        self, cluster: Cluster, spec: GridSpec, grid, step: Gather
    ) -> None:
        ranks = spec.lane_ranks
        src = np.fromiter(
            (t.src_lane for t in step.transfers), dtype=np.int64,
            count=len(step.transfers),
        )
        dst = np.fromiter(
            (t.dst_lane for t in step.transfers), dtype=np.int64,
            count=len(step.transfers),
        )
        seg = np.fromiter(
            (t.seg for t in step.transfers), dtype=np.int64,
            count=len(step.transfers),
        )
        # Fancy indexing copies, so overlapping src/dst slots are safe.
        moved_words = grid.words[src, seg]
        moved_lengths = grid.lengths[src, seg]
        grid.words[dst, seg] = moved_words
        grid.lengths[dst, seg] = moved_lengths
        nbytes = (moved_lengths + 7) // 8
        cluster.exchange(
            [
                (
                    ranks[t.src_lane],
                    ranks[t.dst_lane],
                    int(nbytes[i]),
                )
                for i, t in enumerate(step.transfers)
            ],
            tag=step.tag,
        )

    def _collect(
        self, plan: SyncPlan, grids: dict, verify_consensus: bool
    ) -> PackedBits:
        pieces: list[PackedBits] = []
        for out in plan.outputs:
            grid = grids[out.grid]
            if verify_consensus and grid.num_lanes > 1:
                if (grid.lengths != grid.lengths[0]).any() or (
                    grid.words != grid.words[0]
                ).any():
                    raise AssertionError(
                        f"consensus violated after {out.where}"
                    )
            pieces.append(PackedBits.concat(grid.segments_of(0)))
        if len(pieces) == 1:
            return pieces[0]
        return PackedBits.concat(pieces)
