"""IID sharding and per-worker batch iteration.

The paper assumes cloud training where "all the local datasets have an equal
size" and data is shuffled to an identical distribution across workers
(Sections 1 and 3); :func:`shard_iid` implements exactly that, and
:class:`WorkerBatchIterator` hands every simulated worker a seeded,
independent batch stream over its shard.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import ArrayDataset

__all__ = [
    "WorkerBatchIterator",
    "shard_dirichlet",
    "shard_iid",
    "train_test_split",
]


def train_test_split(
    dataset: ArrayDataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split into train and held-out test sets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = int(len(dataset) * (1.0 - test_fraction))
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])


def shard_iid(
    dataset: ArrayDataset, num_workers: int, seed: int = 0
) -> list[ArrayDataset]:
    """Shuffle and split into equal-size per-worker shards.

    Trailing samples that do not divide evenly are dropped so every worker
    holds exactly the same count (the paper's equal-size assumption).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    per_worker = len(dataset) // num_workers
    if per_worker == 0:
        raise ValueError("dataset smaller than the number of workers")
    return [
        dataset.subset(order[w * per_worker : (w + 1) * per_worker])
        for w in range(num_workers)
    ]


def shard_dirichlet(
    dataset: ArrayDataset,
    num_workers: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_per_worker: int = 8,
) -> list[ArrayDataset]:
    """Label-skewed (non-iid) sharding via per-class Dirichlet splits.

    The paper's compensation analysis leans on iid cloud data ("every client
    compresses and obtains the same gradient in expectation", Section 4.1.3);
    this sharder creates the heterogeneous regime that *breaks* that
    assumption, for stress tests and extension studies.  Smaller ``alpha``
    means more skew (alpha -> inf recovers iid proportions).

    Samples of each class are divided among workers with Dirichlet(alpha)
    proportions; resampling repeats (bounded) until every worker has at
    least ``min_per_worker`` samples.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    for _attempt in range(50):
        assignments: list[list[int]] = [[] for _ in range(num_workers)]
        for label in range(dataset.num_classes):
            indices = np.flatnonzero(dataset.y == label)
            rng.shuffle(indices)
            proportions = rng.dirichlet([alpha] * num_workers)
            cuts = (np.cumsum(proportions)[:-1] * len(indices)).astype(int)
            for worker, chunk in enumerate(np.split(indices, cuts)):
                assignments[worker].extend(chunk.tolist())
        if all(len(a) >= min_per_worker for a in assignments):
            return [
                dataset.subset(np.array(sorted(a), dtype=np.int64))
                for a in assignments
            ]
    raise ValueError(
        "could not satisfy min_per_worker; lower it or raise alpha"
    )


class WorkerBatchIterator:
    """Endless seeded batch stream over one worker's shard.

    Batches are sampled with replacement-free passes: each epoch is a fresh
    permutation, batches are consecutive slices, and a new epoch starts
    automatically — matching the standard shuffled-epoch loader.

    ``augment=True`` applies the standard light image augmentation (random
    horizontal flip + up-to-1-pixel shift) to NCHW batches; non-image inputs
    reject the flag.
    """

    def __init__(
        self,
        shard: ArrayDataset,
        batch_size: int,
        seed: int,
        augment: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size > len(shard):
            raise ValueError("batch_size larger than shard")
        if augment and shard.x.ndim != 4:
            raise ValueError("augment=True requires NCHW image data")
        self.shard = shard
        self.batch_size = batch_size
        self.augment = augment
        self._rng = np.random.default_rng(seed)
        self._order = self._rng.permutation(len(shard))
        self._cursor = 0
        self.epochs_completed = 0

    def _augment_batch(self, x: np.ndarray) -> np.ndarray:
        out = x.copy()
        flips = self._rng.random(len(out)) < 0.5
        out[flips] = out[flips, :, :, ::-1]
        shifts = self._rng.integers(-1, 2, size=(len(out), 2))
        for index, (dy, dx) in enumerate(shifts):
            if dy or dx:
                out[index] = np.roll(out[index], (dy, dx), axis=(1, 2))
        return out

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the next ``(x, y)`` batch, reshuffling at epoch boundaries."""
        if self._cursor + self.batch_size > len(self.shard):
            self._order = self._rng.permutation(len(self.shard))
            self._cursor = 0
            self.epochs_completed += 1
        picked = self._order[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        x = self.shard.x[picked]
        if self.augment:
            x = self._augment_batch(x)
        return x, self.shard.y[picked]
