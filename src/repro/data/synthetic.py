"""Procedurally generated image-classification datasets.

Each class gets a spatially smoothed random prototype; a sample is the
prototype under a random gain/shift plus pixel noise.  The ``noise`` knob
controls class separability so that experiment accuracy curves have the same
qualitative dynamics as the paper's (fast early progress, slow saturation,
a visible gap when a synchronization scheme loses gradient information).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = [
    "ArrayDataset",
    "cifar10_like",
    "imagenet_like",
    "make_image_dataset",
    "mnist_like",
]


@dataclass
class ArrayDataset:
    """A fully materialized dataset: inputs ``x`` and integer labels ``y``."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")
        if len(self.y) and (
            self.y.min() < 0 or self.y.max() >= self.num_classes
        ):
            raise ValueError("labels out of range")

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(
            x=self.x[indices],
            y=self.y[indices],
            num_classes=self.num_classes,
            name=self.name,
        )


def _smooth_prototypes(
    rng: np.random.Generator,
    num_classes: int,
    channels: int,
    size: int,
    smoothness: float,
) -> np.ndarray:
    """Smoothed random fields: one (C, H, W) prototype per class."""
    raw = rng.standard_normal((num_classes, channels, size, size))
    smoothed = ndimage.gaussian_filter(
        raw, sigma=(0, 0, smoothness, smoothness)
    )
    # Normalize each prototype to unit RMS so noise levels are comparable.
    rms = np.sqrt((smoothed**2).mean(axis=(1, 2, 3), keepdims=True))
    return smoothed / np.maximum(rms, 1e-8)


def make_image_dataset(
    num_samples: int,
    num_classes: int,
    channels: int,
    size: int,
    noise: float,
    seed: int,
    smoothness: float = 1.5,
    name: str = "synthetic-images",
) -> ArrayDataset:
    """Build a synthetic image classification dataset.

    Args:
        num_samples: total samples (balanced across classes).
        noise: pixel-noise std relative to unit-RMS prototypes; ~1.0 is a
            hard-but-learnable regime for the mini models.
        smoothness: Gaussian blur sigma for prototype generation.
    """
    rng = np.random.default_rng(seed)
    prototypes = _smooth_prototypes(rng, num_classes, channels, size, smoothness)
    labels = rng.integers(0, num_classes, size=num_samples)
    gains = 1.0 + 0.2 * rng.standard_normal((num_samples, 1, 1, 1))
    shifts = 0.1 * rng.standard_normal((num_samples, 1, 1, 1))
    images = (
        gains * prototypes[labels]
        + shifts
        + noise * rng.standard_normal((num_samples, channels, size, size))
    )
    return ArrayDataset(
        x=images.astype(np.float64),
        y=labels.astype(np.int64),
        num_classes=num_classes,
        name=name,
    )


def mnist_like(
    num_samples: int = 2000, size: int = 8, noise: float = 0.7, seed: int = 0
) -> ArrayDataset:
    """MNIST stand-in: 1-channel digits, 10 classes, easy separability."""
    return make_image_dataset(
        num_samples=num_samples,
        num_classes=10,
        channels=1,
        size=size,
        noise=noise,
        seed=seed,
        name="mnist-like",
    )


def cifar10_like(
    num_samples: int = 2000, size: int = 16, noise: float = 1.0, seed: int = 1
) -> ArrayDataset:
    """CIFAR-10 stand-in: 3-channel images, 10 classes, moderate noise."""
    return make_image_dataset(
        num_samples=num_samples,
        num_classes=10,
        channels=3,
        size=size,
        noise=noise,
        seed=seed,
        name="cifar10-like",
    )


def imagenet_like(
    num_samples: int = 3000,
    size: int = 16,
    num_classes: int = 20,
    noise: float = 1.2,
    seed: int = 2,
) -> ArrayDataset:
    """ImageNet stand-in: more classes, harder noise regime."""
    return make_image_dataset(
        num_samples=num_samples,
        num_classes=num_classes,
        channels=3,
        size=size,
        noise=noise,
        seed=seed,
        name="imagenet-like",
    )
