"""Synthetic dataset generators standing in for the paper's datasets.

The paper trains on MNIST, CIFAR-10, ImageNet and IMDb reviews.  Those are
natural datasets we substitute with procedurally generated equivalents whose
*gradient statistics* (dimension, class structure, noise level) exercise the
same synchronization code paths:

- :func:`mnist_like`, :func:`cifar10_like`, :func:`imagenet_like` — image
  classification from Gaussian class prototypes plus structured noise.
- :func:`imdb_like` — binary sentiment over token sequences with
  sentiment-bearing vocabulary and label noise.
- :func:`shard_iid` / :class:`WorkerBatchIterator` — the iid shuffled-cloud
  sharding the paper assumes ("data on the cloud can be shuffled and formed
  an identical distribution among workers", Section 1).
"""

from repro.data.sharding import (
    WorkerBatchIterator,
    shard_dirichlet,
    shard_iid,
    train_test_split,
)
from repro.data.synthetic import (
    ArrayDataset,
    cifar10_like,
    imagenet_like,
    make_image_dataset,
    mnist_like,
)
from repro.data.text import imdb_like

__all__ = [
    "ArrayDataset",
    "WorkerBatchIterator",
    "cifar10_like",
    "imagenet_like",
    "imdb_like",
    "make_image_dataset",
    "mnist_like",
    "shard_dirichlet",
    "shard_iid",
    "train_test_split",
]
