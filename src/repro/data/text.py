"""Synthetic sentiment corpus standing in for IMDb reviews.

The vocabulary is split into background tokens plus positive- and
negative-sentiment tokens.  A review samples mostly background words, mixes
in sentiment words drawn from its label's set (with some cross-talk from the
other set), and a fraction of labels are flipped outright — so the Bayes
accuracy sits below 100% and optimizer differences show up in the curves.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import ArrayDataset

__all__ = ["imdb_like"]


def imdb_like(
    num_samples: int = 2000,
    seq_len: int = 16,
    vocab_size: int = 128,
    sentiment_words: int = 12,
    signal_tokens: int = 4,
    crosstalk: float = 0.15,
    label_noise: float = 0.05,
    seed: int = 3,
) -> ArrayDataset:
    """Build the IMDb-like binary sentiment dataset.

    Args:
        sentiment_words: size of each sentiment vocabulary (positive set is
            ``[2, 2 + sentiment_words)``, negative follows it; token ids 0/1
            are reserved for pad/unknown).
        signal_tokens: sentiment tokens injected per review.
        crosstalk: probability each injected token comes from the *other*
            sentiment set (reviews mention both sentiments, like real text).
        label_noise: fraction of labels flipped after generation.

    Returns:
        :class:`ArrayDataset` with ``x`` of int64 shape (N, seq_len) and
        binary ``y``.
    """
    if vocab_size < 2 + 2 * sentiment_words:
        raise ValueError("vocab too small for the sentiment word sets")
    if not 0 <= signal_tokens <= seq_len:
        raise ValueError("signal_tokens must fit in the sequence")
    rng = np.random.default_rng(seed)
    positive = np.arange(2, 2 + sentiment_words)
    negative = np.arange(2 + sentiment_words, 2 + 2 * sentiment_words)
    background_low = 2 + 2 * sentiment_words

    labels = rng.integers(0, 2, size=num_samples)
    tokens = rng.integers(background_low, vocab_size, size=(num_samples, seq_len))
    for row in range(num_samples):
        own, other = (positive, negative) if labels[row] == 1 else (negative, positive)
        positions = rng.choice(seq_len, size=signal_tokens, replace=False)
        for pos in positions:
            source = other if rng.random() < crosstalk else own
            tokens[row, pos] = rng.choice(source)
    flips = rng.random(num_samples) < label_noise
    noisy_labels = np.where(flips, 1 - labels, labels)
    return ArrayDataset(
        x=tokens.astype(np.int64),
        y=noisy_labels.astype(np.int64),
        num_classes=2,
        name="imdb-like",
    )
