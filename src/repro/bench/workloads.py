"""The five paper workloads at simulation scale, with tuned strategies.

Table 2 trains five model/dataset pairs under six synchronization schemes;
these specs pin down the stand-in configuration for each pair and build the
strategies with hyperparameters tuned for the simulation scale.

Marsit's global stepsize ``eta_s`` is *calibrated*, not hand-tuned: it is set
to the per-element RMS of the local update stream ``eta_l * u`` measured on a
few pilot batches (:func:`calibrate_global_lr`) — the practical analogue of
Theorem 1's ``eta_s = 1/sqrt(TD)`` scale matching.  The same calibrated value
is used for the signSGD-family per-sign stepsizes so every one-bit scheme
takes comparably sized steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.compression.signsgd import MeanAbsSignCompressor
from repro.data import (
    ArrayDataset,
    cifar10_like,
    imagenet_like,
    imdb_like,
    mnist_like,
    train_test_split,
)
from repro.data.sharding import WorkerBatchIterator
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.zoo import (
    alexnet_mini,
    distilbert_mini,
    resnet18_mini,
    resnet20,
    resnet50_mini,
)
from repro.train.strategies import (
    CascadingSSDMStrategy,
    EFSignSGDStrategy,
    MarsitStrategy,
    PSGDStrategy,
    SSDMStrategy,
    SignSGDMajorityStrategy,
    SyncStrategy,
)

__all__ = [
    "WORKLOADS",
    "WorkloadSpec",
    "build_strategy",
    "calibrate_global_lr",
    "strategy_names",
]

STRATEGY_NAMES = (
    "psgd",
    "signsgd",
    "ef-signsgd",
    "ssdm",
    "marsit-k",
    "marsit",
)


def strategy_names() -> tuple[str, ...]:
    """The six Table 2 columns, in paper order."""
    return STRATEGY_NAMES


def calibrate_global_lr(
    model_factory: Callable[[], Module],
    train_set: ArrayDataset,
    batch_size: int,
    local_lr: float,
    momentum: float = 0.9,
    pilot_steps: int = 24,
    measure_last: int = 12,
    seed: int = 123,
) -> float:
    """Steady-state per-element RMS of the local update stream ``eta_l * u``.

    Runs a short single-worker momentum-SGD pilot on a throwaway replica —
    gradients at a random init are 10-50x larger than after a few steps, so
    the transient must be skipped — and returns the mean RMS of the applied
    update over the last ``measure_last`` steps.  This is the scale ``eta_s``
    must match for sign steps to track local updates (Theorem 1's
    ``eta_s = 1/sqrt(TD)`` plays the same role; see MarsitStrategy's note).
    """
    model = model_factory()
    loss_fn = CrossEntropyLoss()
    iterator = WorkerBatchIterator(
        train_set, min(batch_size, len(train_set)), seed=seed
    )
    buffer = np.zeros(model.num_parameters())
    rms_values = []
    for step in range(pilot_steps):
        x, y = iterator.next_batch()
        model.zero_grad()
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        buffer = momentum * buffer + model.flatten_grads()
        update = local_lr * buffer
        model.add_flat_update(update, scale=-1.0)
        if step >= pilot_steps - measure_last:
            rms_values.append(float(np.sqrt((update**2).mean())))
    return float(np.mean(rms_values))


@dataclass
class WorkloadSpec:
    """One model/dataset pair of Table 2.

    Attributes:
        key: short identifier (also the bench parameter name).
        title: "Model / Dataset" as printed in the paper's table.
        make_data: () -> (train, test).
        model_factory: () -> identical model replica.
        batch_size: per-worker batch size.
        rounds: default synchronization budget for the accuracy benches.
        local_lr: base learning rate (paper: 0.1 ImageNet, 0.03 CIFAR).
        base_optimizer: ``momentum`` for images, ``adam`` for sentiment.
        full_precision_every: the Marsit-K cadence (paper: 100).
    """

    key: str
    title: str
    make_data: Callable[[], tuple[ArrayDataset, ArrayDataset]]
    model_factory: Callable[[], Module]
    batch_size: int
    rounds: int
    local_lr: float
    base_optimizer: str = "momentum"
    full_precision_every: int = 25
    marsit_lr_mult: float = 2.0

    def dimension(self) -> int:
        return self.model_factory().num_parameters()


def _data_mnist() -> tuple[ArrayDataset, ArrayDataset]:
    return train_test_split(
        mnist_like(num_samples=1800, size=8, noise=0.6, seed=0), 0.25, seed=1
    )


def _data_cifar() -> tuple[ArrayDataset, ArrayDataset]:
    return train_test_split(
        cifar10_like(num_samples=1600, size=16, noise=1.0, seed=1), 0.25, seed=1
    )


def _data_cifar_small() -> tuple[ArrayDataset, ArrayDataset]:
    # Reduced resolution for the 0.27M-parameter ResNet-20 (conv cost).
    return train_test_split(
        cifar10_like(num_samples=1200, size=12, noise=1.0, seed=1), 0.25, seed=1
    )


def _data_imagenet() -> tuple[ArrayDataset, ArrayDataset]:
    return train_test_split(
        imagenet_like(num_samples=2000, size=16, num_classes=20, noise=1.1, seed=2),
        0.25,
        seed=1,
    )


def _data_imdb() -> tuple[ArrayDataset, ArrayDataset]:
    return train_test_split(
        imdb_like(num_samples=2000, seq_len=16, seed=3), 0.25, seed=1
    )


WORKLOADS: dict[str, WorkloadSpec] = {
    "mnist-alexnet": WorkloadSpec(
        key="mnist-alexnet",
        title="AlexNet / MNIST",
        make_data=_data_mnist,
        model_factory=lambda: alexnet_mini(
            in_channels=1, image_size=8, num_classes=10, width=4, seed=7
        ),
        batch_size=16,
        rounds=150,
        local_lr=0.03,
    ),
    "cifar10-alexnet": WorkloadSpec(
        key="cifar10-alexnet",
        title="AlexNet / CIFAR-10",
        make_data=_data_cifar,
        model_factory=lambda: alexnet_mini(
            in_channels=3, image_size=16, num_classes=10, width=8, seed=7
        ),
        batch_size=16,
        rounds=150,
        local_lr=0.03,
    ),
    "cifar10-resnet20": WorkloadSpec(
        key="cifar10-resnet20",
        title="ResNet-20 / CIFAR-10",
        make_data=_data_cifar_small,
        model_factory=lambda: resnet20(
            in_channels=3, image_size=12, num_classes=10, seed=7
        ),
        batch_size=8,
        rounds=80,
        local_lr=0.03,
    ),
    "imagenet-resnet18": WorkloadSpec(
        key="imagenet-resnet18",
        title="ResNet-18 / ImageNet",
        make_data=_data_imagenet,
        model_factory=lambda: resnet18_mini(
            in_channels=3, image_size=16, num_classes=20, seed=7
        ),
        batch_size=16,
        rounds=120,
        local_lr=0.1,
    ),
    "imagenet-resnet50": WorkloadSpec(
        key="imagenet-resnet50",
        title="ResNet-50 / ImageNet",
        make_data=_data_imagenet,
        model_factory=lambda: resnet50_mini(
            in_channels=3, image_size=16, num_classes=20, seed=7
        ),
        batch_size=16,
        rounds=200,
        local_lr=0.1,
        marsit_lr_mult=4.0,
    ),
    "imdb-distilbert": WorkloadSpec(
        key="imdb-distilbert",
        title="DistilBERT / IMDb",
        make_data=_data_imdb,
        model_factory=lambda: distilbert_mini(
            vocab_size=128, max_len=16, dim=32, num_heads=4,
            num_layers=2, ffn_dim=64, num_classes=2, seed=7,
        ),
        batch_size=16,
        rounds=120,
        local_lr=5e-4,
        base_optimizer="adam",
    ),
}


def build_strategy(
    name: str,
    spec: WorkloadSpec,
    num_workers: int,
    train_set: ArrayDataset,
    seed: int = 0,
) -> SyncStrategy:
    """Instantiate a named strategy tuned for a workload.

    ``name`` is one of :func:`strategy_names` plus ``cascading``.
    """
    dimension = spec.dimension()
    momentum = 0.9 if spec.base_optimizer == "momentum" else 0.0
    if spec.base_optimizer == "adam":
        # Adam preconditioning makes per-element steps ~ local_lr uniformly.
        sign_step = spec.local_lr
    else:
        sign_step = calibrate_global_lr(
            spec.model_factory,
            train_set,
            spec.batch_size,
            spec.local_lr,
            momentum=momentum,
        )
    # Marsit runs Algorithm 2 literally (SGD inside the compression loop) on
    # the image tasks: feeding a momentum buffer into the one-bit path
    # inflates the compensation vector ~1/(1-mu)x and the periodic
    # full-precision "dump" then destabilizes training (see EXPERIMENTS.md).
    # Adam's normalized steps track eta_s well, so the sentiment task keeps
    # its Adam base.
    marsit_base = "sgd" if spec.base_optimizer == "momentum" else spec.base_optimizer
    if marsit_base == "adam":
        marsit_step = spec.local_lr
    else:
        marsit_step = calibrate_global_lr(
            spec.model_factory, train_set, spec.batch_size, spec.local_lr,
            momentum=0.0,
        )
    if name == "psgd":
        return PSGDStrategy(
            lr=spec.local_lr,
            num_workers=num_workers,
            base_optimizer=spec.base_optimizer,
        )
    if name == "signsgd":
        return SignSGDMajorityStrategy(
            lr=sign_step,
            num_workers=num_workers,
            momentum=momentum,
            base_optimizer=spec.base_optimizer,
        )
    if name == "ef-signsgd":
        return EFSignSGDStrategy(
            lr=spec.local_lr,
            num_workers=num_workers,
            momentum=momentum,
            base_optimizer=spec.base_optimizer,
        )
    if name == "ssdm":
        return SSDMStrategy(
            lr=sign_step,
            num_workers=num_workers,
            momentum=momentum,
            base_optimizer=spec.base_optimizer,
            block_size=16,
            seed=seed,
        )
    if name == "cascading":
        return CascadingSSDMStrategy(
            lr=spec.local_lr,
            num_workers=num_workers,
            seed=seed,
            compressor=MeanAbsSignCompressor(),
            normalize=False,
            momentum=momentum,
        )
    if name == "marsit":
        return MarsitStrategy(
            local_lr=spec.local_lr,
            global_lr=spec.marsit_lr_mult * marsit_step,
            num_workers=num_workers,
            dimension=dimension,
            base_optimizer=marsit_base,
            seed=seed,
        )
    if name == "marsit-k":
        return MarsitStrategy(
            local_lr=spec.local_lr,
            global_lr=spec.marsit_lr_mult * marsit_step,
            num_workers=num_workers,
            dimension=dimension,
            full_precision_every=spec.full_precision_every,
            base_optimizer=marsit_base,
            seed=seed,
        )
    raise ValueError(f"unknown strategy {name!r}")
