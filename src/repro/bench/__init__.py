"""Shared benchmark harness: workload specs and report printers.

Every script in ``benchmarks/`` regenerates one paper table or figure; the
workload definitions (model + dataset + tuned per-strategy hyperparameters)
live here so Table 2 and Figures 3-5 stay mutually consistent.
"""

from repro.bench.reporting import format_table, print_series, print_table, save_report
from repro.bench.workloads import (
    WORKLOADS,
    WorkloadSpec,
    build_strategy,
    calibrate_global_lr,
    strategy_names,
)

__all__ = [
    "WORKLOADS",
    "WorkloadSpec",
    "build_strategy",
    "calibrate_global_lr",
    "format_table",
    "print_series",
    "print_table",
    "save_report",
    "strategy_names",
]
