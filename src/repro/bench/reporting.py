"""Plain-text table and series printers for benchmark output."""

from __future__ import annotations

import pathlib
from typing import Sequence

__all__ = [
    "ascii_plot",
    "format_table",
    "print_series",
    "print_table",
    "save_report",
]


def save_report(name: str, text: str, directory: str | None = None) -> None:
    """Print a report and persist it under ``benchmarks/results/``.

    ``EXPERIMENTS.md`` references these files; benches call this so the
    regenerated tables survive the pytest run.
    """
    print(text)
    base = pathlib.Path(directory) if directory else pathlib.Path("benchmarks/results")
    try:
        base.mkdir(parents=True, exist_ok=True)
        (base / f"{name}.txt").write_text(text + "\n")
    except OSError:
        pass  # read-only checkout: printing is still the primary output


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(value.ljust(widths[col]) for col, value in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print a titled table (one paper table / figure legend)."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    y_range: tuple[float, float] | None = None,
) -> str:
    """Render (x, y) series as a character plot (one glyph per series).

    Good enough to eyeball a Figure 3/4-style accuracy curve in a terminal
    or a results file without a plotting stack.
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("ascii_plot needs at least one non-empty series")
    glyphs = "ox+*#@%&"
    all_points = [p for points in series.values() for p in points]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    if y_range is not None:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph
    lines = [f"{y_hi:>8.3g} |" + "".join(grid[0])]
    lines += ["         |" + "".join(row) for row in grid[1:-1]]
    lines += [f"{y_lo:>8.3g} |" + "".join(grid[-1])]
    lines += ["         +" + "-" * width]
    lines += [f"          {x_lo:<.4g}{'':>{max(1, width - 16)}}{x_hi:>.4g}"]
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    return "\n".join(lines) + f"\n          {legend}"


def print_series(
    title: str,
    x_label: str,
    series: dict[str, list[tuple[float, float]]],
    precision: int = 4,
) -> None:
    """Print named (x, y) series — the textual form of a paper figure."""
    print(f"\n=== {title} ===  (x = {x_label})")
    for name, points in series.items():
        rendered = " ".join(
            f"({x:.{precision}g},{y:.{precision}g})" for x, y in points
        )
        print(f"  {name}: {rendered}")
