"""Observability: simulated-time tracing, metrics, exporters, hooks.

The paper's headline results are *accounting* claims — time breakdowns
(Fig. 1a, Fig. 5) and traffic trajectories (Fig. 4b) — so this package makes
the simulation's accounting inspectable from the inside:

- :mod:`repro.obs.tracer` — nested spans in **simulated** seconds
  (round -> reduce/gather phase -> per-hop step), driven by the cluster's
  timeline charges.  The default :class:`NullTracer` is a no-op so
  un-instrumented runs pay nothing.
- :mod:`repro.obs.metrics` — counters / gauges / histograms for wire stats
  (per-link bytes, step makespan, mailbox depth) and algorithm health
  (sign agreement, compensation norm, transient draw rate).
- :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto or
  ``chrome://tracing``), JSONL event logs, and plain-text summaries.
- :mod:`repro.obs.hooks` — trainer/strategy callbacks (``on_round_start`` /
  ``on_sync_done`` / ``on_eval``) so probes attach without editing hot paths.

Attach an :class:`Observability` bundle to a cluster to switch it all on::

    from repro.obs import Observability
    obs = Observability.tracing()
    cluster = Cluster(ring_topology(4), obs=obs)
    ...  # run a round
    from repro.obs import write_chrome_trace
    write_chrome_trace("round.trace.json", obs.tracer)
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    render_result_report,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hooks import (
    CallbackList,
    JSONLLogger,
    RoundMetricsProbe,
    TrainerCallback,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_OBS,
    NullTracer,
    Observability,
    SimTracer,
    SpanRecord,
)

__all__ = [
    "CallbackList",
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLLogger",
    "MetricsRegistry",
    "NULL_OBS",
    "NullTracer",
    "Observability",
    "RoundMetricsProbe",
    "SimTracer",
    "SpanRecord",
    "TrainerCallback",
    "chrome_trace",
    "jsonl_lines",
    "render_result_report",
    "summary_table",
    "write_chrome_trace",
    "write_jsonl",
]
