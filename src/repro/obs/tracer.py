"""Span tracing in simulated time.

A real profiler samples a wall clock; here the clock *is* the sum of the
charges the cost model pushes into the cluster's :class:`~repro.comm.timing.
TimeLine`, so the tracer advances its ``now`` by exactly those charges and
attributes each one to the innermost open span.  Because both the timeline
and the tracer accumulate the same floats in the same order, span durations
sum to the timeline's per-phase totals with **exact** float equality — the
trace is the timeline, exploded into a tree.

Two tracers share one interface:

- :class:`SimTracer` records everything (spans, instant events, per-phase
  attribution) for export to Perfetto / JSONL.
- :class:`NullTracer` is the default: every method is a no-op and ``span``
  returns a shared do-nothing context manager, so instrumented hot paths
  cost a handful of no-op calls per synchronous step.

:class:`Observability` bundles a tracer with an optional
:class:`~repro.obs.metrics.MetricsRegistry`; ``NULL_OBS`` is the shared
disabled bundle the cluster uses by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.comm.timing import Phase
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "NULL_OBS",
    "NullTracer",
    "Observability",
    "SimTracer",
    "SpanRecord",
]


@dataclass
class SpanRecord:
    """One closed or open span, in simulated seconds.

    ``phase_self_s`` holds the seconds charged while this span was the
    innermost open span, keyed by :class:`Phase` value — child time is *not*
    included, so summing ``phase_self_s`` over every span of a trace
    reproduces the timeline totals exactly.
    """

    index: int
    parent: int  # parent span index, -1 for a top-level span
    name: str
    cat: str
    depth: int
    start_s: float
    end_s: float | None = None
    args: dict[str, Any] = field(default_factory=dict)
    phase_self_s: dict[str, float] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    @property
    def self_time_s(self) -> float:
        return sum(self.phase_self_s.values())


class _NullSpanContext:
    """Reusable do-nothing ``with`` target for :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The zero-overhead default: records nothing."""

    enabled = False
    __slots__ = ()

    def begin(self, name: str, cat: str = "", **args: Any) -> None:
        return None

    def end(self, **args: Any) -> None:
        return None

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def advance(self, phase: Phase, seconds: float) -> None:
        return None

    def record_step(
        self, name: str, phase: Phase, seconds: float, cat: str = "step",
        **args: Any,
    ) -> None:
        return None

    def instant(self, name: str, **args: Any) -> None:
        return None


class _SpanContext:
    """``with tracer.span(...)`` helper closing the span on exit."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "SimTracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.end()


class SimTracer:
    """Records nested spans against the simulated clock.

    The clock only moves through :meth:`advance` (and :meth:`record_step`,
    which wraps it), which is exactly what the cluster calls for every
    timeline charge — so ``now`` always equals ``timeline.total`` of the
    cluster driving it.
    """

    enabled = True

    def __init__(self) -> None:
        self.now = 0.0
        self.spans: list[SpanRecord] = []
        self.events: list[dict[str, Any]] = []
        self.phase_totals: dict[Phase, float] = {phase: 0.0 for phase in Phase}
        #: charges that arrived with no span open (e.g. trainer compute
        #: outside any synchronization round)
        self.unattributed: dict[str, float] = {}
        self._stack: list[int] = []

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "", **args: Any) -> SpanRecord:
        parent = self._stack[-1] if self._stack else -1
        record = SpanRecord(
            index=len(self.spans),
            parent=parent,
            name=name,
            cat=cat,
            depth=len(self._stack),
            start_s=self.now,
            args=dict(args),
        )
        self.spans.append(record)
        self._stack.append(record.index)
        return record

    def end(self, **args: Any) -> SpanRecord:
        if not self._stack:
            raise RuntimeError("no span open")
        record = self.spans[self._stack.pop()]
        record.end_s = self.now
        if args:
            record.args.update(args)
        return record

    def span(self, name: str, cat: str = "", **args: Any) -> _SpanContext:
        self.begin(name, cat=cat, **args)
        return _SpanContext(self)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def advance(self, phase: Phase, seconds: float) -> None:
        """Move simulated time forward, attributing to the open span.

        ``now`` is recomputed as the sum of the per-phase accumulators —
        the same expression as ``TimeLine.total`` — so it equals the
        driving cluster's ``timeline.total`` bit for bit, not merely to
        rounding error.
        """
        self.phase_totals[phase] += seconds
        self.now = sum(self.phase_totals.values())
        key = phase.value
        if self._stack:
            bucket = self.spans[self._stack[-1]].phase_self_s
        else:
            bucket = self.unattributed
        bucket[key] = bucket.get(key, 0.0) + seconds

    def record_step(
        self, name: str, phase: Phase, seconds: float, cat: str = "step",
        **args: Any,
    ) -> SpanRecord:
        """One leaf span of exactly ``seconds`` at the current position.

        The cluster calls this for every synchronous step, so hop spans nest
        under whatever phase span the collective opened.
        """
        self.begin(name, cat=cat, **args)
        self.advance(phase, seconds)
        return self.end()

    def instant(self, name: str, **args: Any) -> None:
        """A zero-duration marker at the current simulated time."""
        self.events.append({"name": name, "ts_s": self.now, "args": dict(args)})

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def open_depth(self) -> int:
        return len(self._stack)

    def children_of(self, index: int) -> list[SpanRecord]:
        return [span for span in self.spans if span.parent == index]

    def roots(self) -> list[SpanRecord]:
        return [span for span in self.spans if span.parent == -1]

    def phase_breakdown(self) -> dict[str, float]:
        """Phase name -> attributed seconds (mirrors ``TimeLine.breakdown``)."""
        return {phase.value: self.phase_totals[phase] for phase in Phase}


class Observability:
    """A tracer plus an optional metrics registry, attachable to a cluster."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: SimTracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics is not None

    @classmethod
    def tracing(cls) -> "Observability":
        """Full instrumentation: spans *and* metrics."""
        return cls(tracer=SimTracer(), metrics=MetricsRegistry())

    @classmethod
    def metrics_only(cls) -> "Observability":
        return cls(metrics=MetricsRegistry())

    @classmethod
    def disabled(cls) -> "Observability":
        return cls()


#: The shared disabled bundle; clusters default to this so the
#: un-instrumented hot path stays allocation-free.
NULL_OBS = Observability()
