"""Counters, gauges and histograms for wire and algorithm statistics.

A deliberately small registry in the Prometheus idiom: metrics are created
on first use, identified by ``(name, sorted labels)``, and snapshot to plain
dicts for the JSONL exporter and the text summary.  Everything is in-process
and synchronous — the simulation is single-threaded — so there is no
locking, no global state, and construction costs one dict insert.

Conventions used by the built-in instrumentation:

- ``wire.link_bytes{link="0->1"}`` — per-link bytes (Figure 4b's axis).
- ``wire.step_bytes`` / ``wire.step_messages`` — totals over synchronous
  steps.
- ``wire.step_makespan_s`` — histogram of per-step makespans.
- ``cluster.mailbox_depth`` — pending messages after each step.
- ``marsit.sign_agreement`` — consensus signs vs. the full-precision mean
  sign (the Figure 1b matching-rate statistic, measured live).
- ``marsit.comp_norm`` — mean per-worker compensation L2 norm.
- ``marsit.transient_draws`` / ``marsit.merged_bits`` — how often the
  ``⊙`` merge fell through to the transient vector.
- ``marsit.bits_per_element`` — wire width per round (Figure 3's Bits).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Log-spaced seconds buckets covering link latency (~25us) through seconds.
DEFAULT_TIME_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** exponent for exponent in range(-7, 2)
)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _qualified(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-value metric that also keeps its trajectory."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "series")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = math.nan
        self.series: list[float] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        self.series.append(self.value)

    def mean(self) -> float:
        if not self.series:
            return math.nan
        return sum(self.series) / len(self.series)

    def snapshot(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "mean": self.mean(),
            "samples": len(self.series),
        }


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bounds: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_TIME_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        slot = 0
        for bound in self.bounds:
            if value <= bound:
                break
            slot += 1
        self.counts[slot] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Get-or-create store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[
            tuple[str, tuple[tuple[str, str], ...]], Any
        ] = {}

    def _get(self, cls: type, name: str, labels: dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None, **labels: Any
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], bounds=bounds)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def __iter__(self) -> Iterable[Any]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: Any):
        """Look up an existing metric, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Qualified name -> ``{"kind": ..., **metric snapshot}``."""
        out: dict[str, dict[str, Any]] = {}
        for metric in self._metrics.values():
            entry = {"kind": metric.kind}
            entry.update(metric.snapshot())
            out[_qualified(metric.name, metric.labels)] = entry
        return out

    def total(self, name: str) -> float:
        """Sum a counter's value across all of its label sets."""
        return sum(
            metric.value
            for (metric_name, _), metric in self._metrics.items()
            if metric_name == name and isinstance(metric, Counter)
        )
