"""Trainer / strategy callback hooks.

Probes attach to the training loop without editing hot paths: the trainer
(and :class:`~repro.train.strategies.MarsitStrategy`) accept a list of
:class:`TrainerCallback` objects and fire

- ``on_round_start(round_idx, **context)`` before the round's gradients,
- ``on_sync_done(round_idx, step, **context)`` after synchronization, and
- ``on_eval(round_idx, record, **context)`` after each held-out evaluation.

``context`` always carries ``cluster=`` and, from the trainer, ``trainer=``.
Unused hooks cost one no-op dispatch per round.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.comm.timing import TimeLine

__all__ = [
    "CallbackList",
    "JSONLLogger",
    "RoundMetricsProbe",
    "TrainerCallback",
]


class TrainerCallback:
    """Base class: override any subset of the hooks."""

    def on_round_start(self, round_idx: int, **context: Any) -> None:
        return None

    def on_sync_done(self, round_idx: int, step: Any, **context: Any) -> None:
        return None

    def on_eval(self, round_idx: int, record: Any, **context: Any) -> None:
        return None


class CallbackList(TrainerCallback):
    """Dispatches each hook to every registered callback, in order."""

    def __init__(
        self, callbacks: Sequence[TrainerCallback] | None = None
    ) -> None:
        self.callbacks: list[TrainerCallback] = list(callbacks or [])

    def __len__(self) -> int:
        return len(self.callbacks)

    def __iter__(self) -> Iterable[TrainerCallback]:
        return iter(self.callbacks)

    def append(self, callback: TrainerCallback) -> None:
        self.callbacks.append(callback)

    def on_round_start(self, round_idx: int, **context: Any) -> None:
        for callback in self.callbacks:
            callback.on_round_start(round_idx, **context)

    def on_sync_done(self, round_idx: int, step: Any, **context: Any) -> None:
        for callback in self.callbacks:
            callback.on_sync_done(round_idx, step, **context)

    def on_eval(self, round_idx: int, record: Any, **context: Any) -> None:
        for callback in self.callbacks:
            callback.on_eval(round_idx, record, **context)


class RoundMetricsProbe(TrainerCallback):
    """Feeds per-round trainer statistics into a metrics registry.

    Records the per-round simulated-time delta by phase (what each round
    *cost*, not just the running total), the wire width, and evaluation
    accuracy/loss — the live version of the axes in Figures 3-5.
    """

    def __init__(self, metrics: Any) -> None:
        self.metrics = metrics
        self._last_timeline: TimeLine | None = None

    def on_round_start(self, round_idx: int, **context: Any) -> None:
        cluster = context.get("cluster")
        if cluster is not None:
            self._last_timeline = cluster.timeline.copy()

    def on_sync_done(self, round_idx: int, step: Any, **context: Any) -> None:
        cluster = context.get("cluster")
        bits = getattr(step, "bits_per_element", None)
        if bits is not None:
            self.metrics.gauge("round.bits_per_element").set(float(bits))
        if cluster is None:
            return
        self.metrics.gauge("round.total_bytes").set(float(cluster.total_bytes))
        if self._last_timeline is not None:
            delta = cluster.timeline.delta_since(self._last_timeline)
            for phase_name, seconds in delta.items():
                self.metrics.gauge("round.phase_s", phase=phase_name).set(
                    seconds
                )

    def on_eval(self, round_idx: int, record: Any, **context: Any) -> None:
        self.metrics.gauge("eval.test_accuracy").set(record.test_accuracy)
        self.metrics.gauge("eval.test_loss").set(record.test_loss)
        self.metrics.gauge("eval.train_loss").set(record.train_loss)


class JSONLLogger(TrainerCallback):
    """Collects one JSON-ready event dict per hook firing.

    Events accumulate in memory (runs here are thousands of rounds at most);
    :meth:`save` writes them as JSON Lines, one event per line, matching the
    tracer exporter's framing so both logs can be concatenated.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def _push(self, kind: str, round_idx: int, payload: dict[str, Any]) -> None:
        event = {"type": kind, "round": round_idx}
        event.update(payload)
        self.events.append(event)

    def on_round_start(self, round_idx: int, **context: Any) -> None:
        cluster = context.get("cluster")
        payload: dict[str, Any] = {}
        if cluster is not None:
            payload["sim_time_s"] = cluster.timeline.total
            payload["total_bytes"] = cluster.total_bytes
        self._push("round_start", round_idx, payload)

    def on_sync_done(self, round_idx: int, step: Any, **context: Any) -> None:
        cluster = context.get("cluster")
        payload: dict[str, Any] = {}
        bits = getattr(step, "bits_per_element", None)
        if bits is not None:
            payload["bits_per_element"] = float(bits)
        if cluster is not None:
            payload["sim_time_s"] = cluster.timeline.total
            payload["total_bytes"] = cluster.total_bytes
        self._push("sync_done", round_idx, payload)

    def on_eval(self, round_idx: int, record: Any, **context: Any) -> None:
        self._push(
            "eval",
            round_idx,
            {
                "test_accuracy": record.test_accuracy,
                "test_loss": record.test_loss,
                "train_loss": record.train_loss,
            },
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
