"""Exporters: Chrome trace-event JSON, JSONL event logs, text summaries.

The Chrome trace output follows the Trace Event Format's ``"X"`` (complete)
events with microsecond timestamps, so a recorded round opens directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and renders the
span tree round -> phase -> per-hop steps on one track.  Simulated seconds
map to trace microseconds one-to-one (1 simulated second = 1e6 ts units).

The JSONL exporter frames every span, instant event and metric as one JSON
object per line — greppable, streamable, and append-safe across runs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.comm.timing import TimeLine

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "render_result_report",
    "summary_table",
    "write_chrome_trace",
    "write_jsonl",
]

_US_PER_S = 1e6


def _format_table(headers, rows) -> str:
    # Imported lazily: repro.bench pulls the full workload/model stack,
    # which must not become an import-time dependency of the obs package.
    from repro.bench.reporting import format_table

    return format_table(headers, rows)


def chrome_trace(tracer: Any, metrics: Any | None = None) -> dict[str, Any]:
    """Trace Event Format dict for a :class:`~repro.obs.tracer.SimTracer`.

    Open spans (a trace captured mid-run) are closed at the tracer's current
    ``now``.  Metric snapshots, when given, ride along in ``otherData``.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro simulated cluster"},
        },
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "simulated time"},
        },
    ]
    for span in tracer.spans:
        end_s = span.end_s if span.end_s is not None else tracer.now
        args = dict(span.args)
        if span.phase_self_s:
            args["phase_self_s"] = dict(span.phase_self_s)
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "name": span.name,
                "cat": span.cat or "span",
                "ts": span.start_s * _US_PER_S,
                "dur": (end_s - span.start_s) * _US_PER_S,
                "args": args,
            }
        )
    for instant in tracer.events:
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": 0,
                "s": "g",
                "name": instant["name"],
                "ts": instant["ts_s"] * _US_PER_S,
                "args": dict(instant["args"]),
            }
        )
    other: dict[str, Any] = {"phase_totals_s": tracer.phase_breakdown()}
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str, tracer: Any, metrics: Any | None = None
) -> None:
    """Write :func:`chrome_trace` output as a Perfetto-loadable JSON file."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, metrics), handle, indent=1)
        handle.write("\n")


def jsonl_lines(
    tracer: Any | None = None, metrics: Any | None = None
) -> list[str]:
    """Every span / instant / metric as one JSON object per line."""
    lines: list[str] = []
    if tracer is not None:
        for span in tracer.spans:
            end_s = span.end_s if span.end_s is not None else tracer.now
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "name": span.name,
                        "cat": span.cat,
                        "parent": span.parent,
                        "index": span.index,
                        "depth": span.depth,
                        "start_s": span.start_s,
                        "end_s": end_s,
                        "phase_self_s": dict(span.phase_self_s),
                        "args": span.args,
                    },
                    sort_keys=True,
                )
            )
        for instant in tracer.events:
            lines.append(
                json.dumps(
                    {
                        "type": "instant",
                        "name": instant["name"],
                        "ts_s": instant["ts_s"],
                        "args": instant["args"],
                    },
                    sort_keys=True,
                )
            )
    if metrics is not None:
        for name, entry in metrics.snapshot().items():
            record = {"type": "metric", "name": name}
            record.update(entry)
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_jsonl(
    path: str, tracer: Any | None = None, metrics: Any | None = None
) -> None:
    with open(path, "w") as handle:
        for line in jsonl_lines(tracer, metrics):
            handle.write(line + "\n")


def summary_table(
    metrics: Any | None = None, timeline: TimeLine | None = None
) -> str:
    """Plain-text run summary: phase breakdown plus one row per metric."""
    sections: list[str] = []
    if timeline is not None:
        total = timeline.total
        rows = []
        for phase_name, seconds in timeline.breakdown().items():
            share = 100.0 * seconds / total if total else 0.0
            rows.append([phase_name, f"{seconds * 1e3:.3f}", f"{share:.1f}%"])
        rows.append(["total", f"{total * 1e3:.3f}", "100.0%"])
        sections.append(
            "Simulated time by phase\n"
            + _format_table(["phase", "ms", "share"], rows)
        )
    if metrics is not None:
        rows = []
        for name, entry in sorted(metrics.snapshot().items()):
            kind = entry["kind"]
            if kind == "counter":
                value = f"{entry['value']:g}"
            elif kind == "gauge":
                value = f"last={entry['value']:g} mean={entry['mean']:g}"
            else:
                value = (
                    f"n={entry['count']} mean={entry['mean']:g} "
                    f"max={entry['max']:g}"
                    if entry["count"]
                    else "n=0"
                )
            rows.append([name, kind, value])
        sections.append("Metrics\n" + _format_table(["metric", "kind", "value"], rows))
    return "\n\n".join(sections) if sections else "(nothing recorded)"


def render_result_report(result: dict[str, Any]) -> str:
    """Human-readable report of a ``TrainResult.to_dict()`` JSON document.

    This is what ``python -m repro report run.json`` prints: run totals, the
    phase breakdown, and the evaluation history table.
    """
    lines = [
        f"strategy        : {result.get('strategy', '?')}",
        f"rounds run      : {result.get('rounds_run', '?')}",
        f"final accuracy  : {result.get('final_accuracy', float('nan')):.4f}",
        f"best accuracy   : {result.get('best_accuracy', float('nan')):.4f}",
        f"total sim time  : {result.get('total_sim_time_s', 0.0) * 1e3:.2f} ms",
        f"bytes on wire   : {result.get('total_comm_bytes', 0):,}",
        f"avg bits/element: {result.get('avg_bits_per_element', 32.0):.2f}",
        f"diverged        : {result.get('diverged', False)}",
    ]
    if result.get("plan_digest"):
        lines.insert(
            len(lines) - 1,
            f"sync plan       : {result['plan_digest']} "
            f"({result.get('num_plan_steps', 0)} steps)",
        )
    breakdown = result.get("time_breakdown_s") or {}
    if breakdown:
        total = sum(breakdown.values())
        rows = [
            [
                phase,
                f"{seconds * 1e3:.3f}",
                f"{100.0 * seconds / total if total else 0.0:.1f}%",
            ]
            for phase, seconds in breakdown.items()
        ]
        lines.append("")
        lines.append("Simulated time by phase")
        lines.append(_format_table(["phase", "ms", "share"], rows))
    faults = result.get("fault_summary") or {}
    if faults:
        lines.append("")
        lines.append(
            f"Fault injection (seed {faults.get('seed', '?')}, "
            f"{faults.get('events', 0)} events)"
        )
        dead = faults.get("dead_workers") or []
        if dead:
            lines.append(
                f"  dead workers  : {', '.join(str(w) for w in dead)} "
                f"({faults.get('active_workers', '?')} survivors)"
            )
        counters = faults.get("counters") or {}
        if counters:
            rows = [
                [
                    name,
                    f"{value:,}" if isinstance(value, int) else f"{value:.6g}",
                ]
                for name, value in sorted(counters.items())
            ]
            lines.append(_format_table(["fault counter", "count"], rows))
    history = result.get("history") or []
    if history:
        rows = [
            [
                record.get("round", "?"),
                f"{record.get('sim_time_s', 0.0) * 1e3:.2f}",
                f"{record.get('comm_bytes', 0):,}",
                f"{record.get('train_loss', float('nan')):.4f}",
                f"{record.get('test_accuracy', float('nan')):.4f}",
                f"{record.get('bits_per_element', float('nan')):.2f}",
            ]
            for record in history
        ]
        lines.append("")
        lines.append("Evaluation history")
        lines.append(
            _format_table(
                ["round", "sim ms", "bytes", "train loss", "test acc", "bits"],
                rows,
            )
        )
    return "\n".join(lines)
