"""All-reduce algorithms over the simulated cluster, plus the topology registry.

The generic ring schedule (:func:`ring_reduce_scatter` /
:func:`ring_all_gather`) takes a pluggable per-hop ``combine`` so the same
code path drives

- full-precision float all-reduce (PSGD baseline),
- integer sign-sum all-reduce with bit-length expansion (the SSDM-under-MAR
  baseline of Section 3.1),
- Marsit's one-bit merge (plugged in from :mod:`repro.core`), and
- cascading compression (the Section 3.2 anti-pattern).

Higher-level collectives: 2D-torus all-reduce, parameter-server emulation,
tree all-reduce, segmented ring, recursive halving-doubling, and gossip
averaging.

The :class:`TopologyEntry` registry is the single place a topology plugs in
its graph builder, its one-bit :class:`~repro.sched.plan.SyncPlan` compiler,
and its full-precision collectives.  Everything downstream — Marsit's
synchronizer, the training strategies, the trainer's cluster factory — looks
topologies up here instead of switching on names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.allreduce.cascading import cascading_ring_allreduce
from repro.allreduce.gossip import gossip_average_round, gossip_mixing_matrix
from repro.allreduce.halving_doubling import (
    compile_halving_doubling,
    halving_doubling_allreduce_mean,
    halving_doubling_allreduce_sum,
)
from repro.allreduce.ps import (
    ps_allreduce,
    star_allgather_scalars,
    star_allreduce_mean,
)
from repro.allreduce.ring import (
    PackedLaneGrid,
    SizedPayload,
    compile_ring,
    lockstep_ring_all_gather,
    lockstep_ring_reduce_scatter,
    parallel_ring_all_gather,
    parallel_ring_reduce_scatter,
    ring_all_gather,
    ring_allgather_scalars,
    ring_allreduce_mean,
    ring_allreduce_sum,
    ring_reduce_scatter,
    signsum_ring_allreduce,
    split_segments,
)
from repro.allreduce.segmented import (
    compile_segmented_ring,
    segmented_ring_allreduce,
)
from repro.allreduce.torus import (
    compile_torus,
    signsum_torus_allreduce,
    torus_allgather_scalars,
    torus_allreduce_mean,
    torus_allreduce_sum,
)
from repro.allreduce.tree import (
    compile_tree,
    tree_allreduce,
    tree_allreduce_mean,
)
from repro.comm.topology import (
    Topology,
    halving_doubling_topology,
    ring_topology,
    star_topology,
    torus_topology,
    tree_topology,
)

__all__ = [
    "PackedLaneGrid",
    "SizedPayload",
    "TopologyEntry",
    "cascading_ring_allreduce",
    "compile_halving_doubling",
    "compile_ring",
    "compile_segmented_ring",
    "compile_torus",
    "compile_tree",
    "get_topology",
    "gossip_average_round",
    "gossip_mixing_matrix",
    "halving_doubling_allreduce_mean",
    "halving_doubling_allreduce_sum",
    "lockstep_ring_all_gather",
    "lockstep_ring_reduce_scatter",
    "one_bit_topology_names",
    "parallel_ring_all_gather",
    "parallel_ring_reduce_scatter",
    "ps_allreduce",
    "register_topology",
    "ring_all_gather",
    "ring_allgather_scalars",
    "ring_allreduce_mean",
    "ring_allreduce_sum",
    "ring_reduce_scatter",
    "segmented_ring_allreduce",
    "signsum_ring_allreduce",
    "split_segments",
    "star_allgather_scalars",
    "star_allreduce_mean",
    "topology_names",
    "torus_allgather_scalars",
    "torus_allreduce_mean",
    "torus_allreduce_sum",
    "tree_allreduce",
    "tree_allreduce_mean",
]


@dataclass(frozen=True)
class TopologyEntry:
    """Everything one topology family plugs into the framework.

    Attributes:
        name: registry key; also the :class:`Topology` family name.
        build: ``build(num_workers, **kwargs) -> Topology`` graph factory.
        compile_one_bit: SyncPlan compiler for the Marsit one-bit round, or
            ``None`` if the topology has no one-bit schedule (e.g. star).
        mean_allreduce: full-precision ``(cluster, vectors) -> vectors`` mean.
        signsum_allreduce: integer sign-sum collective with bit expansion,
            or ``None`` to fall back to the ring schedule.
        allgather_scalars: ``(cluster, values) -> np.ndarray`` one-float
            all-gather, or ``None`` to fall back to the ring walk.
        degrade: ``(num_survivors, meta) -> Topology | None`` crash-recovery
            rebuild at a smaller size.  Returning ``None`` (or omitting the
            hook) means the family cannot shrink to that size and recovery
            falls back to a ring (:mod:`repro.faults.recovery`).
    """

    name: str
    build: Callable[..., Topology]
    compile_one_bit: Callable | None = None
    mean_allreduce: Callable | None = None
    signsum_allreduce: Callable | None = None
    allgather_scalars: Callable | None = None
    degrade: Callable[[int, dict], Topology | None] | None = None


_REGISTRY: dict[str, TopologyEntry] = {}


def register_topology(entry: TopologyEntry) -> TopologyEntry:
    """Register (or replace) a topology family under ``entry.name``."""
    _REGISTRY[entry.name] = entry
    return entry


def topology_names() -> tuple[str, ...]:
    """Sorted names of all registered topology families."""
    return tuple(sorted(_REGISTRY))


def one_bit_topology_names() -> tuple[str, ...]:
    """Sorted names of topologies with a one-bit SyncPlan compiler."""
    return tuple(
        sorted(n for n, e in _REGISTRY.items() if e.compile_one_bit is not None)
    )


def get_topology(name: str) -> TopologyEntry:
    """Look up a registered topology; error lists the registered names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; registered topologies: "
            f"{', '.join(topology_names())}"
        ) from None


def _build_torus(num_workers: int, rows: int, cols: int) -> Topology:
    if rows * cols != num_workers:
        raise ValueError(
            f"torus shape {rows}x{cols} does not cover {num_workers} workers"
        )
    return torus_topology(rows, cols)


def _degrade_ring(num_survivors: int, meta: dict) -> Topology:
    # A ring exists at every size; survivors close ranks and keep the shape.
    return ring_topology(num_survivors)


def _degrade_tree(num_survivors: int, meta: dict) -> Topology:
    # Trees rebuild at any size with the same arity.
    return tree_topology(num_survivors, arity=meta.get("arity", 2))


def _degrade_halving_doubling(num_survivors: int, meta: dict) -> Topology | None:
    # The butterfly exists only at powers of two; otherwise fall back (ring).
    if num_survivors & (num_survivors - 1) == 0:
        return halving_doubling_topology(num_survivors)
    return None


register_topology(
    TopologyEntry(
        name="ring",
        build=ring_topology,
        compile_one_bit=compile_ring,
        mean_allreduce=ring_allreduce_mean,
        signsum_allreduce=signsum_ring_allreduce,
        allgather_scalars=ring_allgather_scalars,
        degrade=_degrade_ring,
    )
)
register_topology(
    TopologyEntry(
        name="torus",
        build=_build_torus,
        compile_one_bit=compile_torus,
        mean_allreduce=torus_allreduce_mean,
        signsum_allreduce=signsum_torus_allreduce,
        allgather_scalars=torus_allgather_scalars,
        # No degrade hook: a torus minus one node is not a torus — survivors
        # reform as a ring.
    )
)
register_topology(
    TopologyEntry(
        name="star",
        build=star_topology,
        mean_allreduce=star_allreduce_mean,
        allgather_scalars=star_allgather_scalars,
    )
)
register_topology(
    TopologyEntry(
        name="tree",
        build=tree_topology,
        compile_one_bit=compile_tree,
        mean_allreduce=tree_allreduce_mean,
        degrade=_degrade_tree,
    )
)
register_topology(
    TopologyEntry(
        name="halving_doubling",
        build=halving_doubling_topology,
        compile_one_bit=compile_halving_doubling,
        mean_allreduce=halving_doubling_allreduce_mean,
        degrade=_degrade_halving_doubling,
    )
)
