"""All-reduce algorithms over the simulated cluster.

The generic ring schedule (:func:`ring_reduce_scatter` /
:func:`ring_all_gather`) takes a pluggable per-hop ``combine`` so the same
code path drives

- full-precision float all-reduce (PSGD baseline),
- integer sign-sum all-reduce with bit-length expansion (the SSDM-under-MAR
  baseline of Section 3.1),
- Marsit's one-bit merge (plugged in from :mod:`repro.core`), and
- cascading compression (the Section 3.2 anti-pattern).

Higher-level collectives: 2D-torus all-reduce, parameter-server emulation,
tree all-reduce, segmented ring, and gossip averaging.
"""

from repro.allreduce.cascading import cascading_ring_allreduce
from repro.allreduce.gossip import gossip_average_round, gossip_mixing_matrix
from repro.allreduce.ps import ps_allreduce
from repro.allreduce.ring import (
    PackedLaneGrid,
    SizedPayload,
    lockstep_ring_all_gather,
    lockstep_ring_reduce_scatter,
    parallel_ring_all_gather,
    parallel_ring_reduce_scatter,
    ring_all_gather,
    ring_allreduce_mean,
    ring_allreduce_sum,
    ring_reduce_scatter,
    signsum_ring_allreduce,
    split_segments,
)
from repro.allreduce.segmented import segmented_ring_allreduce
from repro.allreduce.torus import torus_allreduce_mean, torus_allreduce_sum
from repro.allreduce.tree import tree_allreduce

__all__ = [
    "PackedLaneGrid",
    "SizedPayload",
    "cascading_ring_allreduce",
    "gossip_average_round",
    "gossip_mixing_matrix",
    "lockstep_ring_all_gather",
    "lockstep_ring_reduce_scatter",
    "parallel_ring_all_gather",
    "parallel_ring_reduce_scatter",
    "ps_allreduce",
    "ring_all_gather",
    "ring_allreduce_mean",
    "ring_allreduce_sum",
    "ring_reduce_scatter",
    "segmented_ring_allreduce",
    "signsum_ring_allreduce",
    "split_segments",
    "torus_allreduce_mean",
    "torus_allreduce_sum",
    "tree_allreduce",
]
