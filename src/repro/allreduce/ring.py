"""Ring all-reduce: the classical reduce-scatter + all-gather schedule.

The schedule is the Baidu/Horovod one (paper refs [4, 5]): with ``M`` workers
the vector is split into ``M`` segments; ``M - 1`` reduce steps each move one
segment per worker to its ring successor and fold it into the local copy, so
every worker ends owning one fully reduced segment; ``M - 1`` gather steps
then circulate the owned segments until everyone holds the full result.
Total traffic per worker: ``2 (M - 1) D / M`` elements — the
``2 (M - 1) x D`` weights of Section 3.1 summed over the ring.

``combine`` is pluggable, which is how Marsit's one-bit merge, the
sign-sum integer reduce (with bit-length expansion), and plain float addition
all share this schedule.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.bits import (
    elias_gamma_encode,
    signed_int_bit_width,
    zigzag_encode,
)
from repro.comm.cluster import Cluster, SizedPayload
from repro.comm.timing import Phase

__all__ = [
    "SizedPayload",
    "parallel_ring_all_gather",
    "parallel_ring_reduce_scatter",
    "ring_all_gather",
    "ring_allreduce_mean",
    "ring_allreduce_sum",
    "ring_reduce_scatter",
    "signsum_ring_allreduce",
    "split_segments",
]

Combine = Callable[[Any, Any, int], Any]
"""(received_payload, local_segment, step_index) -> new local segment.

A combine may instead accept four positional arguments
``(received, local, step, rank)``; the schedulers detect this via its
signature and pass the receiving worker's rank, which lets stateful
combiners (per-worker RNG streams, per-rank compensation) drop ad-hoc
call counters.
"""


def _accepts_rank(combine: Combine) -> bool:
    """True when ``combine`` takes a fourth positional ``rank`` argument."""
    try:
        parameters = inspect.signature(combine).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = [
        p
        for p in parameters
        if p.kind
        in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
    ]
    if any(p.kind == p.VAR_POSITIONAL for p in positional):
        return True
    return len(positional) >= 4


def split_segments(vector: np.ndarray, num_segments: int) -> list[np.ndarray]:
    """Split a 1-D vector into ``num_segments`` nearly equal segments.

    ``np.array_split`` semantics: the first ``len % num_segments`` segments
    get one extra element, and segments may be empty when
    ``len < num_segments`` (still correct, just zero-byte hops).
    """
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError("split_segments expects a 1-D vector")
    return [segment.copy() for segment in np.array_split(vector, num_segments)]


def _ring_ranks(cluster: Cluster, ranks: Sequence[int] | None) -> list[int]:
    if ranks is None:
        return list(range(cluster.num_workers))
    return list(ranks)


def parallel_ring_reduce_scatter(
    cluster: Cluster,
    cycles: Sequence[Sequence[int]],
    segments: Sequence[list[list[Any]]],
    combine: Combine,
    tag: str = "rs",
    on_step_end: Callable[[int, float], None] | None = None,
) -> list[list[int]]:
    """Reduce phase over several *disjoint* ring cycles in lockstep.

    All cycles advance one hop per synchronous step, so transfers on
    different rings overlap — e.g. every row of a torus reduce-scatters
    simultaneously, which is where TAR's latency advantage over a flat ring
    comes from.

    Args:
        cycles: ordered rank cycles; must be pairwise disjoint.
        segments: ``segments[c][p][i]`` — segment ``i`` held by the worker at
            position ``p`` of cycle ``c``; mutated in place.
        combine: folds a received payload into the local segment; the step
            index says how many contributions the payload carries (step+1).
            A four-argument combine additionally receives the receiving
            worker's rank.
        on_step_end: called after each synchronous step with
            ``(step, transfer_seconds)`` — the makespan the cluster charged
            for that step's transfers.  Marsit uses it to charge only the
            *excess* of overlapped per-hop work over the receive time.

    Returns:
        ``owned[c][p]``: fully reduced segment index per cycle position.
    """
    sizes = [len(cycle) for cycle in cycles]
    if len(set(sizes)) > 1:
        raise ValueError("all cycles must have equal length")
    if not cycles:
        return []
    size = sizes[0]
    for cycle, cycle_segments in zip(cycles, segments):
        if any(len(worker_segments) != size for worker_segments in cycle_segments):
            raise ValueError("each worker must hold exactly cycle-length segments")
    with_rank = _accepts_rank(combine)
    for step in range(size - 1):
        cluster.begin_step()
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                send_idx = (pos - step) % size
                cluster.send(
                    cycle[pos],
                    cycle[(pos + 1) % size],
                    segments[cycle_idx][pos][send_idx],
                    tag=f"{tag}:{step}",
                )
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                recv_idx = (pos - 1 - step) % size
                payload = cluster.recv(
                    cycle[pos], cycle[(pos - 1) % size], tag=f"{tag}:{step}"
                )
                local = segments[cycle_idx][pos][recv_idx]
                if with_rank:
                    merged = combine(payload, local, step, cycle[pos])
                else:
                    merged = combine(payload, local, step)
                segments[cycle_idx][pos][recv_idx] = merged
        elapsed = cluster.end_step()
        if on_step_end is not None:
            on_step_end(step, elapsed)
    return [[(pos + 1) % size for pos in range(size)] for _ in cycles]


def parallel_ring_all_gather(
    cluster: Cluster,
    cycles: Sequence[Sequence[int]],
    segments: Sequence[list[list[Any]]],
    tag: str = "ag",
) -> None:
    """Gather phase over several disjoint ring cycles in lockstep.

    Assumes the ownership layout of :func:`parallel_ring_reduce_scatter`
    (position ``p`` owns segment ``(p + 1) % size``); mutates in place.
    """
    if not cycles:
        return
    size = len(cycles[0])
    for step in range(size - 1):
        cluster.begin_step()
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                send_idx = (pos + 1 - step) % size
                cluster.send(
                    cycle[pos],
                    cycle[(pos + 1) % size],
                    segments[cycle_idx][pos][send_idx],
                    tag=f"{tag}:{step}",
                )
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                recv_idx = (pos - step) % size
                payload = cluster.recv(
                    cycle[pos], cycle[(pos - 1) % size], tag=f"{tag}:{step}"
                )
                segments[cycle_idx][pos][recv_idx] = payload
        cluster.end_step()


def ring_reduce_scatter(
    cluster: Cluster,
    segments: list[list[Any]],
    combine: Combine,
    ranks: Sequence[int] | None = None,
    tag: str = "rs",
) -> list[int]:
    """Run the reduce phase over one ring of ``ranks``.

    Args:
        cluster: the simulated cluster (sends must follow topology edges).
        segments: ``segments[p][i]`` is the ``i``-th segment held by the
            worker at ring position ``p``; mutated in place.
        combine: folds a received payload into the local segment.  The step
            index tells stateful combiners how many contributions the
            received segment already carries (``step + 1``).
        ranks: the ordered ring cycle; defaults to all workers ``0..M-1``.

    Returns:
        ``owned[p]``: the segment index fully reduced at ring position ``p``.
    """
    cycle = _ring_ranks(cluster, ranks)
    return parallel_ring_reduce_scatter(
        cluster, [cycle], [segments], combine, tag=tag
    )[0]


def ring_all_gather(
    cluster: Cluster,
    segments: list[list[Any]],
    ranks: Sequence[int] | None = None,
    tag: str = "ag",
) -> None:
    """Run the gather phase: circulate owned segments until all are shared.

    Assumes the ownership layout produced by :func:`ring_reduce_scatter`
    (position ``p`` owns segment ``(p + 1) % size``); mutates ``segments``.
    """
    cycle = _ring_ranks(cluster, ranks)
    parallel_ring_all_gather(cluster, [cycle], [segments], tag=tag)


def _add_combine(received: Any, local: np.ndarray, step: int) -> np.ndarray:
    return np.asarray(received, dtype=local.dtype) + local


def ring_allreduce_sum(
    cluster: Cluster,
    vectors: list[np.ndarray],
    ranks: Sequence[int] | None = None,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Full-precision ring all-reduce; returns the per-worker sums.

    Floats travel as ``wire_dtype`` (FP32 by default, matching the paper's
    non-compressed baseline) but accumulate in float64 locally.
    """
    cycle = _ring_ranks(cluster, ranks)
    size = len(cycle)
    if len(vectors) != size:
        raise ValueError("one vector per ring position required")
    if size == 1:
        return [np.asarray(vectors[0], dtype=np.float64).copy()]

    def to_wire(segment: np.ndarray) -> np.ndarray:
        return np.asarray(segment, dtype=wire_dtype)

    segments = [
        [to_wire(seg) for seg in split_segments(vector, size)] for vector in vectors
    ]
    ring_reduce_scatter(cluster, segments, _add_combine, ranks=cycle)
    ring_all_gather(cluster, segments, ranks=cycle)
    return [
        np.concatenate([np.asarray(seg, dtype=np.float64) for seg in worker])
        for worker in segments
    ]


def ring_allreduce_mean(
    cluster: Cluster,
    vectors: list[np.ndarray],
    ranks: Sequence[int] | None = None,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Ring all-reduce returning per-worker means."""
    sums = ring_allreduce_sum(cluster, vectors, ranks=ranks, wire_dtype=wire_dtype)
    scale = 1.0 / len(sums)
    return [total * scale for total in sums]


def signsum_ring_allreduce(
    cluster: Cluster,
    sign_vectors: list[np.ndarray],
    ranks: Sequence[int] | None = None,
    charge_compression: bool = True,
    elias_coded: bool = False,
) -> list[np.ndarray]:
    """Ring all-reduce of integer sign sums with bit-length expansion.

    This is the linear SSDM-under-MAR baseline of Section 3.1: workers
    all-reduce the coordinate-wise *sum of signs*.  A partial sum over ``m``
    workers lies in ``[-m, +m]`` and is charged
    ``ceil(log2(m + 1)) + 1`` bits per element on the wire
    (:func:`signed_int_bit_width`), so the message grows every hop up to
    ``~log2(M)`` bits — never back down to one bit.

    Args:
        sign_vectors: per-worker ``{-1, +1}`` vectors.
        charge_compression: charge sign-extraction time to the timeline.
        elias_coded: charge each hop at the exact Elias-gamma entropy code
            of the zigzagged partial sums (the Section 5 "Elias coding to
            compact the transmission message" baseline) instead of the fixed
            expanded width.  Shorter on average (small sums dominate) but
            still strictly more than one bit per element.

    Returns:
        Per-worker integer sum vectors (all equal).
    """
    cycle = _ring_ranks(cluster, ranks)
    size = len(cycle)
    if len(sign_vectors) != size:
        raise ValueError("one sign vector per ring position required")
    for vector in sign_vectors:
        array = np.asarray(vector)
        if array.size and not ((array == -1) | (array == 1)).all():
            raise ValueError("sign vectors must be over {-1, +1}")
    if charge_compression:
        total_elements = sum(int(np.asarray(v).size) for v in sign_vectors)
        cluster.charge(
            Phase.COMPRESSION, cluster.cost_model.compress_time(total_elements)
        )
    if size == 1:
        return [np.asarray(sign_vectors[0], dtype=np.int64).copy()]

    def wrap(segment: np.ndarray, contributors: int) -> SizedPayload:
        segment = np.asarray(segment, dtype=np.int64)
        if elias_coded and segment.size:
            # A sum of m iid signs lives on {-m, -m+2, ..., m} with a
            # binomial peak at 0; re-index by half-steps from the mode so
            # the common values get the short gamma codes.
            half_steps = (segment + contributors) // 2 - contributors // 2
            _, coded_bits = elias_gamma_encode(zigzag_encode(half_steps))
            nbytes = (coded_bits + 7) // 8
        else:
            bits = signed_int_bit_width(contributors)
            nbytes = (bits * int(segment.size) + 7) // 8
        return SizedPayload(value=segment, nbytes=nbytes)

    segments: list[list[Any]] = [
        [wrap(seg, 1) for seg in split_segments(np.asarray(vec, dtype=np.int64), size)]
        for vec in sign_vectors
    ]

    def combine(received: SizedPayload, local: SizedPayload, step: int) -> SizedPayload:
        merged = received.value + local.value
        return wrap(merged, step + 2)

    ring_reduce_scatter(cluster, segments, combine, ranks=cycle)
    ring_all_gather(cluster, segments, ranks=cycle)
    return [
        np.concatenate([seg.value for seg in worker_segments])
        for worker_segments in segments
    ]
