"""Ring all-reduce: the classical reduce-scatter + all-gather schedule.

The schedule is the Baidu/Horovod one (paper refs [4, 5]): with ``M`` workers
the vector is split into ``M`` segments; ``M - 1`` reduce steps each move one
segment per worker to its ring successor and fold it into the local copy, so
every worker ends owning one fully reduced segment; ``M - 1`` gather steps
then circulate the owned segments until everyone holds the full result.
Total traffic per worker: ``2 (M - 1) D / M`` elements — the
``2 (M - 1) x D`` weights of Section 3.1 summed over the ring.

``combine`` is pluggable, which is how Marsit's one-bit merge, the
sign-sum integer reduce (with bit-length expansion), and plain float addition
all share this schedule.
"""

from __future__ import annotations

import inspect
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.bits import (
    PackedBits,
    PackedBitsBatch,
    elias_gamma_encode,
    signed_int_bit_width,
    zigzag_encode,
)
from repro.comm.cluster import Cluster, SizedPayload
from repro.comm.timing import Phase
from repro.sched.plan import (
    Barrier,
    CompileContext,
    Gather,
    GridSpec,
    Merge,
    MergeSign,
    Output,
    Pack,
    SendRecv,
    Step,
    SyncPlan,
    Transfer,
    plan_segment_lengths,
)

__all__ = [
    "PackedLaneGrid",
    "SizedPayload",
    "compile_ring",
    "cycle_gather_steps",
    "cycle_reduce_steps",
    "lockstep_ring_all_gather",
    "lockstep_ring_reduce_scatter",
    "parallel_ring_all_gather",
    "parallel_ring_reduce_scatter",
    "ring_all_gather",
    "ring_allgather_scalars",
    "ring_allreduce_mean",
    "ring_allreduce_sum",
    "ring_reduce_scatter",
    "signsum_ring_allreduce",
    "split_segments",
]

_WORD_DTYPE = np.dtype("<u8")
_WORD_BITS = 64

Combine = Callable[[Any, Any, int], Any]
"""(received_payload, local_segment, step_index) -> new local segment.

A combine may instead accept four positional arguments
``(received, local, step, rank)``; the schedulers detect this via its
signature and pass the receiving worker's rank, which lets stateful
combiners (per-worker RNG streams, per-rank compensation) drop ad-hoc
call counters.
"""


#: ``inspect.signature`` costs microseconds per call, which adds up when a
#: schedule probes the same combine every all-reduce; the verdict is a pure
#: function of the callable, so memoize it without pinning the callable alive.
_ACCEPTS_RANK_CACHE: "weakref.WeakKeyDictionary[Any, bool]" = (
    weakref.WeakKeyDictionary()
)


def _accepts_rank(combine: Combine) -> bool:
    """True when ``combine`` takes a fourth positional ``rank`` argument."""
    try:
        cached = _ACCEPTS_RANK_CACHE.get(combine)
    except TypeError:  # unhashable / non-weakrefable callables: probe fresh
        cached = None
    if cached is not None:
        return cached
    try:
        parameters = inspect.signature(combine).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = [
        p
        for p in parameters
        if p.kind
        in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
    ]
    verdict = (
        any(p.kind == p.VAR_POSITIONAL for p in positional)
        or len(positional) >= 4
    )
    try:
        _ACCEPTS_RANK_CACHE[combine] = verdict
    except TypeError:
        pass
    return verdict


def split_segments(
    vector: np.ndarray, num_segments: int, copy: bool = True
) -> list[np.ndarray]:
    """Split a 1-D vector into ``num_segments`` nearly equal segments.

    ``np.array_split`` semantics: the first ``len % num_segments`` segments
    get one extra element, and segments may be empty when
    ``len < num_segments`` (still correct, just zero-byte hops).

    ``copy=False`` returns views into ``vector`` — for callers that
    immediately repack or cast every segment (``PackedBits.from_signs``,
    wire-dtype ``astype``) the defensive copy is pure overhead.
    """
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError("split_segments expects a 1-D vector")
    parts = np.array_split(vector, num_segments)
    if not copy:
        return parts
    return [segment.copy() for segment in parts]


def _ring_ranks(cluster: Cluster, ranks: Sequence[int] | None) -> list[int]:
    if ranks is None:
        return list(range(cluster.num_workers))
    return list(ranks)


def parallel_ring_reduce_scatter(
    cluster: Cluster,
    cycles: Sequence[Sequence[int]],
    segments: Sequence[list[list[Any]]],
    combine: Combine,
    tag: str = "rs",
    on_step_end: Callable[[int, float], None] | None = None,
) -> list[list[int]]:
    """Reduce phase over several *disjoint* ring cycles in lockstep.

    All cycles advance one hop per synchronous step, so transfers on
    different rings overlap — e.g. every row of a torus reduce-scatters
    simultaneously, which is where TAR's latency advantage over a flat ring
    comes from.

    Args:
        cycles: ordered rank cycles; must be pairwise disjoint.
        segments: ``segments[c][p][i]`` — segment ``i`` held by the worker at
            position ``p`` of cycle ``c``; mutated in place.
        combine: folds a received payload into the local segment; the step
            index says how many contributions the payload carries (step+1).
            A four-argument combine additionally receives the receiving
            worker's rank.
        on_step_end: called after each synchronous step with
            ``(step, transfer_seconds)`` — the makespan the cluster charged
            for that step's transfers.  Marsit uses it to charge only the
            *excess* of overlapped per-hop work over the receive time.

    Returns:
        ``owned[c][p]``: fully reduced segment index per cycle position.
    """
    sizes = [len(cycle) for cycle in cycles]
    if len(set(sizes)) > 1:
        raise ValueError("all cycles must have equal length")
    if not cycles:
        return []
    size = sizes[0]
    for cycle, cycle_segments in zip(cycles, segments):
        if any(len(worker_segments) != size for worker_segments in cycle_segments):
            raise ValueError("each worker must hold exactly cycle-length segments")
    with_rank = _accepts_rank(combine)
    for step in range(size - 1):
        cluster.begin_step()
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                send_idx = (pos - step) % size
                cluster.send(
                    cycle[pos],
                    cycle[(pos + 1) % size],
                    segments[cycle_idx][pos][send_idx],
                    tag=f"{tag}:{step}",
                )
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                recv_idx = (pos - 1 - step) % size
                payload = cluster.recv(
                    cycle[pos], cycle[(pos - 1) % size], tag=f"{tag}:{step}"
                )
                local = segments[cycle_idx][pos][recv_idx]
                if with_rank:
                    merged = combine(payload, local, step, cycle[pos])
                else:
                    merged = combine(payload, local, step)
                segments[cycle_idx][pos][recv_idx] = merged
        elapsed = cluster.end_step(tag=f"{tag}:{step}")
        if on_step_end is not None:
            on_step_end(step, elapsed)
    return [[(pos + 1) % size for pos in range(size)] for _ in cycles]


def parallel_ring_all_gather(
    cluster: Cluster,
    cycles: Sequence[Sequence[int]],
    segments: Sequence[list[list[Any]]],
    tag: str = "ag",
) -> None:
    """Gather phase over several disjoint ring cycles in lockstep.

    Assumes the ownership layout of :func:`parallel_ring_reduce_scatter`
    (position ``p`` owns segment ``(p + 1) % size``); mutates in place.
    """
    if not cycles:
        return
    size = len(cycles[0])
    for step in range(size - 1):
        cluster.begin_step()
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                send_idx = (pos + 1 - step) % size
                cluster.send(
                    cycle[pos],
                    cycle[(pos + 1) % size],
                    segments[cycle_idx][pos][send_idx],
                    tag=f"{tag}:{step}",
                )
        for cycle_idx, cycle in enumerate(cycles):
            for pos in range(size):
                recv_idx = (pos - step) % size
                payload = cluster.recv(
                    cycle[pos], cycle[(pos - 1) % size], tag=f"{tag}:{step}"
                )
                segments[cycle_idx][pos][recv_idx] = payload
        cluster.end_step(tag=f"{tag}:{step}")


@dataclass
class PackedLaneGrid:
    """Mutable ``(lanes, segments, width)`` stack of packed bit segments.

    The lockstep engine's working set: lane ``l`` is one (cycle, position)
    pair of a parallel ring schedule, and ``words[l, s]`` holds segment ``s``
    of that lane's vector in :class:`~repro.comm.bits.PackedBits` word layout
    (zero-padded to the shared ``width``).  A synchronous step then gathers
    one ``(lanes, width)`` plane with a single fancy index, merges it with
    one batched expression, and scatters it back — no per-worker Python.

    ``lengths[l, s]`` is the logical bit count of each segment; padding words
    past a segment's data are zero, so any row prefix is a valid
    :class:`~repro.comm.bits.PackedBits` and :meth:`row` can return a
    zero-copy view.
    """

    words: np.ndarray
    lengths: np.ndarray

    def __post_init__(self) -> None:
        self.words = np.ascontiguousarray(self.words, dtype=_WORD_DTYPE)
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        if self.words.ndim != 3:
            raise ValueError("PackedLaneGrid words must be 3-D")
        if self.lengths.shape != self.words.shape[:2]:
            raise ValueError("lengths must be (lanes, segments)")

    @property
    def num_lanes(self) -> int:
        return self.words.shape[0]

    @property
    def num_segments(self) -> int:
        return self.words.shape[1]

    @property
    def width(self) -> int:
        return self.words.shape[2]

    @classmethod
    def from_sign_matrix(
        cls, matrix: np.ndarray, num_segments: int
    ) -> "PackedLaneGrid":
        """Pack a ``(lanes, D)`` sign matrix, split like :func:`split_segments`.

        One vectorized pack per segment (all lanes at once); segment
        boundaries follow ``np.array_split`` semantics so the grid lines up
        bit-for-bit with the scalar path's per-worker segment lists.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("from_sign_matrix expects a 2-D matrix")
        if num_segments < 1:
            raise ValueError("num_segments must be >= 1")
        lanes, dim = matrix.shape
        base, extra = divmod(dim, num_segments)
        seg_lengths = np.full(num_segments, base, dtype=np.int64)
        seg_lengths[:extra] += 1
        width = (int(seg_lengths.max()) + _WORD_BITS - 1) // _WORD_BITS
        words = np.zeros((lanes, num_segments, width), dtype=_WORD_DTYPE)
        lengths = np.broadcast_to(seg_lengths, (lanes, num_segments)).copy()
        start = 0
        for seg, seg_len in enumerate(seg_lengths):
            if seg_len:
                batch = PackedBitsBatch.from_sign_matrix(
                    matrix[:, start : start + seg_len]
                )
                words[:, seg, : batch.width] = batch.words
            start += seg_len
        return cls(words=words, lengths=lengths)

    @classmethod
    def from_packed_rows(
        cls, rows: Sequence[Sequence[PackedBits]]
    ) -> "PackedLaneGrid":
        """Stack per-lane :class:`PackedBits` segment lists into one grid."""
        lanes = len(rows)
        if not lanes:
            raise ValueError("at least one lane required")
        segs = len(rows[0])
        if any(len(row) != segs for row in rows):
            raise ValueError("every lane must hold the same segment count")
        lengths = np.array(
            [[part.length for part in row] for row in rows], dtype=np.int64
        )
        width = (
            int(lengths.max()) + _WORD_BITS - 1
        ) // _WORD_BITS if lengths.size else 0
        words = np.zeros((lanes, segs, width), dtype=_WORD_DTYPE)
        for lane, row in enumerate(rows):
            for seg, part in enumerate(row):
                if not isinstance(part, PackedBits):
                    raise TypeError(f"expected PackedBits, got {type(part)!r}")
                words[lane, seg, : part.words.size] = part.words
        return cls(words=words, lengths=lengths)

    def row(self, lane: int, seg: int) -> PackedBits:
        """Segment ``(lane, seg)`` as a zero-copy :class:`PackedBits` view."""
        length = int(self.lengths[lane, seg])
        num_words = (length + _WORD_BITS - 1) // _WORD_BITS
        return PackedBits(words=self.words[lane, seg, :num_words], length=length)

    def segments_of(self, lane: int) -> list[PackedBits]:
        """All of one lane's segments, in order, as zero-copy views."""
        return [self.row(lane, seg) for seg in range(self.num_segments)]

    def set_row(self, lane: int, seg: int, packed: PackedBits) -> None:
        """Replace segment ``(lane, seg)``, re-zeroing the padding words."""
        if packed.words.size > self.width:
            raise ValueError(
                f"segment of {packed.length} bits exceeds grid width"
            )
        self.words[lane, seg, : packed.words.size] = packed.words
        self.words[lane, seg, packed.words.size :] = 0
        self.lengths[lane, seg] = packed.length


#: Lockstep combine: (received_batch, local_batch, step, receiving_ranks)
#: -> merged batch.  One call merges every lane of a synchronous step.
BatchCombine = Callable[
    [PackedBitsBatch, PackedBitsBatch, int, Sequence[int]], PackedBitsBatch
]


def _lockstep_lanes(
    cycles: Sequence[Sequence[int]], grid: PackedLaneGrid
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Shared lane bookkeeping for the lockstep schedules.

    Lane order is cycle-major: lane ``c * size + p`` is position ``p`` of
    cycle ``c`` — the same flattening :meth:`PackedLaneGrid.from_sign_matrix`
    assumes when the caller stacks vectors rank-by-rank.
    """
    sizes = {len(cycle) for cycle in cycles}
    if len(sizes) > 1:
        raise ValueError("all cycles must have equal length")
    size = next(iter(sizes))
    num_cycles = len(cycles)
    lanes = num_cycles * size
    if grid.num_lanes != lanes or grid.num_segments != size:
        raise ValueError(
            f"grid of {grid.num_lanes}x{grid.num_segments} does not match "
            f"{num_cycles} cycles of length {size}"
        )
    pos = np.tile(np.arange(size), num_cycles)
    base = np.repeat(np.arange(num_cycles) * size, size)
    src_lane = base + (pos - 1) % size
    ranks = [rank for cycle in cycles for rank in cycle]
    return size, pos, src_lane, np.arange(lanes), ranks


def lockstep_ring_reduce_scatter(
    cluster: Cluster,
    cycles: Sequence[Sequence[int]],
    grid: PackedLaneGrid,
    combine: BatchCombine,
    tag: str = "rs",
    on_step_end: Callable[[int, float], None] | None = None,
) -> list[list[int]]:
    """Batched :func:`parallel_ring_reduce_scatter` over a packed lane grid.

    Same schedule, same ownership result, same traffic accounting — but each
    synchronous step is one fancy-index gather, one ``combine`` over a
    :class:`~repro.comm.bits.PackedBitsBatch`, one scatter, and one bulk
    :meth:`~repro.comm.cluster.Cluster.exchange`, independent of worker
    count.  ``combine`` receives the receiving ranks in lane order so
    stateful combiners (per-rank RNG streams) stay bit-identical to the
    scalar path.
    """
    if not cycles:
        return []
    size, pos, src_lane, lane_idx, ranks = _lockstep_lanes(cycles, grid)
    rank_arr = np.asarray(ranks)
    src_rank = rank_arr[src_lane]
    for step in range(size - 1):
        seg = (pos - 1 - step) % size
        received = PackedBitsBatch._trusted(
            grid.words[src_lane, seg], grid.lengths[src_lane, seg]
        )
        local = PackedBitsBatch._trusted(
            grid.words[lane_idx, seg], grid.lengths[lane_idx, seg]
        )
        merged = combine(received, local, step, ranks)
        grid.words[lane_idx, seg] = merged.words
        grid.lengths[lane_idx, seg] = merged.lengths
        nbytes = (received.lengths + 7) // 8
        elapsed = cluster.exchange(
            [
                (int(src_rank[i]), int(rank_arr[i]), int(nbytes[i]))
                for i in range(lane_idx.size)
            ],
            tag=f"{tag}:{step}",
        )
        if on_step_end is not None:
            on_step_end(step, elapsed)
    return [[(p + 1) % size for p in range(size)] for _ in cycles]


def lockstep_ring_all_gather(
    cluster: Cluster,
    cycles: Sequence[Sequence[int]],
    grid: PackedLaneGrid,
    tag: str = "ag",
) -> None:
    """Batched :func:`parallel_ring_all_gather` over a packed lane grid.

    Assumes the ownership layout of :func:`lockstep_ring_reduce_scatter`
    (position ``p`` owns segment ``(p + 1) % size``); mutates the grid in
    place, circulating whole word rows with fancy-index copies.
    """
    if not cycles:
        return
    size, pos, src_lane, lane_idx, ranks = _lockstep_lanes(cycles, grid)
    rank_arr = np.asarray(ranks)
    src_rank = rank_arr[src_lane]
    for step in range(size - 1):
        seg = (pos - step) % size
        moved_words = grid.words[src_lane, seg]
        moved_lengths = grid.lengths[src_lane, seg]
        grid.words[lane_idx, seg] = moved_words
        grid.lengths[lane_idx, seg] = moved_lengths
        nbytes = (moved_lengths + 7) // 8
        cluster.exchange(
            [
                (int(src_rank[i]), int(rank_arr[i]), int(nbytes[i]))
                for i in range(lane_idx.size)
            ],
            tag=f"{tag}:{step}",
        )


def cycle_reduce_steps(
    grid: str,
    num_cycles: int,
    size: int,
    base_weight: int,
    segment_elems: int,
    tag: str,
) -> list[Step]:
    """Compile the reduce-scatter phase of disjoint lockstep ring cycles.

    The SyncPlan mirror of :func:`parallel_ring_reduce_scatter` under the
    Marsit ``⊙`` combine: ``size - 1`` fused SendRecv/MergeSign hops, each a
    single wave in cycle-major lane order (lane ``c * size + p``), preceded
    by the phase barrier that pre-charges the first segment's sign pack.
    Position ``p`` merges segment ``(p - 1 - step) % size`` from its ring
    predecessor with weights ``(step + 1) * base_weight : base_weight``.
    """
    steps: list[Step] = [
        Barrier(
            kind="begin",
            span="reduce-scatter",
            tag=tag,
            compress_elems=segment_elems,
        )
    ]
    for step_idx in range(size - 1):
        transfers = []
        merges = []
        for cycle in range(num_cycles):
            base = cycle * size
            for pos in range(size):
                seg = (pos - 1 - step_idx) % size
                transfers.append(
                    Transfer(
                        src_lane=base + (pos - 1) % size,
                        dst_lane=base + pos,
                        seg=seg,
                    )
                )
                merges.append(
                    Merge(
                        dst_lane=base + pos,
                        src_lane=base + (pos - 1) % size,
                        seg=seg,
                        received_weight=(step_idx + 1) * base_weight,
                        local_weight=base_weight,
                    )
                )
        steps.append(
            SendRecv(grid=grid, tag=f"{tag}:{step_idx}", transfers=tuple(transfers))
        )
        steps.append(
            MergeSign(
                grid=grid,
                waves=(tuple(merges),),
                compress_elems=segment_elems,
                rng_elems=segment_elems,
                bitop_elems=segment_elems,
            )
        )
    steps.append(Barrier(kind="end", span="reduce-scatter"))
    return steps


def cycle_gather_steps(
    grid: str, num_cycles: int, size: int, tag: str
) -> list[Step]:
    """Compile the all-gather phase of disjoint lockstep ring cycles.

    Mirrors :func:`parallel_ring_all_gather`'s ownership walk: at step ``s``
    position ``p`` receives segment ``(p - s) % size`` from its predecessor.
    """
    steps: list[Step] = [Barrier(kind="begin", span="all-gather", tag=tag)]
    for step_idx in range(size - 1):
        transfers = []
        for cycle in range(num_cycles):
            base = cycle * size
            for pos in range(size):
                transfers.append(
                    Transfer(
                        src_lane=base + (pos - 1) % size,
                        dst_lane=base + pos,
                        seg=(pos - step_idx) % size,
                    )
                )
        steps.append(
            Gather(grid=grid, tag=f"{tag}:{step_idx}", transfers=tuple(transfers))
        )
    steps.append(Barrier(kind="end", span="all-gather"))
    return steps


def compile_ring(context: CompileContext) -> SyncPlan:
    """Compile the one-bit RAR round (Figure 2's R and G periods).

    With ``segment_elems`` set, delegates to the segmented-ring compiler
    (paper ref [25]) — one independent ring pass per fixed-size chunk.
    """
    if context.segment_elems is not None:
        from repro.allreduce.segmented import compile_segmented_ring

        return compile_segmented_ring(context)
    size = context.num_workers
    dimension = context.dimension
    seg_elems = max(plan_segment_lengths(dimension, size), default=0)
    steps: list[Step] = [Pack(grid="ring", start=0, stop=dimension)]
    steps += cycle_reduce_steps("ring", 1, size, 1, seg_elems, "m-rs")
    steps += cycle_gather_steps("ring", 1, size, "m-ag")
    return SyncPlan(
        kind="one_bit",
        topology="ring",
        num_workers=size,
        dimension=dimension,
        grids=(
            GridSpec(
                name="ring", lane_ranks=tuple(range(size)), num_segments=size
            ),
        ),
        steps=tuple(steps),
        outputs=(Output(grid="ring", where="gather phase"),),
    )


def ring_allgather_scalars(cluster: Cluster, values: list[float]) -> np.ndarray:
    """All-gather one scalar per worker around the ring (``M - 1`` steps)."""
    num = cluster.num_workers
    if len(values) != num:
        raise ValueError(f"expected {num} scalars, got {len(values)}")
    if num == 1:
        return np.array(values, dtype=np.float64)
    known = [{rank: np.float64(values[rank])} for rank in range(num)]
    for step in range(num - 1):
        cluster.begin_step()
        for rank in range(num):
            origin = (rank - step) % num
            cluster.send(
                rank, (rank + 1) % num, float(known[rank][origin]), tag="scal"
            )
        for rank in range(num):
            origin = (rank - 1 - step) % num
            known[rank][origin] = cluster.recv(
                rank, (rank - 1) % num, tag="scal"
            )
        cluster.end_step()
    return np.array([known[0][rank] for rank in range(num)])


def ring_reduce_scatter(
    cluster: Cluster,
    segments: list[list[Any]],
    combine: Combine,
    ranks: Sequence[int] | None = None,
    tag: str = "rs",
) -> list[int]:
    """Run the reduce phase over one ring of ``ranks``.

    Args:
        cluster: the simulated cluster (sends must follow topology edges).
        segments: ``segments[p][i]`` is the ``i``-th segment held by the
            worker at ring position ``p``; mutated in place.
        combine: folds a received payload into the local segment.  The step
            index tells stateful combiners how many contributions the
            received segment already carries (``step + 1``).
        ranks: the ordered ring cycle; defaults to all workers ``0..M-1``.

    Returns:
        ``owned[p]``: the segment index fully reduced at ring position ``p``.
    """
    cycle = _ring_ranks(cluster, ranks)
    return parallel_ring_reduce_scatter(
        cluster, [cycle], [segments], combine, tag=tag
    )[0]


def ring_all_gather(
    cluster: Cluster,
    segments: list[list[Any]],
    ranks: Sequence[int] | None = None,
    tag: str = "ag",
) -> None:
    """Run the gather phase: circulate owned segments until all are shared.

    Assumes the ownership layout produced by :func:`ring_reduce_scatter`
    (position ``p`` owns segment ``(p + 1) % size``); mutates ``segments``.
    """
    cycle = _ring_ranks(cluster, ranks)
    parallel_ring_all_gather(cluster, [cycle], [segments], tag=tag)


def _add_combine(received: Any, local: np.ndarray, step: int) -> np.ndarray:
    return np.asarray(received, dtype=local.dtype) + local


def ring_allreduce_sum(
    cluster: Cluster,
    vectors: list[np.ndarray],
    ranks: Sequence[int] | None = None,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Full-precision ring all-reduce; returns the per-worker sums.

    Floats travel as ``wire_dtype`` (FP32 by default, matching the paper's
    non-compressed baseline) but accumulate in float64 locally.
    """
    cycle = _ring_ranks(cluster, ranks)
    size = len(cycle)
    if len(vectors) != size:
        raise ValueError("one vector per ring position required")
    if size == 1:
        return [np.asarray(vectors[0], dtype=np.float64).copy()]

    def to_wire(segment: np.ndarray) -> np.ndarray:
        return np.asarray(segment, dtype=wire_dtype)

    segments = [
        [to_wire(seg) for seg in split_segments(vector, size, copy=False)]
        for vector in vectors
    ]
    ring_reduce_scatter(cluster, segments, _add_combine, ranks=cycle)
    ring_all_gather(cluster, segments, ranks=cycle)
    return [
        np.concatenate([np.asarray(seg, dtype=np.float64) for seg in worker])
        for worker in segments
    ]


def ring_allreduce_mean(
    cluster: Cluster,
    vectors: list[np.ndarray],
    ranks: Sequence[int] | None = None,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Ring all-reduce returning per-worker means."""
    sums = ring_allreduce_sum(cluster, vectors, ranks=ranks, wire_dtype=wire_dtype)
    scale = 1.0 / len(sums)
    return [total * scale for total in sums]


def signsum_ring_allreduce(
    cluster: Cluster,
    sign_vectors: list[np.ndarray],
    ranks: Sequence[int] | None = None,
    charge_compression: bool = True,
    elias_coded: bool = False,
) -> list[np.ndarray]:
    """Ring all-reduce of integer sign sums with bit-length expansion.

    This is the linear SSDM-under-MAR baseline of Section 3.1: workers
    all-reduce the coordinate-wise *sum of signs*.  A partial sum over ``m``
    workers lies in ``[-m, +m]`` and is charged
    ``ceil(log2(m + 1)) + 1`` bits per element on the wire
    (:func:`signed_int_bit_width`), so the message grows every hop up to
    ``~log2(M)`` bits — never back down to one bit.

    Args:
        sign_vectors: per-worker ``{-1, +1}`` vectors.
        charge_compression: charge sign-extraction time to the timeline.
        elias_coded: charge each hop at the exact Elias-gamma entropy code
            of the zigzagged partial sums (the Section 5 "Elias coding to
            compact the transmission message" baseline) instead of the fixed
            expanded width.  Shorter on average (small sums dominate) but
            still strictly more than one bit per element.

    Returns:
        Per-worker integer sum vectors (all equal).
    """
    cycle = _ring_ranks(cluster, ranks)
    size = len(cycle)
    if len(sign_vectors) != size:
        raise ValueError("one sign vector per ring position required")
    for vector in sign_vectors:
        array = np.asarray(vector)
        if array.size and not ((array == -1) | (array == 1)).all():
            raise ValueError("sign vectors must be over {-1, +1}")
    if charge_compression:
        total_elements = sum(int(np.asarray(v).size) for v in sign_vectors)
        cluster.charge(
            Phase.COMPRESSION, cluster.cost_model.compress_time(total_elements)
        )
    if size == 1:
        return [np.asarray(sign_vectors[0], dtype=np.int64).copy()]

    def wrap(segment: np.ndarray, contributors: int) -> SizedPayload:
        segment = np.asarray(segment, dtype=np.int64)
        if elias_coded and segment.size:
            # A sum of m iid signs lives on {-m, -m+2, ..., m} with a
            # binomial peak at 0; re-index by half-steps from the mode so
            # the common values get the short gamma codes.
            half_steps = (segment + contributors) // 2 - contributors // 2
            _, coded_bits = elias_gamma_encode(zigzag_encode(half_steps))
            nbytes = (coded_bits + 7) // 8
        else:
            bits = signed_int_bit_width(contributors)
            nbytes = (bits * int(segment.size) + 7) // 8
        return SizedPayload(value=segment, nbytes=nbytes)

    segments: list[list[Any]] = [
        [
            wrap(seg, 1)
            for seg in split_segments(
                np.asarray(vec, dtype=np.int64), size, copy=False
            )
        ]
        for vec in sign_vectors
    ]

    def combine(received: SizedPayload, local: SizedPayload, step: int) -> SizedPayload:
        merged = received.value + local.value
        return wrap(merged, step + 2)

    ring_reduce_scatter(cluster, segments, combine, ranks=cycle)
    ring_all_gather(cluster, segments, ranks=cycle)
    return [
        np.concatenate([seg.value for seg in worker_segments])
        for worker_segments in segments
    ]
