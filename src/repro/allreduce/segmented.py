"""Segmented-ring all-reduce (Jia et al. 2018 — paper ref [25]).

The vector is cut into fixed-size segments that are pipelined through
independent ring all-reduces; small segments keep per-step messages under
the NIC's optimal packet size and overlap reduce/gather of different
segments.  In the synchronous timing model the pipelining shows up as more,
smaller steps; traffic volume matches the plain ring.
"""

from __future__ import annotations

import numpy as np

from repro.comm.cluster import Cluster
from repro.allreduce.ring import ring_allreduce_sum

__all__ = ["segmented_ring_allreduce"]


def segmented_ring_allreduce(
    cluster: Cluster,
    vectors: list[np.ndarray],
    segment_elems: int,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Pipelined ring all-reduce with a fixed segment size.

    Args:
        vectors: per-worker vectors (equal dimension).
        segment_elems: elements per pipeline segment; each segment runs a
            full ring all-reduce of its slice.

    Returns:
        Per-worker sums.
    """
    if segment_elems < 1:
        raise ValueError("segment_elems must be >= 1")
    num = cluster.num_workers
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    arrays = [np.asarray(vector, dtype=np.float64) for vector in vectors]
    dimension = arrays[0].size
    if any(a.size != dimension for a in arrays):
        raise ValueError("all vectors must share one dimension")

    outputs = [np.empty(dimension) for _ in range(num)]
    for start in range(0, dimension, segment_elems):
        stop = min(start + segment_elems, dimension)
        slices = [a[start:stop] for a in arrays]
        reduced = ring_allreduce_sum(cluster, slices, wire_dtype=wire_dtype)
        for rank in range(num):
            outputs[rank][start:stop] = reduced[rank]
    return outputs
