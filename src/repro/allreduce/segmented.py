"""Segmented-ring all-reduce (Jia et al. 2018 — paper ref [25]).

The vector is cut into fixed-size segments that are pipelined through
independent ring all-reduces; small segments keep per-step messages under
the NIC's optimal packet size and overlap reduce/gather of different
segments.  In the synchronous timing model the pipelining shows up as more,
smaller steps; traffic volume matches the plain ring.
"""

from __future__ import annotations

import numpy as np

from repro.comm.cluster import Cluster
from repro.allreduce.ring import (
    cycle_gather_steps,
    cycle_reduce_steps,
    ring_allreduce_sum,
)
from repro.sched.plan import (
    CompileContext,
    GridSpec,
    Output,
    Pack,
    Step,
    SyncPlan,
    plan_segment_lengths,
)

__all__ = ["compile_segmented_ring", "segmented_ring_allreduce"]


def compile_segmented_ring(context: CompileContext) -> SyncPlan:
    """Compile the segmented one-bit ring: one ring pass per pipeline chunk.

    Each fixed-size chunk of the vector gets its own grid, reduce phase, and
    gather phase — the plan equivalent of running independent ring passes
    back to back; traffic volume matches the plain ring.
    """
    chunk = context.segment_elems
    if chunk is None or chunk < 1:
        raise ValueError("segmented ring requires segment_elems >= 1")
    size = context.num_workers
    dimension = context.dimension
    grids: list[GridSpec] = []
    steps: list[Step] = []
    outputs: list[Output] = []
    for start in range(0, dimension, chunk):
        stop = min(start + chunk, dimension)
        name = f"seg{start}"
        grids.append(
            GridSpec(
                name=name, lane_ranks=tuple(range(size)), num_segments=size
            )
        )
        seg_elems = max(plan_segment_lengths(stop - start, size), default=0)
        steps.append(Pack(grid=name, start=start, stop=stop))
        steps += cycle_reduce_steps(name, 1, size, 1, seg_elems, f"m-seg{start}-rs")
        steps += cycle_gather_steps(name, 1, size, f"m-seg{start}-ag")
        outputs.append(Output(grid=name, where="segmented-ring gather"))
    return SyncPlan(
        kind="one_bit",
        topology="ring",
        num_workers=size,
        dimension=dimension,
        grids=tuple(grids),
        steps=tuple(steps),
        outputs=tuple(outputs),
    )


def segmented_ring_allreduce(
    cluster: Cluster,
    vectors: list[np.ndarray],
    segment_elems: int,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Pipelined ring all-reduce with a fixed segment size.

    Args:
        vectors: per-worker vectors (equal dimension).
        segment_elems: elements per pipeline segment; each segment runs a
            full ring all-reduce of its slice.

    Returns:
        Per-worker sums.
    """
    if segment_elems < 1:
        raise ValueError("segment_elems must be >= 1")
    num = cluster.num_workers
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    arrays = [np.asarray(vector, dtype=np.float64) for vector in vectors]
    dimension = arrays[0].size
    if any(a.size != dimension for a in arrays):
        raise ValueError("all vectors must share one dimension")

    outputs = [np.empty(dimension) for _ in range(num)]
    for start in range(0, dimension, segment_elems):
        stop = min(start + segment_elems, dimension)
        slices = [a[start:stop] for a in arrays]
        reduced = ring_allreduce_sum(cluster, slices, wire_dtype=wire_dtype)
        for rank in range(num):
            outputs[rank][start:stop] = reduced[rank]
    return outputs
