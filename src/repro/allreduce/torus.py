"""2D-torus all-reduce (TAR, Mikami et al. 2018 — paper ref [6]).

The hierarchical schedule runs four phases on an ``rows x cols`` torus, with
**all rows (resp. columns) advancing in lockstep**:

1. reduce-scatter along every row ring simultaneously (``cols - 1`` steps,
   segments of ``D / cols``),
2. all-reduce of each worker's owned row-chunk along every column ring
   simultaneously (``2 (rows - 1)`` steps on ``D / (rows cols)`` pieces),
3. all-gather along every row ring (``cols - 1`` steps).

Total traffic per worker is the all-reduce-optimal ``2 D (M - 1) / M``
elements — the *same volume* as the flat ring — but only
``2 (rows + cols - 2)`` sequential steps instead of ``2 (M - 1)``, and the
column-phase messages are ``cols`` times smaller.  That step/latency saving
is why every baseline communicates faster under TAR in Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.comm.bits import signed_int_bit_width
from repro.comm.cluster import Cluster, SizedPayload
from repro.comm.timing import Phase
from repro.allreduce.ring import (
    cycle_gather_steps,
    cycle_reduce_steps,
    parallel_ring_all_gather,
    parallel_ring_reduce_scatter,
    split_segments,
)
from repro.sched.plan import (
    CompileContext,
    GridSpec,
    Output,
    Pack,
    Restack,
    Step,
    SyncPlan,
    Unstack,
    plan_segment_lengths,
)

__all__ = [
    "col_cycles",
    "compile_torus",
    "row_cycles",
    "signsum_torus_allreduce",
    "torus_allgather_scalars",
    "torus_allreduce_mean",
    "torus_allreduce_sum",
    "torus_rows_cols",
]


def compile_torus(context: CompileContext) -> SyncPlan:
    """Compile the one-bit TAR round: row reduce, column all-reduce, gathers.

    Row-phase lanes are ranks in row-major order (the row-cycle flatten);
    the column phase restacks each rank's owned row segment into a second
    grid in column-cycle order — mirroring the hand-written schedules'
    ``split(rows)`` so per-rank RNG streams line up exactly.  The column
    merges carry ``base_weight=cols`` because every merged vector already
    represents a whole row (the weighted generalization of Eq. 2).
    """
    rows, cols = context.meta["rows"], context.meta["cols"]
    num = rows * cols
    if num != context.num_workers:
        raise ValueError("torus shape does not match worker count")
    dimension = context.dimension
    row_lens = plan_segment_lengths(dimension, cols) if cols > 1 else [dimension]

    def owned_of(rank: int) -> int:
        return (rank % cols + 1) % cols if cols > 1 else 0

    grids = [
        GridSpec(
            name="torus-rows",
            lane_ranks=tuple(range(num)),
            num_segments=cols if cols > 1 else 1,
        )
    ]
    steps: list[Step] = [Pack(grid="torus-rows", start=0, stop=dimension)]
    if cols > 1:
        steps += cycle_reduce_steps(
            "torus-rows", rows, cols, 1, max(row_lens), "m-row-rs"
        )
    if rows > 1:
        col_ranks = [
            rank for ranks in col_cycles(rows, cols) for rank in ranks
        ]
        grids.append(
            GridSpec(
                name="torus-cols",
                lane_ranks=tuple(col_ranks),
                num_segments=rows,
            )
        )
        steps.append(
            Restack(
                grid="torus-cols",
                src_grid="torus-rows",
                sources=tuple((rank, owned_of(rank)) for rank in col_ranks),
                parts=rows,
            )
        )
        col_seg_elems = max(
            plan_segment_lengths(row_lens[owned_of(0)], rows), default=0
        )
        steps += cycle_reduce_steps(
            "torus-cols", cols, rows, cols, col_seg_elems, "m-col-rs"
        )
        steps += cycle_gather_steps("torus-cols", cols, rows, "m-col-ag")
        steps.append(
            Unstack(
                grid="torus-rows",
                src_grid="torus-cols",
                targets=tuple((rank, owned_of(rank)) for rank in col_ranks),
            )
        )
    if cols > 1:
        steps += cycle_gather_steps("torus-rows", rows, cols, "m-row-ag")
    return SyncPlan(
        kind="one_bit",
        topology="torus",
        num_workers=num,
        dimension=dimension,
        grids=tuple(grids),
        steps=tuple(steps),
        outputs=(Output(grid="torus-rows", where="torus gather"),),
    )


def torus_rows_cols(cluster: Cluster) -> tuple[int, int]:
    """Extract the grid shape from a torus cluster, validating topology."""
    meta = cluster.topology.meta
    if cluster.topology.name != "torus" or "rows" not in meta:
        raise ValueError("torus_allreduce requires a torus topology")
    return meta["rows"], meta["cols"]


def row_cycles(rows: int, cols: int) -> list[list[int]]:
    """Rank cycles of every row ring, row-major layout."""
    return [[r * cols + c for c in range(cols)] for r in range(rows)]


def col_cycles(rows: int, cols: int) -> list[list[int]]:
    """Rank cycles of every column ring, row-major layout."""
    return [[r * cols + c for r in range(rows)] for c in range(cols)]


def _add(received: np.ndarray, local: np.ndarray, step: int) -> np.ndarray:
    return np.asarray(received, dtype=local.dtype) + local


def torus_allreduce_sum(
    cluster: Cluster,
    vectors: list[np.ndarray],
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Hierarchical 2D-torus all-reduce; returns per-worker sums."""
    rows, cols = torus_rows_cols(cluster)
    num = rows * cols
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    if num == 1:
        return [np.asarray(vectors[0], dtype=np.float64).copy()]

    dimension = int(np.asarray(vectors[0]).size)
    for vector in vectors:
        if int(np.asarray(vector).size) != dimension:
            raise ValueError("all vectors must share one dimension")

    rows_list = row_cycles(rows, cols)
    cols_list = col_cycles(rows, cols)

    # Phase 1: reduce-scatter within every row ring, in lockstep.
    row_segments: dict[int, list[np.ndarray]] = {}
    owned_index: dict[int, int] = {}
    if cols > 1:
        all_segments = [
            [
                [
                    np.asarray(seg, dtype=wire_dtype)
                    for seg in split_segments(vectors[rank], cols, copy=False)
                ]
                for rank in cycle
            ]
            for cycle in rows_list
        ]
        owned = parallel_ring_reduce_scatter(
            cluster, rows_list, all_segments, _add, tag="tar-row-rs"
        )
        for cycle_idx, cycle in enumerate(rows_list):
            for pos, rank in enumerate(cycle):
                row_segments[rank] = all_segments[cycle_idx][pos]
                owned_index[rank] = owned[cycle_idx][pos]
    else:
        for rank in range(num):
            row_segments[rank] = [np.asarray(vectors[rank], dtype=wire_dtype)]
            owned_index[rank] = 0

    # Phase 2: all-reduce the owned chunk within every column ring.
    if rows > 1:
        col_segments = [
            [
                [
                    np.asarray(seg, dtype=wire_dtype)
                    for seg in split_segments(
                        np.asarray(
                            row_segments[rank][owned_index[rank]], dtype=np.float64
                        ),
                        rows,
                        copy=False,
                    )
                ]
                for rank in cycle
            ]
            for cycle in cols_list
        ]
        parallel_ring_reduce_scatter(
            cluster, cols_list, col_segments, _add, tag="tar-col-rs"
        )
        parallel_ring_all_gather(cluster, cols_list, col_segments, tag="tar-col-ag")
        for cycle_idx, cycle in enumerate(cols_list):
            for pos, rank in enumerate(cycle):
                merged = np.concatenate(
                    [
                        np.asarray(seg, dtype=np.float64)
                        for seg in col_segments[cycle_idx][pos]
                    ]
                )
                row_segments[rank][owned_index[rank]] = np.asarray(
                    merged, dtype=wire_dtype
                )

    # Phase 3: all-gather within every row ring, in lockstep.
    if cols > 1:
        all_segments = [[row_segments[rank] for rank in cycle] for cycle in rows_list]
        parallel_ring_all_gather(cluster, rows_list, all_segments, tag="tar-row-ag")

    return [
        np.concatenate(
            [np.asarray(seg, dtype=np.float64) for seg in row_segments[rank]]
        )
        for rank in range(num)
    ]


def torus_allreduce_mean(
    cluster: Cluster,
    vectors: list[np.ndarray],
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """2D-torus all-reduce returning per-worker means."""
    sums = torus_allreduce_sum(cluster, vectors, wire_dtype=wire_dtype)
    scale = 1.0 / len(sums)
    return [total * scale for total in sums]


def signsum_torus_allreduce(
    cluster: Cluster,
    sign_vectors: list[np.ndarray],
    charge_compression: bool = True,
) -> list[np.ndarray]:
    """Integer sign-sum all-reduce on a torus, with bit-length expansion.

    The hierarchical analogue of
    :func:`repro.allreduce.ring.signsum_ring_allreduce`: row rings carry
    partial sums over ``1..cols`` workers, column rings over multiples of
    ``cols``, each hop charged at the fixed signed width of its partial-sum
    range — Section 3.1's expansion, under TAR.
    """
    rows, cols = torus_rows_cols(cluster)
    num = rows * cols
    if len(sign_vectors) != num:
        raise ValueError(f"expected {num} sign vectors, got {len(sign_vectors)}")
    for vector in sign_vectors:
        array = np.asarray(vector)
        if array.size and not ((array == -1) | (array == 1)).all():
            raise ValueError("sign vectors must be over {-1, +1}")
    if charge_compression:
        total = sum(int(np.asarray(v).size) for v in sign_vectors)
        cluster.charge(Phase.COMPRESSION, cluster.cost_model.compress_time(total))
    if num == 1:
        return [np.asarray(sign_vectors[0], dtype=np.int64).copy()]

    def wrap(segment: np.ndarray, contributors: int) -> SizedPayload:
        segment = np.asarray(segment, dtype=np.int64)
        bits = signed_int_bit_width(contributors)
        return SizedPayload(
            value=segment, nbytes=(bits * int(segment.size) + 7) // 8
        )

    rows_list = row_cycles(rows, cols)
    cols_list = col_cycles(rows, cols)

    # Row phase: reduce-scatter integer sums within each row.
    row_segments: dict[int, list[SizedPayload]] = {}
    owned_index: dict[int, int] = {}
    if cols > 1:
        all_segments = [
            [
                [wrap(seg, 1) for seg in split_segments(
                    np.asarray(sign_vectors[rank], dtype=np.int64),
                    cols, copy=False)]
                for rank in cycle
            ]
            for cycle in rows_list
        ]

        def row_combine(received, local, step):
            return wrap(received.value + local.value, step + 2)

        parallel_ring_reduce_scatter(
            cluster, rows_list, all_segments, row_combine, tag="ss-row-rs"
        )
        for cycle_idx, cycle in enumerate(rows_list):
            for pos, rank in enumerate(cycle):
                row_segments[rank] = all_segments[cycle_idx][pos]
                owned_index[rank] = (pos + 1) % cols
    else:
        for rank in range(num):
            row_segments[rank] = [
                wrap(np.asarray(sign_vectors[rank], dtype=np.int64), 1)
            ]
            owned_index[rank] = 0

    # Column phase: all-reduce the owned chunk (each already sums `cols`).
    if rows > 1:
        col_segments = [
            [
                [wrap(seg, cols) for seg in split_segments(
                    row_segments[rank][owned_index[rank]].value,
                    rows, copy=False)]
                for rank in cycle
            ]
            for cycle in cols_list
        ]

        def col_combine(received, local, step):
            return wrap(received.value + local.value, (step + 2) * cols)

        parallel_ring_reduce_scatter(
            cluster, cols_list, col_segments, col_combine, tag="ss-col-rs"
        )
        parallel_ring_all_gather(cluster, cols_list, col_segments, tag="ss-col-ag")
        for cycle_idx, cycle in enumerate(cols_list):
            for pos, rank in enumerate(cycle):
                merged = np.concatenate(
                    [seg.value for seg in col_segments[cycle_idx][pos]]
                )
                row_segments[rank][owned_index[rank]] = wrap(merged, num)
    else:
        for rank in range(num):
            row_segments[rank][owned_index[rank]] = wrap(
                row_segments[rank][owned_index[rank]].value, num
            )

    # Row gather of the fully reduced segments.
    if cols > 1:
        all_segments = [[row_segments[rank] for rank in cycle] for cycle in rows_list]
        parallel_ring_all_gather(cluster, rows_list, all_segments, tag="ss-row-ag")

    return [
        np.concatenate([seg.value for seg in row_segments[rank]])
        for rank in range(num)
    ]


def torus_allgather_scalars(cluster: Cluster, values: list[float]) -> np.ndarray:
    """All-gather one scalar per worker over torus links.

    Row rings circulate scalars (cols - 1 steps), then column rings
    circulate each worker's row collection (rows - 1 steps).
    """
    rows, cols = torus_rows_cols(cluster)
    num = rows * cols
    if len(values) != num:
        raise ValueError(f"expected {num} scalars, got {len(values)}")
    known: list[dict[int, float]] = [
        {rank: float(values[rank])} for rank in range(num)
    ]

    def circulate(cycles, payload_of):
        size = len(cycles[0])
        for step in range(size - 1):
            cluster.begin_step()
            for cycle in cycles:
                for pos, rank in enumerate(cycle):
                    origin = cycle[(pos - step) % size]
                    cluster.send(
                        rank, cycle[(pos + 1) % size], payload_of(rank, origin),
                        tag="scal",
                    )
            for cycle in cycles:
                for pos, rank in enumerate(cycle):
                    origin = cycle[(pos - 1 - step) % size]
                    received = cluster.recv(
                        rank, cycle[(pos - 1) % size], tag="scal"
                    )
                    known[rank].update(received)
            cluster.end_step()

    if cols > 1:
        circulate(
            row_cycles(rows, cols),
            lambda rank, origin: {origin: known[rank][origin]},
        )
    if rows > 1:
        # Each worker now holds its whole row; circulate row collections.
        row_of = {rank: rank // cols for rank in range(num)}
        circulate(
            col_cycles(rows, cols),
            lambda rank, origin: {
                k: v for k, v in known[rank].items()
                if k // cols == row_of[origin]
            },
        )
    return np.array([known[0][rank] for rank in range(num)])
