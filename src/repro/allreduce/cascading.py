"""Cascading compression: the Section 3.2 anti-pattern, faithfully built.

Each ring hop runs the paper's five-step sequence: **receive** a compressed
segment, **recover** it to full precision, **aggregate** with the local raw
segment, **compress** the sum again, **send**.  Two pathologies follow, both
of which this implementation reproduces:

1. *Time*: recover/compress cannot overlap reception (the received bits are
   needed first), so every hop serializes a decompress + compress on the
   critical path; charged to the compression phase (Figure 1a).
2. *Error*: each hop re-quantizes an already-quantized partial sum whose
   l2-norm keeps growing, so the deviation compounds per Theorem 3
   (``(2D)^M G^2 / M``) and the matching rate collapses (Figure 1b) —
   divergence at M = 8 in Table 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.compression.base import Compressor, Payload
from repro.allreduce.ring import ring_all_gather, ring_reduce_scatter, split_segments

__all__ = ["cascading_ring_allreduce"]


def cascading_ring_allreduce(
    cluster: Cluster,
    vectors: list[np.ndarray],
    compressor: Compressor,
    rngs: Sequence[np.random.Generator],
    charge_time: bool = True,
) -> list[np.ndarray]:
    """Ring all-reduce with per-hop decompress -> add -> recompress.

    Args:
        cluster: ring-topology cluster.
        vectors: per-worker gradient vectors.
        compressor: the per-hop compressor ``Q`` (SSDM in the paper).
        rngs: one generator per worker for stochastic compression.
        charge_time: charge the serialized codec work to the timeline.

    Returns:
        Per-worker decoded aggregation results, **divided by M** (the mean
        estimate ``s_3`` of Appendix A).  All workers return the same value.
    """
    num = cluster.num_workers
    if len(vectors) != num or len(rngs) != num:
        raise ValueError("need one vector and one rng per worker")
    if num == 1:
        return [np.asarray(vectors[0], dtype=np.float64).copy()]

    raw = [split_segments(np.asarray(v, dtype=np.float64), num) for v in vectors]
    segment_elems = max(segment.size for segment in raw[0])

    # Step 0 sends a freshly compressed local segment; later sends forward
    # the payload produced by the previous hop's combine.  ``segments``
    # therefore starts as payloads for the first send index and raw floats
    # elsewhere; combine always receives a payload + a raw local segment.
    segments: list[list[object]] = []
    for pos in range(num):
        worker_segments: list[object] = list(raw[pos])
        first_send = pos % num
        worker_segments[first_send] = compressor.compress(
            raw[pos][first_send], rng=rngs[pos]
        )
        segments.append(worker_segments)
    if charge_time:
        cluster.charge(
            Phase.COMPRESSION, cluster.cost_model.compress_time(segment_elems)
        )

    def combine(received: Payload, local: object, step: int, rank: int) -> Payload:
        if not isinstance(local, np.ndarray):
            raise TypeError("cascading combine expected a raw local segment")
        recovered = received.decode()
        return compressor.compress(recovered + local, rng=rngs[rank])

    ring_reduce_scatter(cluster, segments, combine, tag="casc-rs")
    if charge_time:
        per_hop = cluster.cost_model.decompress_time(
            segment_elems
        ) + cluster.cost_model.compress_time(segment_elems)
        cluster.charge(Phase.COMPRESSION, (num - 1) * per_hop)

    ring_all_gather(cluster, segments, tag="casc-ag")
    if charge_time:
        cluster.charge(
            Phase.COMPRESSION,
            cluster.cost_model.decompress_time(segment_elems * num),
        )

    results = []
    for pos in range(num):
        decoded = [
            seg.decode() if isinstance(seg, Payload) else np.asarray(seg)
            for seg in segments[pos]
        ]
        results.append(np.concatenate(decoded) / num)
    return results
