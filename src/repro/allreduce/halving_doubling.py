"""Recursive halving-doubling all-reduce (Thakur et al.'s butterfly schedule).

The proof that the SyncPlan abstraction pays: a complete new one-bit
topology in one compiler function, with **zero executor changes**.

With ``M = 2^k`` workers the vector is split into ``M`` segments.  The
*halving* (reduce-scatter) phase runs ``k`` steps: at step ``s`` every rank
exchanges with its partner across hypercube bit ``k - s - 1``, keeping the
half of its current segment block that matches its own bit and merging the
partner's copies of those kept segments (``2^s`` workers folded on each
side, so the Marsit merge weights are ``2^s : 2^s``).  After ``k`` steps
rank ``r`` owns segment ``r``, fully reduced.  The *doubling* (all-gather)
phase mirrors the recursion back up: step ``t`` exchanges owned blocks with
the partner across bit ``t``, doubling each rank's holdings until everyone
has everything.  ``2k`` steps total versus the ring's ``2(M - 1)``, at the
same optimal ``2 D (M - 1) / M`` traffic volume.
"""

from __future__ import annotations

import numpy as np

from repro.allreduce.ring import split_segments
from repro.comm.cluster import Cluster
from repro.sched.plan import (
    Barrier,
    CompileContext,
    Gather,
    GridSpec,
    Merge,
    MergeSign,
    Output,
    Pack,
    SendRecv,
    Step,
    SyncPlan,
    Transfer,
    plan_segment_lengths,
)

__all__ = [
    "compile_halving_doubling",
    "halving_doubling_allreduce_mean",
    "halving_doubling_allreduce_sum",
]


def _order_of(context_meta, num_workers: int) -> int:
    order = context_meta.get("order")
    if order is None or num_workers != 1 << order:
        raise ValueError(
            "halving-doubling requires a power-of-two halving_doubling "
            f"topology, got {num_workers} workers"
        )
    return order


def compile_halving_doubling(context: CompileContext) -> SyncPlan:
    """Compile the one-bit halving-doubling round (~the whole topology)."""
    num = context.num_workers
    order = _order_of(context.meta, num)
    dimension = context.dimension
    seg_lens = plan_segment_lengths(dimension, num)
    steps: list[Step] = [
        Pack(grid="hd", start=0, stop=dimension),
        Barrier(
            kind="begin",
            span="reduce-scatter",
            tag="m-hd-rs",
            compress_elems=dimension,
        ),
    ]
    # Halving: each rank's block shrinks to the half matching its own bit.
    blocks = [list(range(num)) for _ in range(num)]
    for step_idx in range(order):
        bit = 1 << (order - step_idx - 1)
        kept = [
            [i for i in blocks[rank] if (i & bit) == (rank & bit)]
            for rank in range(num)
        ]
        transfers = tuple(
            Transfer(src_lane=rank ^ bit, dst_lane=rank, seg=seg)
            for rank in range(num)
            for seg in kept[rank]
        )
        waves = tuple(
            tuple(
                Merge(
                    dst_lane=rank,
                    src_lane=rank ^ bit,
                    seg=kept[rank][wave],
                    received_weight=1 << step_idx,
                    local_weight=1 << step_idx,
                )
                for rank in range(num)
            )
            for wave in range(len(kept[0]))
        )
        hop_elems = sum(seg_lens[i] for i in kept[0])
        steps.append(
            SendRecv(grid="hd", tag=f"m-hd-rs:{step_idx}", transfers=transfers)
        )
        steps.append(
            MergeSign(
                grid="hd",
                waves=waves,
                compress_elems=None,
                rng_elems=hop_elems,
                bitop_elems=hop_elems,
            )
        )
        blocks = kept
    steps.append(Barrier(kind="end", span="reduce-scatter"))
    # Doubling: owned blocks double back up until everyone holds everything.
    steps.append(Barrier(kind="begin", span="all-gather", tag="m-hd-ag"))
    owned = [[rank] for rank in range(num)]
    for step_idx in range(order):
        bit = 1 << step_idx
        steps.append(
            Gather(
                grid="hd",
                tag=f"m-hd-ag:{step_idx}",
                transfers=tuple(
                    Transfer(src_lane=rank ^ bit, dst_lane=rank, seg=seg)
                    for rank in range(num)
                    for seg in owned[rank ^ bit]
                ),
            )
        )
        owned = [sorted(owned[rank] + owned[rank ^ bit]) for rank in range(num)]
    steps.append(Barrier(kind="end", span="all-gather"))
    return SyncPlan(
        kind="one_bit",
        topology="halving_doubling",
        num_workers=num,
        dimension=dimension,
        grids=(
            GridSpec(name="hd", lane_ranks=tuple(range(num)), num_segments=num),
        ),
        steps=tuple(steps),
        outputs=(Output(grid="hd", where="halving-doubling gather"),),
    )


def halving_doubling_allreduce_sum(
    cluster: Cluster,
    vectors: list[np.ndarray],
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Full-precision halving-doubling all-reduce; returns per-worker sums."""
    meta = cluster.topology.meta
    if cluster.topology.name != "halving_doubling":
        raise ValueError(
            "halving_doubling_allreduce requires a halving_doubling topology"
        )
    num = cluster.num_workers
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    if num == 1:
        return [np.asarray(vectors[0], dtype=np.float64).copy()]
    order = _order_of(meta, num)

    segs = [
        [
            np.asarray(part, dtype=wire_dtype)
            for part in split_segments(np.asarray(vector), num, copy=False)
        ]
        for vector in vectors
    ]
    blocks = [list(range(num)) for _ in range(num)]
    for step_idx in range(order):
        bit = 1 << (order - step_idx - 1)
        kept = [
            [i for i in blocks[rank] if (i & bit) == (rank & bit)]
            for rank in range(num)
        ]
        tag = f"hd-rs:{step_idx}"
        cluster.begin_step()
        for rank in range(num):
            partner = rank ^ bit
            cluster.send(
                rank, partner, [segs[rank][i] for i in kept[partner]], tag=tag
            )
        for rank in range(num):
            payload = cluster.recv(rank, rank ^ bit, tag=tag)
            for seg, part in zip(kept[rank], payload):
                segs[rank][seg] = (
                    np.asarray(part, dtype=segs[rank][seg].dtype)
                    + segs[rank][seg]
                )
        cluster.end_step(tag=tag)
        blocks = kept
    owned = [[rank] for rank in range(num)]
    for step_idx in range(order):
        bit = 1 << step_idx
        tag = f"hd-ag:{step_idx}"
        cluster.begin_step()
        for rank in range(num):
            partner = rank ^ bit
            cluster.send(
                rank, partner, [segs[rank][i] for i in owned[rank]], tag=tag
            )
        for rank in range(num):
            partner = rank ^ bit
            payload = cluster.recv(rank, partner, tag=tag)
            for seg, part in zip(owned[partner], payload):
                segs[rank][seg] = np.asarray(part, dtype=wire_dtype)
        cluster.end_step(tag=tag)
        owned = [sorted(owned[rank] + owned[rank ^ bit]) for rank in range(num)]
    return [
        np.concatenate([np.asarray(part, dtype=np.float64) for part in row])
        for row in segs
    ]


def halving_doubling_allreduce_mean(
    cluster: Cluster,
    vectors: list[np.ndarray],
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """Halving-doubling all-reduce returning per-worker means."""
    sums = halving_doubling_allreduce_sum(
        cluster, vectors, wire_dtype=wire_dtype
    )
    scale = 1.0 / len(sums)
    return [total * scale for total in sums]
