"""Gossip averaging — the decentralized baseline of the paper's intro.

Workers average only with their topology neighbors each round using a
doubly-stochastic mixing matrix (Metropolis-Hastings weights).  Consensus is
reached asymptotically at a rate set by the spectral gap; under a sparse ring
that gap is O(1/M^2), which is the "much slower than MAR" behaviour the
introduction cites (refs [8-10]).
"""

from __future__ import annotations

import numpy as np

from repro.comm.cluster import Cluster

__all__ = ["gossip_average_round", "gossip_mixing_matrix"]


def _require_symmetric(cluster: Cluster) -> None:
    graph = cluster.topology.graph
    for u, v in graph.edges:
        if not graph.has_edge(v, u):
            raise ValueError(
                "gossip requires a symmetric topology (every link "
                f"bidirectional); missing reverse of {u} -> {v}.  Use "
                "ring_topology(M, bidirectional=True) or "
                "fully_connected_topology."
            )


def gossip_mixing_matrix(cluster: Cluster) -> np.ndarray:
    """Metropolis-Hastings doubly-stochastic weights for the topology.

    ``W[i, j] = 1 / (1 + max(deg_i, deg_j))`` for undirected neighbor pairs,
    diagonal set so rows sum to one.  Symmetric, hence doubly stochastic.
    Requires a symmetric topology — mass conservation breaks if a worker can
    send to a neighbor it cannot hear from.
    """
    _require_symmetric(cluster)
    num = cluster.num_workers
    undirected = {
        frozenset((u, v)) for u, v in cluster.topology.graph.edges if u != v
    }
    degree = [0] * num
    for pair in undirected:
        u, v = tuple(pair)
        degree[u] += 1
        degree[v] += 1
    weights = np.zeros((num, num))
    for pair in undirected:
        u, v = tuple(pair)
        weights[u, v] = weights[v, u] = 1.0 / (1.0 + max(degree[u], degree[v]))
    for rank in range(num):
        weights[rank, rank] = 1.0 - weights[rank].sum()
    return weights


def gossip_average_round(
    cluster: Cluster,
    vectors: list[np.ndarray],
    mixing: np.ndarray | None = None,
    wire_dtype: np.dtype = np.dtype(np.float32),
) -> list[np.ndarray]:
    """One synchronous gossip round: exchange with neighbors, mix.

    Every undirected neighbor pair exchanges vectors in a single step, then
    each worker forms its mixing-weighted average.  Returns the new
    per-worker vectors (not yet at consensus).
    """
    _require_symmetric(cluster)
    num = cluster.num_workers
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    if mixing is None:
        mixing = gossip_mixing_matrix(cluster)
    arrays = [np.asarray(vector, dtype=np.float64) for vector in vectors]

    cluster.begin_step()
    for src in range(num):
        for dst in cluster.topology.neighbors_out(src):
            cluster.send(src, dst, np.asarray(arrays[src], dtype=wire_dtype), tag="gossip")
    received: dict[tuple[int, int], np.ndarray] = {}
    for dst in range(num):
        for src in cluster.topology.neighbors_in(dst):
            received[(dst, src)] = np.asarray(
                cluster.recv(dst, src, tag="gossip"), dtype=np.float64
            )
    cluster.end_step()

    mixed = []
    for rank in range(num):
        total = mixing[rank, rank] * arrays[rank]
        for src in cluster.topology.neighbors_in(rank):
            total = total + mixing[rank, src] * received[(rank, src)]
        mixed.append(total)
    return mixed
