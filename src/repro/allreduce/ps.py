"""Parameter-server aggregation over a star topology.

Every worker sends its payload to the server, the server aggregates with a
pluggable rule (mean for PSGD, majority vote for signSGD, mean-of-decoded for
SSDM/EF), and broadcasts the result.  The server link is the congestion
point: all ``M - 1`` uploads share the server's ingress, so the step time is
charged *serially* per upload — this is the ``2 x M x D`` cost of Section 3.1
and why Figure 1a shows non-compressed PS slower than RAR.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.cluster import Cluster

__all__ = ["ps_allreduce", "star_allgather_scalars", "star_allreduce_mean"]

Aggregate = Callable[[Sequence[Any]], Any]
"""Combine the per-worker payloads (server's own first) into one result."""


def ps_allreduce(
    cluster: Cluster,
    payloads: list[Any],
    aggregate: Aggregate,
    decode: Callable[[Any], Any] | None = None,
    concurrent_uploads: bool = False,
) -> list[Any]:
    """One PS round: gather to the server, aggregate, broadcast.

    Args:
        cluster: must use a star topology (``star_topology``).
        payloads: per-worker wire payloads (index = rank).
        aggregate: server-side reduction over decoded worker values.
        decode: optional payload -> value transform applied before
            aggregation (e.g. ``Payload.decode``); identity when ``None``.
        concurrent_uploads: when False (default), uploads are charged as
            sequential steps — a server whose single NIC is the ingress
            bottleneck.  When True, all uploads share one step — a cloud
            switch fabric where the server's ingress matches the sum of the
            worker links (the paper's Huawei-cloud setting, where PS-fp32 is
            only modestly slower than RAR in Figure 1a).

    Returns:
        The broadcast aggregate, replicated per worker.

    The broadcast is charged as one step (multicast / pipelined egress).
    """
    meta = cluster.topology.meta
    if cluster.topology.name != "star" or "server" not in meta:
        raise ValueError("ps_allreduce requires a star topology")
    server = meta["server"]
    num = cluster.num_workers
    if len(payloads) != num:
        raise ValueError(f"expected {num} payloads, got {len(payloads)}")

    received: list[Any] = [payloads[server]]
    if concurrent_uploads:
        cluster.begin_step()
        for rank in range(num):
            if rank != server:
                cluster.send(rank, server, payloads[rank], tag="up")
        cluster.end_step()
        for rank in range(num):
            if rank != server:
                received.append(cluster.recv(server, rank, tag="up"))
    else:
        for rank in range(num):
            if rank == server:
                continue
            cluster.begin_step()
            cluster.send(rank, server, payloads[rank], tag="up")
            cluster.end_step()
            received.append(cluster.recv(server, rank, tag="up"))

    if decode is not None:
        received = [decode(item) for item in received]
    result = aggregate(received)

    cluster.begin_step()
    for rank in range(num):
        if rank != server:
            cluster.send(server, rank, result, tag="down")
    cluster.end_step()
    results = []
    for rank in range(num):
        if rank == server:
            results.append(result)
        else:
            results.append(cluster.recv(rank, server, tag="down"))
    return results


def star_allreduce_mean(
    cluster: Cluster, vectors: list[np.ndarray]
) -> list[np.ndarray]:
    """Full-precision mean over the star: FP32 uploads, server mean."""
    mean = ps_allreduce(
        cluster,
        [np.asarray(v, dtype=np.float32) for v in vectors],
        aggregate=lambda xs: np.mean(xs, axis=0),
    )
    return [np.asarray(m, dtype=np.float64) for m in mean]


def star_allgather_scalars(
    cluster: Cluster, values: list[float]
) -> np.ndarray:
    """All-gather one float per worker through the parameter server."""
    num = cluster.num_workers
    gathered = ps_allreduce(
        cluster,
        [np.array([v], dtype=np.float32) for v in values],
        aggregate=lambda xs: np.concatenate(xs),
    )
    # PS order: server's own first, then others; restore rank order.
    server = cluster.topology.meta["server"]
    order = [server] + [r for r in range(num) if r != server]
    out = np.empty(num)
    out[order] = gathered[0]
    return out
