"""Tree all-reduce: reduce up to the root, broadcast back down.

Mentioned in the paper (Section 5, "Implementation") as an all-reduce
paradigm Marsit extends to.  Depth-synchronous: all transfers at one tree
level overlap in a single timing step.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.cluster import Cluster

__all__ = ["tree_allreduce"]


def _levels(num_workers: int, arity: int) -> list[list[int]]:
    """Group ranks by depth in the implicit arity-ary heap layout."""
    depth_of = [0] * num_workers
    for rank in range(1, num_workers):
        depth_of[rank] = depth_of[(rank - 1) // arity] + 1
    max_depth = max(depth_of)
    levels: list[list[int]] = [[] for _ in range(max_depth + 1)]
    for rank, depth in enumerate(depth_of):
        levels[depth].append(rank)
    return levels


def tree_allreduce(
    cluster: Cluster,
    vectors: list[np.ndarray],
    reduce_pair: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    finalize: Callable[[np.ndarray], Any] | None = None,
) -> list[np.ndarray]:
    """All-reduce over a tree topology.

    Args:
        cluster: must use ``tree_topology``.
        vectors: per-worker vectors.
        reduce_pair: pairwise fold; defaults to addition.
        finalize: applied at the root before broadcast (e.g. divide by M).

    Returns:
        Per-worker results (all equal to the finalized root value).
    """
    meta = cluster.topology.meta
    if cluster.topology.name != "tree" or "arity" not in meta:
        raise ValueError("tree_allreduce requires a tree topology")
    arity, root = meta["arity"], meta["root"]
    num = cluster.num_workers
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    if reduce_pair is None:
        reduce_pair = lambda a, b: a + b  # noqa: E731 - trivial default fold

    partial = [np.asarray(vector, dtype=np.float64).copy() for vector in vectors]
    levels = _levels(num, arity)

    # Reduce: deepest level first, each level one synchronous step.
    for level in reversed(levels[1:]):
        cluster.begin_step()
        for rank in level:
            cluster.send(rank, (rank - 1) // arity, partial[rank], tag="reduce")
        for rank in level:
            parent = (rank - 1) // arity
            received = cluster.recv(parent, rank, tag="reduce")
            partial[parent] = reduce_pair(partial[parent], received)
        cluster.end_step()

    result = partial[root] if finalize is None else finalize(partial[root])
    final = [None] * num
    final[root] = result

    # Broadcast: shallowest level first.
    for level in levels[1:]:
        cluster.begin_step()
        for rank in level:
            parent = (rank - 1) // arity
            cluster.send(parent, rank, final[parent], tag="bcast")
        for rank in level:
            final[rank] = cluster.recv(rank, (rank - 1) // arity, tag="bcast")
        cluster.end_step()
    return [np.asarray(value, dtype=np.float64) for value in final]
