"""Tree all-reduce: reduce up to the root, broadcast back down.

Mentioned in the paper (Section 5, "Implementation") as an all-reduce
paradigm Marsit extends to.  Depth-synchronous: all transfers at one tree
level overlap in a single timing step.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.cluster import Cluster
from repro.sched.plan import (
    Barrier,
    CompileContext,
    Gather,
    GridSpec,
    Merge,
    MergeSign,
    Output,
    Pack,
    SendRecv,
    Step,
    SyncPlan,
    Transfer,
)

__all__ = ["compile_tree", "tree_allreduce", "tree_allreduce_mean"]


def _levels(num_workers: int, arity: int) -> list[list[int]]:
    """Group ranks by depth in the implicit arity-ary heap layout."""
    depth_of = [0] * num_workers
    for rank in range(1, num_workers):
        depth_of[rank] = depth_of[(rank - 1) // arity] + 1
    max_depth = max(depth_of)
    levels: list[list[int]] = [[] for _ in range(max_depth + 1)]
    for rank, depth in enumerate(depth_of):
        levels[depth].append(rank)
    return levels


def tree_allreduce(
    cluster: Cluster,
    vectors: list[np.ndarray],
    reduce_pair: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    finalize: Callable[[np.ndarray], Any] | None = None,
) -> list[np.ndarray]:
    """All-reduce over a tree topology.

    Args:
        cluster: must use ``tree_topology``.
        vectors: per-worker vectors.
        reduce_pair: pairwise fold; defaults to addition.
        finalize: applied at the root before broadcast (e.g. divide by M).

    Returns:
        Per-worker results (all equal to the finalized root value).
    """
    meta = cluster.topology.meta
    if cluster.topology.name != "tree" or "arity" not in meta:
        raise ValueError("tree_allreduce requires a tree topology")
    arity, root = meta["arity"], meta["root"]
    num = cluster.num_workers
    if len(vectors) != num:
        raise ValueError(f"expected {num} vectors, got {len(vectors)}")
    if reduce_pair is None:
        reduce_pair = lambda a, b: a + b  # noqa: E731 - trivial default fold

    partial = [np.asarray(vector, dtype=np.float64).copy() for vector in vectors]
    levels = _levels(num, arity)

    # Reduce: deepest level first, each level one synchronous step.
    for level in reversed(levels[1:]):
        cluster.begin_step()
        for rank in level:
            cluster.send(rank, (rank - 1) // arity, partial[rank], tag="reduce")
        for rank in level:
            parent = (rank - 1) // arity
            received = cluster.recv(parent, rank, tag="reduce")
            partial[parent] = reduce_pair(partial[parent], received)
        cluster.end_step()

    result = partial[root] if finalize is None else finalize(partial[root])
    final = [None] * num
    final[root] = result

    # Broadcast: shallowest level first.
    for level in levels[1:]:
        cluster.begin_step()
        for rank in level:
            parent = (rank - 1) // arity
            cluster.send(parent, rank, final[parent], tag="bcast")
        for rank in level:
            final[rank] = cluster.recv(rank, (rank - 1) // arity, tag="bcast")
        cluster.end_step()
    return [np.asarray(value, dtype=np.float64) for value in final]


def tree_allreduce_mean(
    cluster: Cluster, vectors: list[np.ndarray]
) -> list[np.ndarray]:
    """Tree all-reduce of the FP32-wire mean (root divides, then broadcasts)."""
    num = cluster.num_workers
    wire = [np.asarray(vector, dtype=np.float32) for vector in vectors]
    return tree_allreduce(cluster, wire, finalize=lambda x: x / num)


def compile_tree(context: CompileContext) -> SyncPlan:
    """Compile the one-bit tree round: weighted merges up, broadcast down.

    Each level's child-into-parent merges are grouped into waves by sibling
    index ``(rank - 1) % arity``: a wave touches each parent at most once,
    and per parent the waves run children in ascending rank order — so both
    executors consume every parent generator's stream in the same order,
    with the same running subtree weights (computed here, at compile time).
    """
    arity, root = context.meta["arity"], context.meta["root"]
    num = context.num_workers
    dimension = context.dimension
    levels = _levels(num, arity)
    weight = [1] * num
    steps: list[Step] = [
        Pack(grid="tree", start=0, stop=dimension),
        Barrier(
            kind="begin",
            span="reduce-scatter",
            tag="m-tree-up",
            compress_elems=dimension,
        ),
    ]
    for level in reversed(levels[1:]):
        transfers = tuple(
            Transfer(src_lane=rank, dst_lane=(rank - 1) // arity, seg=0)
            for rank in level
        )
        waves = []
        for sibling in range(arity):
            wave = []
            for rank in level:
                if (rank - 1) % arity != sibling:
                    continue
                parent = (rank - 1) // arity
                wave.append(
                    Merge(
                        dst_lane=parent,
                        src_lane=rank,
                        seg=0,
                        received_weight=weight[rank],
                        local_weight=weight[parent],
                    )
                )
                weight[parent] += weight[rank]
            if wave:
                waves.append(tuple(wave))
        steps.append(SendRecv(grid="tree", tag="m-tree-up", transfers=transfers))
        steps.append(
            MergeSign(
                grid="tree",
                waves=tuple(waves),
                compress_elems=None,
                rng_elems=dimension,
                bitop_elems=dimension,
            )
        )
    if weight[root] != num:
        raise AssertionError("tree reduce missed workers")
    steps.append(Barrier(kind="end", span="reduce-scatter"))
    steps.append(Barrier(kind="begin", span="all-gather", tag="m-tree-down"))
    for level in levels[1:]:
        steps.append(
            Gather(
                grid="tree",
                tag="m-tree-down",
                transfers=tuple(
                    Transfer(
                        src_lane=(rank - 1) // arity, dst_lane=rank, seg=0
                    )
                    for rank in level
                ),
            )
        )
    steps.append(Barrier(kind="end", span="all-gather"))
    return SyncPlan(
        kind="one_bit",
        topology="tree",
        num_workers=num,
        dimension=dimension,
        grids=(
            GridSpec(name="tree", lane_ranks=tuple(range(num)), num_segments=1),
        ),
        steps=tuple(steps),
        outputs=(Output(grid="tree", where="tree broadcast"),),
    )
