"""Theory utilities: bounds and empirical checks for the paper's analysis.

- :mod:`repro.theory.bounds` — evaluators for Theorem 1 (Marsit's
  convergence bound), Theorem 2 (PS deviation O(D G^2)) and Theorem 3
  (cascading deviation (2D)^M G^2 / M).
- :mod:`repro.theory.deviation` — empirical deviation measurement
  ``||s_hat - s_1||^2`` for PS-compressed vs cascading aggregation
  (Appendix A's quantities).
- :mod:`repro.theory.matching` — the Figure 1b matching-rate metric.
"""

from repro.theory.bounds import (
    cascading_deviation_bound,
    marsit_convergence_bound,
    ps_deviation_bound,
    recommended_learning_rates,
)
from repro.theory.deviation import (
    cascading_deviation,
    empirical_deviation,
    ps_compression_deviation,
)
from repro.theory.matching import matching_rate, sign_cosine

__all__ = [
    "cascading_deviation",
    "cascading_deviation_bound",
    "empirical_deviation",
    "marsit_convergence_bound",
    "matching_rate",
    "ps_compression_deviation",
    "ps_deviation_bound",
    "recommended_learning_rates",
    "sign_cosine",
]
