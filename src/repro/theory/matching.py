"""The Figure 1b matching-rate metric.

Figure 1b scores each aggregation scheme by the fraction of coordinates
whose aggregated sign matches the sign of the *non-compressed* aggregation —
a direct measure of how much directional information survives the scheme.
"""

from __future__ import annotations

import numpy as np

__all__ = ["matching_rate", "sign_cosine"]


def matching_rate(estimate: np.ndarray, exact: np.ndarray) -> float:
    """Fraction of coordinates where ``sign(estimate) == sign(exact)``.

    Zeros are treated as +1 on both sides, consistent with the library's
    ``sgn(0) = +1`` convention.
    """
    estimate = np.asarray(estimate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if estimate.shape != exact.shape:
        raise ValueError("shapes must match")
    if estimate.size == 0:
        raise ValueError("vectors must be non-empty")
    est_sign = np.where(estimate >= 0, 1.0, -1.0)
    ref_sign = np.where(exact >= 0, 1.0, -1.0)
    return float((est_sign == ref_sign).mean())


def sign_cosine(estimate: np.ndarray, exact: np.ndarray) -> float:
    """Cosine similarity; 0 when either vector is all-zero."""
    estimate = np.asarray(estimate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if estimate.shape != exact.shape:
        raise ValueError("shapes must match")
    denom = np.linalg.norm(estimate) * np.linalg.norm(exact)
    if denom == 0.0:
        return 0.0
    return float(np.dot(estimate, exact) / denom)
