"""Closed-form bound evaluators for the paper's theorems."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "cascading_deviation_bound",
    "marsit_convergence_bound",
    "ps_deviation_bound",
    "recommended_learning_rates",
]


def ps_deviation_bound(dimension: int, grad_norm_bound: float) -> float:
    """Theorem 2: ``||s_2 - s_1||^2 <= D G^2`` for SSDM under PS."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    if grad_norm_bound < 0:
        raise ValueError("grad_norm_bound must be non-negative")
    return dimension * grad_norm_bound**2


def cascading_deviation_bound(
    dimension: int, num_workers: int, grad_norm_bound: float
) -> float:
    """Theorem 3: ``||s_3 - s_1||^2 <= (2D)^M G^2 / M`` for cascading.

    Returned in log-space-safe form: for large D/M the value overflows a
    float, so the function returns ``math.inf`` in that case (the point of
    the theorem — the bound explodes with M — survives).
    """
    if dimension < 1 or num_workers < 1:
        raise ValueError("dimension and num_workers must be >= 1")
    if grad_norm_bound < 0:
        raise ValueError("grad_norm_bound must be non-negative")
    log_value = (
        num_workers * math.log(2.0 * dimension)
        + 2.0 * math.log(max(grad_norm_bound, 1e-300))
        - math.log(num_workers)
    )
    if log_value > 700.0:
        return math.inf
    return math.exp(log_value)


@dataclass(frozen=True)
class RecommendedRates:
    """Theorem 1's learning-rate schedule."""

    local_lr: float
    global_lr: float


def recommended_learning_rates(
    num_workers: int, rounds: int, dimension: int
) -> RecommendedRates:
    """Theorem 1's ``eta_l = sqrt(M/T)``, ``eta_s = 1/sqrt(T D)``."""
    if num_workers < 1 or rounds < 1 or dimension < 1:
        raise ValueError("all arguments must be >= 1")
    return RecommendedRates(
        local_lr=math.sqrt(num_workers / rounds),
        global_lr=1.0 / math.sqrt(rounds * dimension),
    )


def marsit_convergence_bound(
    num_workers: int,
    rounds: int,
    full_precision_every: int,
    smoothness: float = 1.0,
    sigma: float = 1.0,
    initial_gap: float = 1.0,
    dimension: int = 1,
) -> float:
    """Theorem 1's right-hand side up to absolute constants.

    ``min_t E||grad F||^2 <= O(1/sqrt(MT)) + O(K(K+1)/T)`` with the
    paper's constants folded in as ``initial_gap``/``smoothness``/``sigma``.
    Used by the speedup bench to check the *scaling* (halving when M
    quadruples; linear growth in K^2/T), not to certify constants.
    """
    if rounds < 1 or num_workers < 1 or full_precision_every < 0:
        raise ValueError("invalid arguments")
    k = full_precision_every
    first = (initial_gap + smoothness * sigma**2) / math.sqrt(
        num_workers * rounds
    )
    second = smoothness**2 * k * (k + 1) * (sigma**2 + dimension / dimension) / rounds
    return first + second
