"""Empirical deviation measurement (Appendix A's s_1 / s_2 / s_3).

Given worker gradients ``s^(1..M)``, Appendix A compares

- ``s_1`` — the exact mean (non-compressed aggregation),
- ``s_2`` — the mean of per-worker SSDM estimates (PS-style compression),
- ``s_3`` — the cascading-compression estimate,

through the squared deviations ``||s_2 - s_1||^2`` (Theorem 2, bounded by
``D G^2``) and ``||s_3 - s_1||^2`` (Theorem 3, exploding as ``(2D)^M``).
These functions measure those quantities on real vectors, without any
cluster plumbing, so the Theorem 3 bench can sweep M cheaply.
"""

from __future__ import annotations

import numpy as np

from repro.compression.ssdm import SSDMCompressor

__all__ = ["cascading_deviation", "empirical_deviation", "ps_compression_deviation"]


def empirical_deviation(estimate: np.ndarray, exact: np.ndarray) -> float:
    """``||estimate - exact||_2^2``."""
    estimate = np.asarray(estimate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if estimate.shape != exact.shape:
        raise ValueError("shapes must match")
    return float(((estimate - exact) ** 2).sum())


def ps_compression_deviation(
    gradients: list[np.ndarray],
    rng: np.random.Generator,
    compressor: SSDMCompressor | None = None,
) -> float:
    """One sample of ``||s_2 - s_1||^2``: mean-of-Q vs exact mean."""
    if not gradients:
        raise ValueError("need at least one gradient")
    compressor = compressor if compressor is not None else SSDMCompressor()
    exact = np.mean([np.asarray(g, dtype=np.float64) for g in gradients], axis=0)
    decoded = [
        compressor.compress(np.asarray(g, dtype=np.float64), rng=rng).decode()
        for g in gradients
    ]
    estimate = np.mean(decoded, axis=0)
    return empirical_deviation(estimate, exact)


def cascading_deviation(
    gradients: list[np.ndarray],
    rng: np.random.Generator,
    compressor: SSDMCompressor | None = None,
) -> float:
    """One sample of ``||s_3 - s_1||^2``: M recursive compressions vs mean.

    Implements Appendix A's ``s_3 = Q(...Q(Q(s1) + s2)... + sM) / M``
    directly (single chain, no ring plumbing).
    """
    if not gradients:
        raise ValueError("need at least one gradient")
    compressor = compressor if compressor is not None else SSDMCompressor()
    arrays = [np.asarray(g, dtype=np.float64) for g in gradients]
    exact = np.mean(arrays, axis=0)
    running = compressor.compress(arrays[0], rng=rng).decode()
    for grad in arrays[1:]:
        running = compressor.compress(running + grad, rng=rng).decode()
    estimate = running / len(arrays)
    return empirical_deviation(estimate, exact)
