"""Command-line entry point: ``python -m repro``.

Runs a single quick-train comparison from the shell, for smoke testing an
installation or eyeballing a scheme without writing code::

    python -m repro --strategy marsit --workers 8 --rounds 120
    python -m repro --strategy psgd --topology torus --workers 4
"""

from __future__ import annotations

import argparse
import sys

from repro import quick_train


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Marsit (DAC 2022) reproduction: train the bundled MNIST-like "
            "workload under a chosen synchronization scheme."
        ),
    )
    parser.add_argument(
        "--strategy",
        default="marsit",
        choices=[
            "psgd", "signsgd", "ef-signsgd", "ssdm", "cascading", "marsit",
            "marsit-k",
        ],
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=100)
    parser.add_argument("--topology", default="ring", choices=["ring", "torus"])
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result = quick_train(
        strategy=args.strategy,
        num_workers=args.workers,
        rounds=args.rounds,
        topology=args.topology,
        seed=args.seed,
    )
    print(f"strategy      : {result.strategy_name}")
    print(f"rounds run    : {result.rounds_run}")
    print(f"final accuracy: {result.final_accuracy:.4f}")
    print(f"best accuracy : {result.best_accuracy():.4f}")
    print(f"bytes on wire : {result.total_comm_bytes:,}")
    print(f"simulated time: {result.total_sim_time_s * 1e3:.2f} ms")
    print(f"bits/element  : {result.avg_bits_per_element:.2f}")
    if result.diverged:
        print("NOTE: run diverged")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
