"""Command-line entry point: ``python -m repro``.

Runs a single quick-train comparison from the shell, for smoke testing an
installation or eyeballing a scheme without writing code::

    python -m repro --strategy marsit --workers 8 --rounds 120
    python -m repro --strategy psgd --topology torus --workers 4

Observability flags hook the run up to the telemetry subsystem::

    python -m repro --strategy marsit --trace trace.json --save run.json
    python -m repro report run.json

``--trace`` writes a Perfetto-loadable Chrome trace of the simulated-time
span tree; ``--metrics-jsonl`` writes every metric as JSON Lines; ``--save``
writes the full :class:`~repro.train.TrainResult` document that the
``report`` subcommand pretty-prints later.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import quick_train


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Marsit (DAC 2022) reproduction: train the bundled MNIST-like "
            "workload under a chosen synchronization scheme."
        ),
    )
    parser.add_argument(
        "--strategy",
        default="marsit",
        choices=[
            "psgd", "signsgd", "ef-signsgd", "ssdm", "cascading", "marsit",
            "marsit-k",
        ],
    )
    from repro.allreduce import topology_names

    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=100)
    parser.add_argument(
        "--topology", default="ring", choices=list(topology_names())
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a simulated-time span trace and write Chrome trace JSON",
    )
    parser.add_argument(
        "--metrics-jsonl",
        metavar="PATH",
        default=None,
        help="write the metrics registry snapshot as JSON Lines",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="write the TrainResult JSON document (readable by 'report')",
    )
    parser.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="inject network faults from a FaultPlan JSON file",
    )
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Pretty-print a saved TrainResult JSON document.",
    )
    parser.add_argument("run_json", help="path written by --save / to_json()")
    return parser


def report_main(argv: list[str]) -> int:
    from repro.obs import render_result_report

    args = build_report_parser().parse_args(argv)
    try:
        with open(args.run_json) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.run_json}: {exc}", file=sys.stderr)
        return 2
    print(render_result_report(payload))
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    args = build_parser().parse_args(argv)
    observability = None
    if args.trace or args.metrics_jsonl:
        from repro.obs import Observability

        observability = Observability.tracing()
    faults = None
    if args.faults:
        from repro.faults import load_fault_plan

        try:
            faults = load_fault_plan(args.faults)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.faults}: {exc}", file=sys.stderr)
            return 2
    result = quick_train(
        strategy=args.strategy,
        num_workers=args.workers,
        rounds=args.rounds,
        topology=args.topology,
        seed=args.seed,
        observability=observability,
        faults=faults,
    )
    print(f"strategy      : {result.strategy_name}")
    print(f"rounds run    : {result.rounds_run}")
    print(f"final accuracy: {result.final_accuracy:.4f}")
    print(f"best accuracy : {result.best_accuracy():.4f}")
    print(f"bytes on wire : {result.total_comm_bytes:,}")
    print(f"simulated time: {result.total_sim_time_s * 1e3:.2f} ms")
    print(f"bits/element  : {result.avg_bits_per_element:.2f}")
    if result.fault_summary is not None:
        counters = result.fault_summary.get("counters") or {}
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"fault counters: {rendered or 'none fired'}")
    if args.save:
        result.to_json(args.save)
        print(f"saved result  : {args.save}")
    if observability is not None and args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, observability.tracer, observability.metrics)
        print(f"saved trace   : {args.trace}")
    if observability is not None and args.metrics_jsonl:
        from repro.obs import write_jsonl

        write_jsonl(args.metrics_jsonl, metrics=observability.metrics)
        print(f"saved metrics : {args.metrics_jsonl}")
    if result.diverged:
        print("NOTE: run diverged")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
