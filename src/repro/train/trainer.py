"""The M-worker lock-step distributed trainer.

Because every strategy in this library returns *identical* updates on all
workers (consensus is part of each scheme), the trainer keeps one physical
model and runs per-worker forward/backward passes against per-worker batches
— exactly equivalent to M replicas that never diverge, at 1/M the memory.
Tests assert the consensus property separately.

Per round the trainer:

1. draws one batch per worker from its iid shard,
2. computes per-worker gradients (charging computation time once — workers
   run in parallel),
3. hands the gradients to the :class:`SyncStrategy` (which does all
   communication through the cluster, charging bytes and time),
4. applies the consensus update, and
5. periodically evaluates on the held-out set, recording accuracy against
   rounds, simulated seconds, and cumulative bytes — the axes of
   Figures 3, 4a and 4b.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.allreduce import get_topology, topology_names
from repro.comm.cluster import Cluster
from repro.comm.timing import CostModel, Phase
from repro.data.sharding import WorkerBatchIterator, shard_dirichlet, shard_iid
from repro.data.synthetic import ArrayDataset
from repro.faults import FaultInjector, FaultPlan
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.obs.hooks import CallbackList, TrainerCallback
from repro.obs.tracer import Observability
from repro.train.metrics import RoundRecord, TrainResult, evaluate
from repro.train.strategies import SyncStrategy

__all__ = ["DistributedTrainer", "TrainConfig", "make_cluster"]


@dataclass
class TrainConfig:
    """Distributed-run shape.

    Attributes:
        num_workers: M.
        rounds: synchronizations T.
        batch_size: per-worker batch size (global batch = M x this).
        topology: any name in :func:`repro.allreduce.topology_names` —
            ``"ring"`` (RAR), ``"torus"`` (TAR), ``"star"`` (PS), ``"tree"``
            (tree all-reduce), ``"halving_doubling"`` (butterfly), ...
        torus_shape: (rows, cols) when topology is torus.
        eval_every: evaluation cadence in rounds.
        eval_max_batches: cap on evaluation batches (None = full test set).
        seed: controls sharding and batch order.
        divergence_loss: a train loss above this (or non-finite) marks the
            run diverged and stops it — how Table 1 detects divergence.
        sharding: ``"iid"`` (the paper's shuffled-cloud assumption) or
            ``"dirichlet"`` (label-skewed stress regime).
        dirichlet_alpha: skew parameter when ``sharding == "dirichlet"``.
        clip_grad_norm: when set, each worker's gradient is rescaled to at
            most this l2 norm before synchronization (standard transformer
            hygiene; applied identically by every scheme for fairness).
        byzantine_workers: the first N workers send *inverted and 10x
            amplified* gradients every round — the adversary of signSGD's
            fault-tolerance analysis (Bernstein et al., paper ref [13]).
            Sign/vote schemes bound every worker's per-coordinate influence
            to ±1, so a minority adversary is outvoted; mean-based
            aggregation is dominated by the amplified liar.
        faults: optional :class:`~repro.faults.plan.FaultPlan`; when set,
            a :class:`~repro.faults.inject.FaultInjector` is attached to the
            cluster and the run sees jitter/stragglers/drops/bit-flips/
            crashes exactly as the plan prescribes.  ``WorkerCrash`` events
            require the Marsit strategy (the only scheme with a recovery
            path).
        local_steps: local updates per synchronization (paper Section 5:
            "clients perform multiple local updates between two successive
            synchronizations").  Each worker walks ``local_steps`` plain-SGD
            steps of size ``local_step_lr`` from the shared parameters on
            its own batches; the *mean* of the gradients along that walk is
            handed to the strategy, so per-round gradient scales stay
            comparable to the 1-step case while communication frequency
            drops ``local_steps``-fold.
        local_step_lr: inner stepsize when ``local_steps > 1``.
    """

    num_workers: int
    rounds: int
    batch_size: int = 32
    topology: str = "ring"
    torus_shape: tuple[int, int] | None = None
    eval_every: int = 10
    eval_max_batches: int | None = None
    seed: int = 0
    divergence_loss: float = 1e4
    sharding: str = "iid"
    dirichlet_alpha: float = 0.5
    clip_grad_norm: float | None = None
    byzantine_workers: int = 0
    faults: FaultPlan | None = None
    local_steps: int = 1
    local_step_lr: float = 0.01

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.topology not in topology_names():
            raise ValueError(
                f"unknown topology {self.topology!r}; registered "
                f"topologies: {', '.join(topology_names())}"
            )
        if self.sharding not in ("iid", "dirichlet"):
            raise ValueError(f"unknown sharding {self.sharding!r}")
        if self.clip_grad_norm is not None and self.clip_grad_norm <= 0:
            raise ValueError("clip_grad_norm must be positive or None")
        if not 0 <= self.byzantine_workers <= self.num_workers:
            raise ValueError("byzantine_workers must be in [0, num_workers]")
        if self.faults is not None:
            self.faults.validate(self.num_workers)
        if self.local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        if self.local_step_lr <= 0:
            raise ValueError("local_step_lr must be positive")
        if self.topology == "torus":
            if self.torus_shape is None:
                raise ValueError("torus topology needs torus_shape")
            rows, cols = self.torus_shape
            if rows * cols != self.num_workers:
                raise ValueError("torus_shape must multiply to num_workers")


def make_cluster(config: TrainConfig, cost_model: CostModel | None = None) -> Cluster:
    """Build the cluster matching a :class:`TrainConfig`.

    The graph comes from the topology registry; every family's ``build``
    takes the worker count plus family-specific keywords (only the torus
    needs one here).  On the star, rank 0 doubles as the parameter server
    (it aggregates its own gradient locally), so cluster size equals worker
    count and the strategies' per-rank bookkeeping is topology independent.
    """
    kwargs = {}
    if config.topology == "torus":
        rows, cols = config.torus_shape
        kwargs = {"rows": rows, "cols": cols}
    topology = get_topology(config.topology).build(config.num_workers, **kwargs)
    cluster = Cluster(topology, cost_model=cost_model)
    if config.faults is not None:
        cluster.attach_faults(FaultInjector(config.faults))
    return cluster


class DistributedTrainer:
    """Runs one (model, dataset, strategy) combination to completion."""

    def __init__(
        self,
        model_factory: Callable[[], Module],
        train_set: ArrayDataset,
        test_set: ArrayDataset,
        strategy: SyncStrategy,
        config: TrainConfig,
        cost_model: CostModel | None = None,
        callbacks: Sequence[TrainerCallback] | None = None,
        observability: Observability | None = None,
    ) -> None:
        self.model = model_factory()
        self.train_set = train_set
        self.test_set = test_set
        self.strategy = strategy
        self.config = config
        self.callbacks = CallbackList(callbacks)
        if config.faults is not None and config.faults.crashes():
            from repro.train.strategies import MarsitStrategy

            if not isinstance(strategy, MarsitStrategy):
                raise ValueError(
                    "WorkerCrash events need a recovery path; only the "
                    "Marsit strategy implements one"
                )
        self.cluster = make_cluster(config, cost_model=cost_model)
        if observability is not None:
            self.cluster.attach_observability(observability)
        if config.sharding == "dirichlet":
            shards = shard_dirichlet(
                train_set,
                config.num_workers,
                alpha=config.dirichlet_alpha,
                seed=config.seed,
                min_per_worker=config.batch_size,
            )
        else:
            shards = shard_iid(train_set, config.num_workers, seed=config.seed)
        self.iterators = [
            WorkerBatchIterator(shard, config.batch_size, seed=config.seed + 101 * w)
            for w, shard in enumerate(shards)
        ]
        self.loss_fn = CrossEntropyLoss()
        self._flops_per_example = float(
            getattr(self.model, "flops_per_example", 6.0 * self.model.num_parameters())
        )

    def _one_gradient(self, iterator: WorkerBatchIterator) -> tuple[np.ndarray, float]:
        x, y = iterator.next_batch()
        self.model.zero_grad()
        logits = self.model(x)
        loss = self.loss_fn(logits, y)
        self.model.backward(self.loss_fn.backward())
        return self.model.flatten_grads(), loss

    def _worker_gradients(self) -> tuple[list[np.ndarray], float]:
        """Per-worker (accumulated) gradients, plus the mean train loss.

        With ``local_steps > 1`` each worker walks a short local-SGD
        trajectory from the shared parameters and reports the mean gradient
        along it; parameters are restored between workers so every walk
        starts from consensus.
        """
        grads = []
        losses = []
        local_steps = self.config.local_steps
        faults = self.cluster.faults
        dead = faults.dead_workers if faults is not None else frozenset()
        shared = self.model.flatten_params() if local_steps > 1 else None
        for worker, iterator in enumerate(self.iterators):
            if worker in dead:
                # Crashed workers contribute nothing: a zero placeholder
                # keeps the gradient list M-long (the synchronizer indexes
                # by original rank) without touching the loss mean.
                grads.append(np.zeros(self.model.num_parameters()))
                continue
            if local_steps == 1:
                grad, loss = self._one_gradient(iterator)
            else:
                self.model.set_flat_params(shared)
                step_grads = []
                loss = 0.0
                for _ in range(local_steps):
                    step_grad, step_loss = self._one_gradient(iterator)
                    step_grads.append(step_grad)
                    loss += step_loss / local_steps
                    self.model.add_flat_update(
                        self.config.local_step_lr * step_grad, scale=-1.0
                    )
                grad = np.mean(step_grads, axis=0)
            losses.append(loss)
            if self.config.clip_grad_norm is not None:
                norm = float(np.linalg.norm(grad))
                if norm > self.config.clip_grad_norm:
                    grad = grad * (self.config.clip_grad_norm / norm)
            if worker < self.config.byzantine_workers:
                grad = -10.0 * grad
            grads.append(grad)
        if shared is not None:
            self.model.set_flat_params(shared)
        # Workers compute in parallel: charge one worker's forward+backward.
        self.cluster.charge(
            Phase.COMPUTATION,
            self.cluster.cost_model.compute_time(
                self._flops_per_example * self.config.batch_size * local_steps
            ),
        )
        return grads, float(np.mean(losses))

    def run(self) -> TrainResult:
        """Train for ``config.rounds`` rounds (early stop on divergence)."""
        result = TrainResult(strategy_name=self.strategy.name)
        bits_seen: list[float] = []
        train_loss = float("nan")
        faults = self.cluster.faults
        for round_idx in range(self.config.rounds):
            if faults is not None:
                # Activate this round's faults *before* gradients so crashed
                # workers stop computing from the crash round onward.
                faults.begin_round(round_idx)
            self.callbacks.on_round_start(
                round_idx, cluster=self.cluster, trainer=self
            )
            grads, train_loss = self._worker_gradients()
            if not np.isfinite(train_loss) or train_loss > self.config.divergence_loss:
                result.diverged = True
                result.rounds_run = round_idx
                break
            step = self.strategy.step(self.cluster, grads, round_idx)
            self.callbacks.on_sync_done(
                round_idx, step, cluster=self.cluster, trainer=self
            )
            bits_seen.append(step.bits_per_element)
            if step.plan_digest is not None:
                result.plan_digest = step.plan_digest
                result.num_plan_steps = step.num_plan_steps
            update = step.updates[0]
            if not np.isfinite(update).all():
                result.diverged = True
                result.rounds_run = round_idx
                break
            self.model.add_flat_update(update, scale=-1.0)
            result.rounds_run = round_idx + 1
            last_round = round_idx == self.config.rounds - 1
            if round_idx % self.config.eval_every == 0 or last_round:
                accuracy, test_loss = evaluate(
                    self.model,
                    self.test_set,
                    max_batches=self.config.eval_max_batches,
                )
                record = RoundRecord(
                    round_idx=round_idx,
                    sim_time_s=self.cluster.timeline.total,
                    comm_bytes=self.cluster.total_bytes,
                    train_loss=train_loss,
                    test_accuracy=accuracy,
                    test_loss=test_loss,
                    bits_per_element=step.bits_per_element,
                )
                result.history.append(record)
                self.callbacks.on_eval(
                    round_idx, record, cluster=self.cluster, trainer=self
                )
        result.final_accuracy = (
            result.history[-1].test_accuracy if result.history else 0.0
        )
        result.total_sim_time_s = self.cluster.timeline.total
        result.total_comm_bytes = self.cluster.total_bytes
        result.time_breakdown_s = self.cluster.timeline.breakdown()
        result.avg_bits_per_element = (
            float(np.mean(bits_seen)) if bits_seen else 32.0
        )
        if faults is not None:
            result.fault_summary = faults.summary()
        return result
