"""Distributed training orchestration.

- :mod:`repro.train.strategies` — one ``SyncStrategy`` per method in the
  paper's evaluation: PSGD, signSGD majority vote, EF-signSGD, SSDM,
  cascading compression, and Marsit / Marsit-K.
- :mod:`repro.train.trainer` — the M-worker lock-step trainer producing
  accuracy / simulated-time / bytes histories.
- :mod:`repro.train.metrics` — evaluation and history records.
"""

from repro.train.checkpoint import (
    load_model,
    load_synchronizer_state,
    save_checkpoint,
)
from repro.train.metrics import RoundRecord, TrainResult, evaluate
from repro.train.schedules import constant, cosine_decay, step_decay, warmup
from repro.train.strategies import (
    CascadingSSDMStrategy,
    EFSignSGDStrategy,
    MarsitStrategy,
    PSGDStrategy,
    PowerSGDStrategy,
    SSDMStrategy,
    SignSGDMajorityStrategy,
    SyncStrategy,
)
from repro.train.trainer import DistributedTrainer, TrainConfig, make_cluster

__all__ = [
    "CascadingSSDMStrategy",
    "DistributedTrainer",
    "EFSignSGDStrategy",
    "MarsitStrategy",
    "PSGDStrategy",
    "PowerSGDStrategy",
    "RoundRecord",
    "SSDMStrategy",
    "SignSGDMajorityStrategy",
    "SyncStrategy",
    "TrainConfig",
    "TrainResult",
    "constant",
    "cosine_decay",
    "evaluate",
    "load_model",
    "load_synchronizer_state",
    "make_cluster",
    "save_checkpoint",
    "step_decay",
    "warmup",
]
