"""Learning-rate schedules.

A schedule is a callable ``round_idx -> multiplier`` applied on top of a
base learning rate — the same contract as ``MarsitConfig.global_lr_schedule``
— so one schedule object can drive both the local and global stepsizes.

The paper's image experiments "decay by a factor of 10 every full-precision
synchronization"; :func:`step_decay` with ``period = K`` expresses that.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "constant",
    "cosine_decay",
    "step_decay",
    "warmup",
]

Schedule = Callable[[int], float]


def constant() -> Schedule:
    """Multiplier 1.0 forever."""
    return lambda round_idx: 1.0


def step_decay(period: int, factor: float = 0.1) -> Schedule:
    """Multiply by ``factor`` every ``period`` rounds (paper's FP-sync decay).

    ``multiplier(t) = factor ** (t // period)``.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    if not 0.0 < factor <= 1.0:
        raise ValueError("factor must be in (0, 1]")
    return lambda round_idx: factor ** (round_idx // period)


def cosine_decay(total_rounds: int, floor: float = 0.0) -> Schedule:
    """Cosine annealing from 1.0 to ``floor`` over ``total_rounds``."""
    if total_rounds < 1:
        raise ValueError("total_rounds must be >= 1")
    if not 0.0 <= floor <= 1.0:
        raise ValueError("floor must be in [0, 1]")

    def schedule(round_idx: int) -> float:
        progress = min(1.0, max(0, round_idx) / total_rounds)
        return floor + (1.0 - floor) * 0.5 * (1.0 + math.cos(math.pi * progress))

    return schedule


def warmup(warmup_rounds: int, after: Schedule | None = None) -> Schedule:
    """Linear ramp from ~0 to 1.0 over ``warmup_rounds``, then ``after``.

    ``after`` is evaluated with the round index shifted past the warmup so
    its own clock starts at 0.
    """
    if warmup_rounds < 1:
        raise ValueError("warmup_rounds must be >= 1")
    tail = after if after is not None else constant()

    def schedule(round_idx: int) -> float:
        if round_idx < warmup_rounds:
            return (round_idx + 1) / warmup_rounds
        return tail(round_idx - warmup_rounds)

    return schedule
