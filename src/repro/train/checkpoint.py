"""Checkpointing: save/restore model parameters and Marsit state.

Long simulated sweeps (Table 2 at full scale) benefit from resumable runs;
checkpoints are plain ``.npz`` archives so they stay inspectable without the
library.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.marsit import MarsitSynchronizer
from repro.nn.module import Module

__all__ = ["load_model", "load_synchronizer_state", "save_checkpoint"]


def save_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    synchronizer: MarsitSynchronizer | None = None,
    round_idx: int = 0,
) -> None:
    """Write model parameters (and optional Marsit compensation) to ``path``.

    BatchNorm running statistics are included so evaluation after a restore
    matches evaluation before it.
    """
    arrays: dict[str, np.ndarray] = {"round_idx": np.array([round_idx])}
    for name, param in model.named_parameters():
        arrays[f"param:{name}"] = param.data
    for index, module in enumerate(model.modules()):
        if hasattr(module, "running_mean"):
            arrays[f"bn_mean:{index}"] = module.running_mean
            arrays[f"bn_var:{index}"] = module.running_var
    if synchronizer is not None:
        for worker, comp in enumerate(synchronizer.state.compensation):
            arrays[f"compensation:{worker}"] = comp
    np.savez(path, **arrays)


def load_model(path: str | pathlib.Path, model: Module) -> int:
    """Restore parameters (and BN stats) into ``model``; returns round_idx.

    The model must have the same architecture the checkpoint was saved from.
    """
    with np.load(path) as archive:
        for name, param in model.named_parameters():
            key = f"param:{name}"
            if key not in archive:
                raise KeyError(f"checkpoint missing parameter {name!r}")
            stored = archive[key]
            if stored.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint "
                    f"{stored.shape} vs model {param.shape}"
                )
            param.data[...] = stored
        for index, module in enumerate(model.modules()):
            if hasattr(module, "running_mean"):
                mean_key = f"bn_mean:{index}"
                if mean_key in archive:
                    module.running_mean = archive[mean_key].copy()
                    module.running_var = archive[f"bn_var:{index}"].copy()
        return int(archive["round_idx"][0])


def load_synchronizer_state(
    path: str | pathlib.Path, synchronizer: MarsitSynchronizer
) -> None:
    """Restore per-worker compensation vectors saved by save_checkpoint."""
    with np.load(path) as archive:
        for worker in range(synchronizer.num_workers):
            key = f"compensation:{worker}"
            if key not in archive:
                raise KeyError(
                    f"checkpoint has no compensation for worker {worker}"
                )
            stored = archive[key]
            if stored.shape != (synchronizer.dimension,):
                raise ValueError("compensation dimension mismatch")
            synchronizer.state.compensation[worker] = stored.copy()
