"""Evaluation and training-history records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import ArrayDataset
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module

__all__ = ["RoundRecord", "TrainResult", "evaluate"]


def evaluate(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 256,
    max_batches: int | None = None,
) -> tuple[float, float]:
    """Return ``(accuracy, mean_loss)`` of the model on ``dataset``.

    Switches the model to eval mode (BatchNorm running stats, no dropout)
    and restores train mode afterwards.
    """
    loss_fn = CrossEntropyLoss()
    model.eval()
    correct = 0
    seen = 0
    loss_total = 0.0
    batches = 0
    try:
        for start in range(0, len(dataset), batch_size):
            if max_batches is not None and batches >= max_batches:
                break
            x = dataset.x[start : start + batch_size]
            y = dataset.y[start : start + batch_size]
            logits = model(x)
            loss_total += loss_fn(logits, y) * len(y)
            correct += int((logits.argmax(axis=1) == y).sum())
            seen += len(y)
            batches += 1
    finally:
        model.train()
    if seen == 0:
        return 0.0, float("nan")
    return correct / seen, loss_total / seen


@dataclass
class RoundRecord:
    """One evaluation point along a training run."""

    round_idx: int
    sim_time_s: float
    comm_bytes: int
    train_loss: float
    test_accuracy: float
    test_loss: float
    bits_per_element: float


@dataclass
class TrainResult:
    """Full outcome of a distributed training run."""

    strategy_name: str
    history: list[RoundRecord] = field(default_factory=list)
    final_accuracy: float = 0.0
    total_sim_time_s: float = 0.0
    total_comm_bytes: int = 0
    time_breakdown_s: dict[str, float] = field(default_factory=dict)
    rounds_run: int = 0
    diverged: bool = False
    avg_bits_per_element: float = 32.0
    plan_digest: str | None = None
    num_plan_steps: int = 0
    fault_summary: dict | None = None

    def best_accuracy(self) -> float:
        if not self.history:
            return 0.0
        return max(record.test_accuracy for record in self.history)

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First evaluated round reaching ``target`` accuracy, else None."""
        for record in self.history:
            if record.test_accuracy >= target:
                return record.round_idx
        return None

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds to first reach ``target`` accuracy, else None."""
        for record in self.history:
            if record.test_accuracy >= target:
                return record.sim_time_s
        return None

    def bytes_to_accuracy(self, target: float) -> int | None:
        """Communication bytes spent to first reach ``target``, else None."""
        for record in self.history:
            if record.test_accuracy >= target:
                return record.comm_bytes
        return None

    def mean_bits_per_element(self) -> float:
        """Average wire width across evaluated rounds (Figure 3's Bits)."""
        if not self.history:
            return 0.0
        return float(
            np.mean([record.bits_per_element for record in self.history])
        )

    def to_dict(self) -> dict:
        """JSON-ready dict of the full result (for experiment tracking)."""
        return {
            "strategy": self.strategy_name,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy(),
            "rounds_run": self.rounds_run,
            "diverged": self.diverged,
            "total_sim_time_s": self.total_sim_time_s,
            "total_comm_bytes": self.total_comm_bytes,
            "avg_bits_per_element": self.avg_bits_per_element,
            "plan_digest": self.plan_digest,
            "num_plan_steps": self.num_plan_steps,
            "fault_summary": self.fault_summary,
            "time_breakdown_s": dict(self.time_breakdown_s),
            "history": [
                {
                    "round": record.round_idx,
                    "sim_time_s": record.sim_time_s,
                    "comm_bytes": record.comm_bytes,
                    "train_loss": record.train_loss,
                    "test_accuracy": record.test_accuracy,
                    "test_loss": record.test_loss,
                    "bits_per_element": record.bits_per_element,
                }
                for record in self.history
            ],
        }

    def to_json(self, path: str | None = None, indent: int = 2) -> str:
        """Serialize to JSON; optionally write to ``path``."""
        import json

        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainResult":
        """Inverse of :meth:`to_dict` (used by ``python -m repro report``).

        ``best_accuracy`` is recomputed from the history rather than stored,
        so ``from_dict(to_dict(r))`` round-trips every field.
        """
        result = cls(
            strategy_name=payload["strategy"],
            final_accuracy=payload.get("final_accuracy", 0.0),
            total_sim_time_s=payload.get("total_sim_time_s", 0.0),
            total_comm_bytes=payload.get("total_comm_bytes", 0),
            time_breakdown_s=dict(payload.get("time_breakdown_s") or {}),
            rounds_run=payload.get("rounds_run", 0),
            diverged=payload.get("diverged", False),
            avg_bits_per_element=payload.get("avg_bits_per_element", 32.0),
            plan_digest=payload.get("plan_digest"),
            num_plan_steps=payload.get("num_plan_steps", 0),
            fault_summary=payload.get("fault_summary"),
        )
        for record in payload.get("history") or []:
            result.history.append(
                RoundRecord(
                    round_idx=record["round"],
                    sim_time_s=record["sim_time_s"],
                    comm_bytes=record["comm_bytes"],
                    train_loss=record["train_loss"],
                    test_accuracy=record["test_accuracy"],
                    test_loss=record["test_loss"],
                    bits_per_element=record["bits_per_element"],
                )
            )
        return result
