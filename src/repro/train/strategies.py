"""Synchronization strategies: the paper's evaluation methods and baselines.

The six Table-2 schemes (PSGD, signSGD majority vote, EF-signSGD, SSDM,
Marsit-K, Marsit) plus the Section-3.2 cascading anti-pattern and the
Section-2 PowerSGD related-work baseline.

A :class:`SyncStrategy` consumes per-worker raw gradients for one round and
returns the per-worker parameter updates (all equal — every scheme here ends
in consensus).  Strategies own their optimizer state (momentum buffers,
error-feedback memories, Marsit compensation) so the trainer stays scheme
agnostic.

Wire accounting notes for the MAR-extended sign baselines (signSGD-MV,
EF-signSGD, SSDM): following Section 5 ("we extend them to MAR by
dynamically changing the bit length"), the sign vectors travel the ring as
integer sign-sums whose width grows as ``ceil(log2(m + 1)) + 1`` bits per
element after ``m`` hops (:func:`repro.allreduce.signsum_ring_allreduce`);
per-worker scales (l2 norms / l1 means) are all-gathered as ``M`` scalars, a
negligible O(M) extra.  The aggregate is then formed from the decoded signs
and scales exactly, so the *learning* behaviour matches the PS version while
the *traffic* exhibits the MAR bit-length expansion the paper measures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.allreduce import get_topology, topology_names
from repro.allreduce.cascading import cascading_ring_allreduce
from repro.allreduce.ring import (
    ring_allgather_scalars,
    ring_allreduce_mean,
    signsum_ring_allreduce,
)
from repro.comm.bits import signed_int_bit_width
from repro.comm.cluster import Cluster
from repro.compression.ef import EFSignCompressor
from repro.compression.ssdm import SSDMCompressor, stochastic_sign
from repro.core.marsit import MarsitConfig
from repro.core.optimizer import MarsitAdam, MarsitMomentum, MarsitSGD
from repro.obs.hooks import CallbackList

__all__ = [
    "CascadingSSDMStrategy",
    "PowerSGDStrategy",
    "EFSignSGDStrategy",
    "MarsitStrategy",
    "PSGDStrategy",
    "SSDMStrategy",
    "SignSGDMajorityStrategy",
    "StepResult",
    "SyncStrategy",
]


@dataclass
class StepResult:
    """Per-round outcome: updates to subtract, and what went on the wire.

    ``plan_digest``/``num_plan_steps`` identify the compiled
    :class:`~repro.sched.plan.SyncPlan` for strategies that run one (Marsit);
    other schemes leave the defaults.
    """

    updates: list[np.ndarray] = field(repr=False)
    bits_per_element: float = 32.0
    plan_digest: str | None = None
    num_plan_steps: int = 0
    #: True when the round ran crash recovery (degraded topology + forced
    #: full-precision resync) — only Marsit sets it.
    recovered: bool = False


def _registry_entry(cluster: Cluster):
    """The cluster topology's registry entry, or None if unregistered."""
    name = cluster.topology.name
    return get_topology(name) if name in topology_names() else None


def _mean_allreduce(cluster: Cluster, vectors: list[np.ndarray]) -> list[np.ndarray]:
    """Registry-driven full-precision mean all-reduce."""
    if cluster.num_workers == 1:
        return [np.asarray(vectors[0], dtype=np.float64).copy()]
    entry = _registry_entry(cluster)
    if entry is not None and entry.mean_allreduce is not None:
        return entry.mean_allreduce(cluster, vectors)
    return ring_allreduce_mean(cluster, vectors)


def _signsum_allreduce(
    cluster: Cluster, signs: list[np.ndarray]
) -> list[np.ndarray]:
    """Registry-driven integer sign-sum all-reduce (with expansion)."""
    entry = _registry_entry(cluster)
    if entry is not None and entry.signsum_allreduce is not None:
        return entry.signsum_allreduce(cluster, signs)
    return signsum_ring_allreduce(cluster, signs)


def _allgather_scalars(cluster: Cluster, values: list[float]) -> np.ndarray:
    """All-gather one float per worker along topology links."""
    if cluster.num_workers == 1:
        return np.array(values, dtype=np.float64)
    entry = _registry_entry(cluster)
    if entry is not None and entry.allgather_scalars is not None:
        return entry.allgather_scalars(cluster, values)
    return ring_allgather_scalars(cluster, values)


class SyncStrategy(abc.ABC):
    """One synchronization scheme; stateful across rounds."""

    name: str = "base"

    @abc.abstractmethod
    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        """Aggregate this round's gradients into per-worker updates."""


class _LocalMomentum:
    """Per-worker heavy-ball buffers shared by the sign-based baselines."""

    def __init__(self, num_workers: int, momentum: float) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._buffers: list[np.ndarray | None] = [None] * num_workers

    def apply(self, rank: int, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad, dtype=np.float64)
        if self._buffers[rank] is None:
            self._buffers[rank] = np.zeros_like(grad)
        buffer = self._buffers[rank]
        buffer *= self.momentum
        buffer += grad
        return buffer.copy()


class _LocalAdam:
    """Per-worker Adam preconditioning (unit-scale steps, no lr)."""

    def __init__(self, num_workers: int, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: list[np.ndarray | None] = [None] * num_workers
        self._v: list[np.ndarray | None] = [None] * num_workers
        self._t = [0] * num_workers

    def apply(self, rank: int, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad, dtype=np.float64)
        if self._m[rank] is None:
            self._m[rank] = np.zeros_like(grad)
            self._v[rank] = np.zeros_like(grad)
        self._t[rank] += 1
        t = self._t[rank]
        self._m[rank] = self.beta1 * self._m[rank] + (1 - self.beta1) * grad
        self._v[rank] = self.beta2 * self._v[rank] + (1 - self.beta2) * grad**2
        m_hat = self._m[rank] / (1 - self.beta1**t)
        v_hat = self._v[rank] / (1 - self.beta2**t)
        return m_hat / (np.sqrt(v_hat) + self.eps)


def _make_transform(num_workers: int, base_optimizer: str, momentum: float):
    """Per-worker gradient transform used by the sign-family baselines.

    ``momentum`` -> heavy-ball smoothing (the paper's image-task optimizer);
    ``adam`` -> unit-scale Adam preconditioning (sentiment task);
    ``sgd`` -> identity.
    """
    if base_optimizer == "momentum":
        smoother = _LocalMomentum(num_workers, momentum)
        return smoother.apply
    if base_optimizer == "adam":
        precond = _LocalAdam(num_workers)
        return precond.apply
    if base_optimizer == "sgd":
        return lambda rank, grad: np.asarray(grad, dtype=np.float64)
    raise ValueError(f"unknown base optimizer {base_optimizer!r}")


class _GlobalAdam:
    """Adam on the aggregated gradient (identical state on all workers)."""

    def __init__(self, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def apply(self, grad: np.ndarray) -> np.ndarray:
        if self._m is None:
            self._m = np.zeros_like(grad)
            self._v = np.zeros_like(grad)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return m_hat / (np.sqrt(v_hat) + self.eps)


class PSGDStrategy(SyncStrategy):
    """Non-compressed parallel SGD (the paper's FP32 baseline).

    The mean gradient is all-reduced in FP32 and a single *global* optimizer
    (momentum or Adam) produces the update — the classical data-parallel
    recipe.
    """

    name = "psgd"

    def __init__(
        self,
        lr: float,
        num_workers: int,
        momentum: float = 0.9,
        base_optimizer: str = "momentum",
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.num_workers = num_workers
        self.base_optimizer = base_optimizer
        if base_optimizer == "momentum":
            self._momentum = momentum
            self._buffer: np.ndarray | None = None
        elif base_optimizer == "adam":
            self._adam = _GlobalAdam()
        elif base_optimizer != "sgd":
            raise ValueError(f"unknown base optimizer {base_optimizer!r}")

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        mean = _mean_allreduce(cluster, grads)[0]
        if self.base_optimizer == "momentum":
            if self._buffer is None:
                self._buffer = np.zeros_like(mean)
            self._buffer = self._momentum * self._buffer + mean
            direction = self._buffer
        elif self.base_optimizer == "adam":
            direction = self._adam.apply(mean)
        else:
            direction = mean
        update = self.lr * direction
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=32.0,
        )


class SignSGDMajorityStrategy(SyncStrategy):
    """signSGD with majority vote (Bernstein et al.), extended to MAR.

    Workers take the sign of their (momentum-smoothed) gradient; signs are
    summed over the ring with growing bit width; the update is
    ``lr * sign(sum)`` — majority vote, ties to +1.
    """

    name = "signsgd-mv"

    def __init__(
        self,
        lr: float,
        num_workers: int,
        momentum: float = 0.9,
        base_optimizer: str = "momentum",
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.num_workers = num_workers
        self._transform = _make_transform(num_workers, base_optimizer, momentum)

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        signs = [
            np.where(self._transform(rank, grad) >= 0, 1.0, -1.0)
            for rank, grad in enumerate(grads)
        ]
        if cluster.num_workers == 1:
            totals = signs[0]
        else:
            totals = _signsum_allreduce(cluster, signs)[0]
        update = self.lr * np.where(totals >= 0, 1.0, -1.0)
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=self._expanded_bits(),
        )

    def _expanded_bits(self) -> float:
        return float(signed_int_bit_width(max(1, self.num_workers)))


class EFSignSGDStrategy(SyncStrategy):
    """EF-signSGD (Karimireddy et al.) extended to MAR.

    Each worker compresses its momentum-smoothed gradient to a scaled sign
    with local error feedback; the mean of the decoded worker messages is the
    update.  Signs ride the expanding sign-sum ring; scales are all-gathered.
    """

    name = "ef-signsgd"

    def __init__(
        self,
        lr: float,
        num_workers: int,
        momentum: float = 0.9,
        base_optimizer: str = "momentum",
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.num_workers = num_workers
        self._transform = _make_transform(num_workers, base_optimizer, momentum)
        self._compressors = [EFSignCompressor() for _ in range(num_workers)]

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        signs, scales = [], []
        for rank, grad in enumerate(grads):
            smoothed = self._transform(rank, grad)
            payload = self._compressors[rank].compress(self.lr * smoothed)
            signs.append(payload.bits.to_signs())
            scales.append(payload.scale)
        if cluster.num_workers > 1:
            _signsum_allreduce(cluster, signs)
            gathered = _allgather_scalars(cluster, scales)
        else:
            gathered = np.array(scales)
        decoded = [gathered[rank] * signs[rank] for rank in range(self.num_workers)]
        update = np.mean(decoded, axis=0)
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=float(self.num_workers.bit_length() + 1),
        )


class SSDMStrategy(SyncStrategy):
    """SSDM — stochastic sign descent (Safaryan & Richtarik) under MAR.

    Each worker draws the SSDM stochastic sign of its (transformed) gradient
    (``P(+1) = 1/2 + g_j / (2||g||)``, the unbiased direction sample of
    Appendix A) and the update is ``lr * mean_m(sign~_m)`` — *sign descent*,
    as the method's name says: magnitude information enters only through the
    flip probabilities, so the step size is controlled by ``lr`` like
    signSGD, not by the (huge) l2 norm.  The sign sums ride the expanding
    integer ring (Section 3.1's bit-length growth).

    ``norm_scaled=True`` switches to the raw unbiased estimator
    ``lr * mean_m(norm_m * sign~_m)`` (Appendix A's ``s_2``) — much higher
    variance; used by the deviation benches.
    """

    name = "ssdm"

    def __init__(
        self,
        lr: float,
        num_workers: int,
        seed: int = 0,
        momentum: float = 0.9,
        base_optimizer: str = "momentum",
        norm_scaled: bool = False,
        block_size: int | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.num_workers = num_workers
        self.norm_scaled = norm_scaled
        self.block_size = block_size
        self._transform = _make_transform(num_workers, base_optimizer, momentum)
        seeds = np.random.SeedSequence(seed).spawn(num_workers)
        self._rngs = [np.random.default_rng(s) for s in seeds]

    def _draw_signs(self, vector: np.ndarray, rng) -> tuple[np.ndarray, float]:
        """Stochastic signs with global or per-block l2 flip probabilities.

        Block-wise norms (the SSDM paper's rho-norm practical variant) keep
        the per-coordinate signal ``~1/sqrt(block)`` instead of
        ``~1/sqrt(D)``, which is what lets SSDM train large flat-gradient
        models like the transformer workload.
        """
        if self.block_size is None or vector.size <= self.block_size:
            return stochastic_sign(vector, rng)
        block = self.block_size
        num_blocks = (vector.size + block - 1) // block
        padded = np.zeros(num_blocks * block)
        padded[: vector.size] = vector
        blocks = padded.reshape(num_blocks, block)
        norms = np.linalg.norm(blocks, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        probs = 0.5 + blocks / (2.0 * safe[:, None])
        draws = rng.random(blocks.shape)
        signs = np.where(draws < probs, 1.0, -1.0).reshape(-1)[: vector.size]
        return signs, float(np.linalg.norm(vector))

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        signs, norms = [], []
        for rank, grad in enumerate(grads):
            transformed = self._transform(rank, grad)
            sign, norm = self._draw_signs(transformed, self._rngs[rank])
            signs.append(sign)
            norms.append(norm)
        if cluster.num_workers > 1:
            _signsum_allreduce(cluster, signs)
            if self.norm_scaled:
                gathered = _allgather_scalars(cluster, norms)
            else:
                gathered = np.ones(self.num_workers)
        else:
            gathered = np.array(norms) if self.norm_scaled else np.ones(1)
        estimates = [gathered[rank] * signs[rank] for rank in range(self.num_workers)]
        update = self.lr * np.mean(estimates, axis=0)
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=float(self.num_workers.bit_length() + 1),
        )


class CascadingSSDMStrategy(SyncStrategy):
    """SSDM through cascading compression — the Section 3.2 anti-pattern.

    One bit per hop, but every hop decompresses, adds, and recompresses; the
    deviation grows per Theorem 3 and training degrades or diverges as M
    grows (Table 1).

    ``normalize`` (default True) rescales the decoded aggregate to the mean
    of the workers' local gradient norms.  The literal decode carries an
    l2-norm that multiplies by ~sqrt(D) per hop (exactly Theorem 3's
    ``(2D)^M`` blow-up), which at any stepsize destroys the model within one
    round; a practical cascading implementation — and evidently the paper's
    Table 1 runs, which converge slowly at M = 3 — must control that scale.
    Normalization keeps the *directional* degradation (Figure 1b's ~56%
    matching rate and the worsening with M) while making the magnitude
    comparable to a real gradient; ``normalize=False`` gives the literal
    exploding variant for the Theorem 3 benches.
    """

    name = "cascading"

    def __init__(
        self,
        lr: float,
        num_workers: int,
        seed: int = 0,
        normalize: bool = True,
        compressor=None,
        momentum: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.num_workers = num_workers
        self.normalize = normalize
        self._compressor = compressor if compressor is not None else SSDMCompressor()
        self._momentum = (
            _LocalMomentum(num_workers, momentum) if momentum > 0 else None
        )
        seeds = np.random.SeedSequence(seed).spawn(num_workers)
        self._rngs = [np.random.default_rng(s) for s in seeds]

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        if self._momentum is not None:
            grads = [
                self._momentum.apply(rank, grad) for rank, grad in enumerate(grads)
            ]
        vectors = [np.asarray(grad, dtype=np.float64) for grad in grads]
        if cluster.num_workers == 1:
            mean = vectors[0]
        else:
            mean = cascading_ring_allreduce(
                cluster, vectors, self._compressor, self._rngs
            )[0]
        if self.normalize and cluster.num_workers > 1:
            target = float(np.mean([np.linalg.norm(v) for v in vectors]))
            scale = float(np.linalg.norm(mean))
            if scale > 0:
                mean = mean * (target / scale)
        update = self.lr * mean
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=1.0,
        )


class PowerSGDStrategy(SyncStrategy):
    """PowerSGD (Vogels et al.) under MAR — the related-work baseline.

    The gradient matrix is approximated as ``P Q^T`` by one warm-started
    subspace iteration with error feedback.  Distributed form: all workers
    all-reduce ``P = G Q`` (first ring pass), orthonormalize identically,
    then all-reduce ``Q = G^T P_hat`` (second ring pass) — the two passes
    are *sequential* because the second depends on the first, which is
    exactly the paper's Section 2 criticism: "requires to transmit multiple
    sequential vectors at a synchronization, which undermines the training
    efficiency under RAR."  The latency term doubles even though the volume
    is small.
    """

    name = "powersgd"

    def __init__(
        self,
        lr: float,
        num_workers: int,
        rank: int = 2,
        momentum: float = 0.9,
        base_optimizer: str = "momentum",
        seed: int = 0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.lr = lr
        self.num_workers = num_workers
        self.rank = rank
        self._transform = _make_transform(num_workers, base_optimizer, momentum)
        self._memories: list[np.ndarray | None] = [None] * num_workers
        self._q: np.ndarray | None = None
        self._seed = seed

    def _matrix_shape(self, dimension: int) -> tuple[int, int]:
        import math

        rows = max(1, int(math.isqrt(dimension)))
        return rows, math.ceil(dimension / rows)

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        dimension = int(np.asarray(grads[0]).size)
        rows, cols = self._matrix_shape(dimension)
        rank = min(self.rank, rows, cols)
        if self._q is None or self._q.shape != (cols, rank):
            self._q = np.random.default_rng(self._seed).standard_normal(
                (cols, rank)
            )
        matrices = []
        corrected_vectors = []
        for worker, grad in enumerate(grads):
            corrected = self.lr * self._transform(worker, grad)
            if self._memories[worker] is not None:
                corrected = corrected + self._memories[worker]
            corrected_vectors.append(corrected)
            padded = np.zeros(rows * cols)
            padded[:dimension] = corrected
            matrices.append(padded.reshape(rows, cols))

        # First sequential pass: all-reduce P = G Q.
        p_locals = [(g @ self._q).reshape(-1) for g in matrices]
        if cluster.num_workers > 1:
            p_mean = ring_allreduce_mean(cluster, p_locals)[0]
        else:
            p_mean = p_locals[0]
        p_hat, _ = np.linalg.qr(p_mean.reshape(rows, rank))

        # Second sequential pass: all-reduce Q = G^T P_hat.
        q_locals = [(g.T @ p_hat).reshape(-1) for g in matrices]
        if cluster.num_workers > 1:
            q_mean = ring_allreduce_mean(cluster, q_locals)[0]
        else:
            q_mean = q_locals[0]
        self._q = q_mean.reshape(cols, rank)

        decoded_flat = (p_hat @ self._q.T).reshape(-1)[:dimension]
        for worker in range(self.num_workers):
            self._memories[worker] = corrected_vectors[worker] - decoded_flat
        update = decoded_flat
        bits = 32.0 * rank * (rows + cols) / dimension
        return StepResult(
            updates=[update.copy() for _ in range(self.num_workers)],
            bits_per_element=bits,
        )


class MarsitStrategy(SyncStrategy):
    """Marsit (Algorithm 2) with a selectable local base optimizer.

    ``full_precision_every=K`` gives Marsit-K (e.g. Marsit-100);
    ``None`` gives plain Marsit.

    ``local_lr_decay`` multiplies the local stepsize after every
    full-precision synchronization — the paper's "decays by a factor of 10
    every full-precision synchronization" schedule (Section 5), made
    configurable because short simulated runs need gentler factors.

    Tuning note: ``global_lr`` (eta_s) should sit near the per-element RMS of
    the local updates ``eta_l * u``; far below it the compensation vector
    grows linearly between resets and the K-round full-precision "dump"
    overshoots (the instability Theorem 1's eta_s = 1/sqrt(TD) avoids).
    """

    name = "marsit"

    def __init__(
        self,
        local_lr: float,
        global_lr: float,
        num_workers: int,
        dimension: int,
        full_precision_every: int | None = None,
        base_optimizer: str = "momentum",
        momentum: float = 0.9,
        seed: int = 0,
        global_lr_schedule=None,
        local_lr_decay: float = 1.0,
        segment_elems: int | None = None,
        engine: str = "batched",
        verify_consensus: bool = True,
        callbacks=None,
    ) -> None:
        config = MarsitConfig(
            global_lr=global_lr,
            full_precision_every=full_precision_every,
            seed=seed,
            global_lr_schedule=global_lr_schedule,
            segment_elems=segment_elems,
            engine=engine,
            verify_consensus=verify_consensus,
        )
        if base_optimizer == "momentum":
            self._optimizer = MarsitMomentum(
                config, local_lr, num_workers, dimension, momentum=momentum
            )
        elif base_optimizer == "adam":
            self._optimizer = MarsitAdam(config, local_lr, num_workers, dimension)
        elif base_optimizer == "sgd":
            self._optimizer = MarsitSGD(config, local_lr, num_workers, dimension)
        else:
            raise ValueError(f"unknown base optimizer {base_optimizer!r}")
        self.num_workers = num_workers
        self.callbacks = CallbackList(callbacks)
        if not 0.0 < local_lr_decay <= 1.0:
            raise ValueError("local_lr_decay must be in (0, 1]")
        self.local_lr_decay = local_lr_decay
        if full_precision_every is not None:
            self.name = f"marsit-{full_precision_every}"

    def step(
        self, cluster: Cluster, grads: list[np.ndarray], round_idx: int
    ) -> StepResult:
        self.callbacks.on_round_start(round_idx, cluster=cluster, strategy=self)
        report = self._optimizer.step(cluster, grads, round_idx)
        if (
            report.full_precision
            and round_idx > 0
            and self.local_lr_decay != 1.0
        ):
            self._optimizer.local_lr *= self.local_lr_decay
        result = StepResult(
            updates=report.global_updates,
            bits_per_element=report.bits_per_element,
            plan_digest=report.plan_digest,
            num_plan_steps=report.num_plan_steps,
            recovered=report.recovered,
        )
        self.callbacks.on_sync_done(
            round_idx, result, cluster=cluster, strategy=self
        )
        return result
