"""The deterministic fault injector the cluster and executors consult.

Determinism contract
--------------------
Every random fault decision is drawn from a generator *keyed by the
decision's logical coordinates* — ``(plan seed, round, kind, step tag,
original link, occurrence index)`` hashed through BLAKE2b into a Philox
key — never from a shared stream.  The scalar engine moves payloads one
message at a time while the lane-stacked engine batches merges before its
bulk exchange, so the two interleave fault queries differently; content
keying makes the answer a pure function of *which* message is asked about,
so both engines see byte-identical faults, timelines, and ``faults.*``
metrics under the same seed (the chaos suite's cross-engine invariant).

Crash remapping: after a recovery the cluster shrinks and re-ranks, but all
fault coordinates stay keyed by the *original* ranks via the injector's
``rank -> original rank`` map — a plan that jitters link ``(3, 4)`` keeps
jittering those two physical machines whatever their current ranks are.

Hook points (all no-ops costing one ``None`` check when no injector is
attached):

- ``Cluster.begin_step``/``exchange`` -> :meth:`FaultInjector.begin_step`
- ``Cluster.send``/``exchange`` per message -> :meth:`on_message`
- ``Cluster.end_step``/``exchange`` makespan -> :meth:`finish_step`
- executors' reduce hops -> :meth:`flip_mask`
- ``MarsitSynchronizer.synchronize`` -> :meth:`begin_round`,
  :meth:`take_new_crashes`, :meth:`set_active`
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.comm.bits import PackedBits
from repro.faults.plan import (
    BitFlip,
    FaultPlan,
    LinkJitter,
    LinkPartition,
    MessageDrop,
    Straggler,
    WorkerCrash,
)

__all__ = ["FaultInjector", "WorkerCrashedError"]


class WorkerCrashedError(RuntimeError):
    """Raised when traffic touches a crashed (un-recovered) worker."""


class FaultInjector:
    """Turns a :class:`~repro.faults.plan.FaultPlan` into per-message decisions.

    One injector serves one cluster (:meth:`bind` is called by
    ``Cluster.attach_faults``).  All state is derived: per-round caches of
    which links carry which fault probabilities, per-round occurrence
    counters, and the monotone dead-worker set.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters: dict[str, float] = {}
        self._cluster = None
        self._round = 0
        self._started = False
        self._physical: list[int] = []
        self._dead: set[int] = set()
        self._dead_current: frozenset[int] = frozenset()
        self._new_crashes: list[int] = []
        self._occurrences: dict[tuple, int] = {}
        self._penalty: dict[tuple[int, int], float] = {}
        # per-round caches keyed by *current* (src, dst) cluster ranks
        self._drop: dict[tuple[int, int], tuple[float, str]] = {}
        self._flip: dict[tuple[int, int], float] = {}
        self._jitter: dict[tuple[int, int], float] = {}
        self._slow: dict[tuple[int, int], float] = {}
        self._partitioned: frozenset[tuple[int, int]] = frozenset()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, cluster) -> None:
        """Attach to a cluster (called by ``Cluster.attach_faults``)."""
        self._cluster = cluster
        self._physical = list(range(cluster.num_workers))
        self.plan.validate(cluster.num_workers)
        self._rebuild_round_caches()

    def begin_round(self, round_idx: int) -> None:
        """Advance to ``round_idx``: activate crashes, refresh link caches.

        Idempotent per round — both the trainer and the synchronizer call it.
        """
        if self._started and round_idx == self._round:
            return
        self._started = True
        self._round = round_idx
        self._occurrences = {}
        for event in self.plan.events:
            if (
                isinstance(event, WorkerCrash)
                and event.round_idx <= round_idx
                and event.worker not in self._dead
            ):
                self._dead.add(event.worker)
                self._new_crashes.append(event.worker)
                self._count("crashes")
        self._refresh_dead_current()
        self._rebuild_round_caches()

    def begin_step(self) -> None:
        """Reset per-step retry penalties (one call per synchronous step)."""
        self._penalty = {}

    @property
    def dead_workers(self) -> frozenset[int]:
        """Original ranks of every worker crashed so far."""
        return frozenset(self._dead)

    def take_new_crashes(self) -> tuple[int, ...]:
        """Original ranks crashed since the last call (recovery trigger)."""
        crashed = tuple(self._new_crashes)
        self._new_crashes = []
        return crashed

    def set_active(self, survivors: list[int]) -> None:
        """Re-rank after recovery: current rank ``i`` is ``survivors[i]``.

        ``survivors`` are *original* ranks; fault coordinates keep using
        them, so decisions survive any number of re-rankings.
        """
        self._physical = list(survivors)
        self._refresh_dead_current()
        self._rebuild_round_caches()

    # ------------------------------------------------------------------
    # per-message and per-step hooks
    # ------------------------------------------------------------------
    def on_message(
        self, tag: str, src: int, dst: int, nbytes: int
    ) -> tuple[int, bool]:
        """Decide one message's fate: ``(extra wire bytes, deliver?)``.

        Retry-mode losses and partitions retransmit: the extra attempts'
        bytes travel the wire (inflating the step's makespan) and each
        failed attempt adds one ``retry_timeout_s`` to the link's step
        penalty.  Timeout-mode losses return ``deliver=False``.
        """
        if src in self._dead_current or dst in self._dead_current:
            raise WorkerCrashedError(
                f"message {src} -> {dst} touches a crashed worker"
            )
        key = (src, dst)
        entry = self._drop.get(key)
        partitioned = key in self._partitioned
        if entry is None and not partitioned:
            return 0, True
        origin = (self._physical[src], self._physical[dst])
        timeout = self.plan.retry_timeout_s
        if partitioned:
            # The link heals within the hop, after the full retry budget.
            failures = self.plan.max_attempts
            self._count("partition_hits")
        else:
            prob, mode = entry
            occ = self._next_occurrence(("drop", tag, origin))
            rng = self._keyed_rng("drop", tag, origin, occ)
            failures = 0
            limit = self.plan.max_attempts
            while failures < limit and rng.random() < prob:
                failures += 1
            if failures and mode == "timeout":
                self._count("drops")
                self._count("timeouts")
                self._penalty[key] = self._penalty.get(key, 0.0) + timeout
                return 0, False
        if not failures:
            return 0, True
        self._count("drops", failures)
        self._count("retries", failures)
        extra = failures * nbytes
        self._count("retry_bytes", extra)
        self._count("retry_wait_s", failures * timeout, metric=False)
        self._penalty[key] = self._penalty.get(key, 0.0) + failures * timeout
        return extra, True

    def finish_step(
        self, tag: str, step_bytes: dict[tuple[int, int], int]
    ) -> float:
        """The step's makespan under jitter, stragglers, and retry waits."""
        cluster = self._cluster
        jitter = self._jitter
        slow = self._slow
        penalty = self._penalty
        occ = self._next_occurrence(("step", tag)) if jitter else 0
        elapsed = 0.0
        for key, nbytes in step_bytes.items():
            seconds = cluster._link_transfer_time(key, nbytes)
            factor = slow.get(key)
            if factor is not None:
                seconds *= factor
            sigma = jitter.get(key)
            if sigma is not None:
                origin = (self._physical[key[0]], self._physical[key[1]])
                rng = self._keyed_rng("jitter", tag, origin, occ)
                seconds *= math.exp(sigma * rng.standard_normal())
            wait = penalty.get(key)
            if wait is not None:
                seconds += wait
            if seconds > elapsed:
                elapsed = seconds
        return elapsed

    @property
    def flips_active(self) -> bool:
        """Whether any link carries a bit-flip probability this round."""
        return bool(self._flip)

    def flip_mask(
        self, tag: str, src: int, dst: int, length: int
    ) -> PackedBits | None:
        """XOR mask for one reduce payload, or None when nothing flips."""
        prob = self._flip.get((src, dst))
        if prob is None or length == 0:
            return None
        origin = (self._physical[src], self._physical[dst])
        occ = self._next_occurrence(("flip", tag, origin))
        rng = self._keyed_rng("flip", tag, origin, occ)
        bits = rng.random(length) < prob
        flipped = int(bits.sum())
        if not flipped:
            return None
        self._count("flipped_messages")
        self._count("flipped_bits", flipped)
        return PackedBits.from_bits(bits)

    # ------------------------------------------------------------------
    # recovery bookkeeping + reporting
    # ------------------------------------------------------------------
    def note_recovery(self, crashed: tuple[int, ...], survivors: list[int]) -> None:
        """Record one degrade-and-resync recovery (called by the synchronizer)."""
        self._count("recoveries")
        self._count("forced_resyncs")
        cluster = self._cluster
        if cluster is not None and cluster._obs_on:
            cluster.obs.tracer.instant(
                "faults.recovery",
                round=self._round,
                crashed=list(crashed),
                survivors=list(survivors),
            )

    def summary(self) -> dict:
        """JSON-ready roll-up for ``TrainResult.fault_summary``."""
        counters = {
            name: (value if name == "retry_wait_s" else int(value))
            for name, value in sorted(self.counters.items())
        }
        return {
            "seed": self.plan.seed,
            "events": len(self.plan.events),
            "counters": counters,
            "dead_workers": sorted(self._dead),
            "active_workers": list(self._physical),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _keyed_rng(self, kind: str, tag: str, origin, occ: int):
        """Philox generator keyed by the decision's logical coordinates."""
        token = repr((self.plan.seed, self._round, kind, tag, origin, occ))
        digest = hashlib.blake2b(token.encode("ascii"), digest_size=16).digest()
        key = np.frombuffer(digest, dtype=np.uint64)
        return np.random.Generator(np.random.Philox(key=key))

    def _next_occurrence(self, key: tuple) -> int:
        occ = self._occurrences.get(key, 0)
        self._occurrences[key] = occ + 1
        return occ

    def _count(self, name: str, value: float = 1, metric: bool = True) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        if metric and self._cluster is not None and self._cluster._obs_on:
            registry = self._cluster.obs.metrics
            if registry is not None:
                registry.counter(f"faults.{name}").inc(value)

    def _refresh_dead_current(self) -> None:
        inverse = {orig: cur for cur, orig in enumerate(self._physical)}
        self._dead_current = frozenset(
            inverse[rank] for rank in self._dead if rank in inverse
        )

    def _rebuild_round_caches(self) -> None:
        """Resolve active events onto the cluster's current links."""
        self._drop = {}
        self._flip = {}
        self._jitter = {}
        self._slow = {}
        partitioned = set()
        cluster = self._cluster
        if cluster is None:
            return
        round_idx = self._round
        physical = self._physical
        active = [
            event
            for event in self.plan.events
            if not isinstance(event, WorkerCrash) and event.active(round_idx)
        ]
        if not active:
            self._partitioned = frozenset()
            return
        for key in cluster.links:
            origin = (physical[key[0]], physical[key[1]])
            keep_prob = 1.0
            mode = "retry"
            flip_keep = 1.0
            variance = 0.0
            factor = 1.0
            for event in active:
                if isinstance(event, MessageDrop):
                    if event.links is None or origin in event.links:
                        keep_prob *= 1.0 - event.prob
                        if event.mode == "timeout":
                            mode = "timeout"
                elif isinstance(event, BitFlip):
                    if event.links is None or origin in event.links:
                        flip_keep *= 1.0 - event.prob
                elif isinstance(event, LinkJitter):
                    if event.links is None or origin in event.links:
                        variance += event.sigma * event.sigma
                elif isinstance(event, Straggler):
                    if event.worker in origin:
                        factor *= event.factor
                elif isinstance(event, LinkPartition):
                    if (event.src, event.dst) == origin:
                        partitioned.add(key)
            if keep_prob < 1.0:
                self._drop[key] = (1.0 - keep_prob, mode)
            if flip_keep < 1.0:
                self._flip[key] = 1.0 - flip_keep
            if variance > 0.0:
                self._jitter[key] = math.sqrt(variance)
            if factor != 1.0:
                self._slow[key] = factor
        self._partitioned = frozenset(partitioned)
