"""Declarative, seeded fault plans for the simulated cluster.

A :class:`FaultPlan` is pure data: a seed, a tuple of fault *events*, and the
recovery knobs (retry budget, per-hop timeout, crash quorum).  Nothing here
draws randomness or touches the cluster — the :mod:`repro.faults.inject`
injector turns a plan into deterministic per-message decisions.

Events
------
:class:`LinkJitter`
    Lognormal per-step multiplier ``exp(sigma * z)`` on a link's transfer
    time — the DynamiQ-style link variance a multi-hop ring is sensitive to.
:class:`Straggler`
    A deterministic slowdown factor on every link incident to one worker.
:class:`MessageDrop`
    Per-message loss.  ``mode="retry"`` (default) models a reliable
    transport: each loss costs one timeout plus a retransmission and the
    message always lands within ``FaultPlan.max_attempts`` tries.
    ``mode="timeout"`` loses the message terminally — the receiver times
    out and the caller must abort/clean the round
    (:meth:`~repro.comm.cluster.Cluster.abort_step` +
    :meth:`~repro.comm.cluster.Cluster.discard_pending`).  Terminal mode is
    a scalar-engine diagnostic: the lane-stacked engine models only the
    reliable-transport protocol, because its payloads never cross the
    cluster.
:class:`BitFlip`
    Per-bit corruption of one-bit *reduce* payloads on the wire.  Gather
    (broadcast) hops are modelled as checksum-protected: a flip there would
    propagate asymmetrically and break the consensus invariant rather than
    merely add merge noise.
:class:`WorkerCrash`
    Fail-stop at the start of round ``round_idx``; triggers quorum check +
    degrade-and-resync recovery (:mod:`repro.faults.recovery`).
:class:`LinkPartition`
    A directed link that delivers nothing while active; every message on it
    pays the full retry budget before healing within the hop.

Every windowed event is active on rounds ``first_round <= r <= last_round``
(``last_round=None`` means forever).  ``links`` tuples are *directed*
``(src, dst)`` pairs over the original (pre-crash) ranks; ``None`` means
every link of the current topology.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

__all__ = [
    "BitFlip",
    "FaultPlan",
    "LinkJitter",
    "LinkPartition",
    "MessageDrop",
    "QuorumLostError",
    "Straggler",
    "WorkerCrash",
    "load_fault_plan",
]


class QuorumLostError(RuntimeError):
    """Raised when crashes leave fewer survivors than the plan's quorum."""


def _check_window(first_round: int, last_round: int | None) -> None:
    if first_round < 0:
        raise ValueError("first_round must be >= 0")
    if last_round is not None and last_round < first_round:
        raise ValueError("last_round must be >= first_round or None")


def _check_links(links) -> None:
    if links is None:
        return
    for pair in links:
        if len(pair) != 2 or pair[0] == pair[1] or min(pair) < 0:
            raise ValueError(f"links entries must be (src, dst) pairs, got {pair!r}")


def _normalize_links(links):
    if links is None:
        return None
    return tuple((int(src), int(dst)) for src, dst in links)


@dataclass(frozen=True)
class LinkJitter:
    """Lognormal transfer-time noise: multiply by ``exp(sigma * z)``."""

    sigma: float
    links: tuple[tuple[int, int], ...] | None = None
    first_round: int = 0
    last_round: int | None = None

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        _check_links(self.links)
        object.__setattr__(self, "links", _normalize_links(self.links))
        _check_window(self.first_round, self.last_round)

    def active(self, round_idx: int) -> bool:
        return self.first_round <= round_idx and (
            self.last_round is None or round_idx <= self.last_round
        )


@dataclass(frozen=True)
class Straggler:
    """Deterministic slowdown ``factor`` on links touching ``worker``."""

    worker: int
    factor: float
    first_round: int = 0
    last_round: int | None = None

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (a time multiplier)")
        _check_window(self.first_round, self.last_round)

    def active(self, round_idx: int) -> bool:
        return self.first_round <= round_idx and (
            self.last_round is None or round_idx <= self.last_round
        )


@dataclass(frozen=True)
class MessageDrop:
    """Per-message loss with probability ``prob`` on matching links."""

    prob: float
    links: tuple[tuple[int, int], ...] | None = None
    mode: str = "retry"
    first_round: int = 0
    last_round: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.prob <= 1.0:
            raise ValueError("prob must be in (0, 1]")
        if self.mode not in ("retry", "timeout"):
            raise ValueError(f"mode must be 'retry' or 'timeout', got {self.mode!r}")
        _check_links(self.links)
        object.__setattr__(self, "links", _normalize_links(self.links))
        _check_window(self.first_round, self.last_round)

    def active(self, round_idx: int) -> bool:
        return self.first_round <= round_idx and (
            self.last_round is None or round_idx <= self.last_round
        )


@dataclass(frozen=True)
class BitFlip:
    """Per-bit wire corruption of reduce-hop sign payloads."""

    prob: float
    links: tuple[tuple[int, int], ...] | None = None
    first_round: int = 0
    last_round: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.prob <= 0.5:
            raise ValueError("prob must be in (0, 0.5]")
        _check_links(self.links)
        object.__setattr__(self, "links", _normalize_links(self.links))
        _check_window(self.first_round, self.last_round)

    def active(self, round_idx: int) -> bool:
        return self.first_round <= round_idx and (
            self.last_round is None or round_idx <= self.last_round
        )


@dataclass(frozen=True)
class WorkerCrash:
    """Fail-stop of ``worker`` effective from the start of ``round_idx``."""

    worker: int
    round_idx: int

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be >= 0")
        if self.round_idx < 0:
            raise ValueError("round_idx must be >= 0")


@dataclass(frozen=True)
class LinkPartition:
    """Directed link ``src -> dst`` delivers nothing while active."""

    src: int
    dst: int
    first_round: int = 0
    last_round: int | None = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0 or self.src == self.dst:
            raise ValueError("partition needs two distinct non-negative ranks")
        _check_window(self.first_round, self.last_round)

    def active(self, round_idx: int) -> bool:
        return self.first_round <= round_idx and (
            self.last_round is None or round_idx <= self.last_round
        )


_EVENT_TYPES = {
    "link_jitter": LinkJitter,
    "straggler": Straggler,
    "message_drop": MessageDrop,
    "bit_flip": BitFlip,
    "worker_crash": WorkerCrash,
    "link_partition": LinkPartition,
}
_EVENT_NAMES = {cls: name for name, cls in _EVENT_TYPES.items()}

Event = LinkJitter | Straggler | MessageDrop | BitFlip | WorkerCrash | LinkPartition


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of everything that goes wrong.

    Attributes:
        seed: root of every fault decision.  Decisions are keyed by their
            logical coordinates (round, tag, link, occurrence), never by call
            order, so both executors see identical faults.
        events: the fault events (order is irrelevant; effects on one link
            combine: drop/flip probabilities by inclusion-exclusion, jitter
            sigmas in quadrature, straggler factors multiplicatively).
        retry_timeout_s: simulated seconds a receiver waits before declaring
            one attempt lost (charged once per failed attempt).
        max_attempts: transmission budget per message in ``retry`` mode; a
            message always lands within this many tries, bounding the time
            penalty of any drop rate.
        quorum: minimum surviving fraction of the original workers; crash
            recovery below it raises :class:`QuorumLostError`.
    """

    seed: int = 0
    events: tuple[Event, ...] = ()
    retry_timeout_s: float = 200e-6
    max_attempts: int = 4
    quorum: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if type(event) not in _EVENT_NAMES:
                raise TypeError(f"unknown fault event {type(event).__name__}")
        if self.retry_timeout_s <= 0:
            raise ValueError("retry_timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.quorum <= 1.0:
            raise ValueError("quorum must be in [0, 1]")

    # ------------------------------------------------------------------
    # validation against a concrete cluster size
    # ------------------------------------------------------------------
    def validate(self, num_workers: int | None = None) -> None:
        """Cross-check event coordinates against a worker count."""
        if num_workers is None:
            return
        for event in self.events:
            ranks = []
            if isinstance(event, (Straggler, WorkerCrash)):
                ranks = [event.worker]
            elif isinstance(event, LinkPartition):
                ranks = [event.src, event.dst]
            elif getattr(event, "links", None) is not None:
                ranks = [rank for pair in event.links for rank in pair]
            for rank in ranks:
                if rank >= num_workers:
                    raise ValueError(
                        f"{type(event).__name__} references rank {rank} but "
                        f"the run has {num_workers} workers"
                    )

    def crashes(self) -> tuple[WorkerCrash, ...]:
        return tuple(e for e in self.events if isinstance(e, WorkerCrash))

    # ------------------------------------------------------------------
    # canonical JSON round-trip
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        events = []
        for event in self.events:
            entry: dict = {"kind": _EVENT_NAMES[type(event)]}
            for f in fields(event):
                value = getattr(event, f.name)
                if isinstance(value, tuple):
                    value = [list(pair) for pair in value]
                entry[f.name] = value
            events.append(entry)
        return {
            "seed": self.seed,
            "retry_timeout_s": self.retry_timeout_s,
            "max_attempts": self.max_attempts,
            "quorum": self.quorum,
            "events": events,
        }

    def to_json(self, path: str | None = None) -> str:
        text = json.dumps(self.to_json_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultPlan":
        events = []
        for entry in payload.get("events") or []:
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _EVENT_TYPES.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"unknown fault event kind {kind!r}; one of "
                    f"{', '.join(sorted(_EVENT_TYPES))}"
                )
            if entry.get("links") is not None:
                entry["links"] = tuple(tuple(pair) for pair in entry["links"])
            events.append(event_cls(**entry))
        return cls(
            seed=payload.get("seed", 0),
            events=tuple(events),
            retry_timeout_s=payload.get("retry_timeout_s", 200e-6),
            max_attempts=payload.get("max_attempts", 4),
            quorum=payload.get("quorum", 0.5),
        )


def load_fault_plan(path: str) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (the ``--faults`` flag)."""
    with open(path) as handle:
        return FaultPlan.from_json_dict(json.load(handle))
