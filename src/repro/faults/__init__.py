"""Deterministic fault injection and recovery for the simulated cluster.

- :mod:`repro.faults.plan` — the declarative, seeded :class:`FaultPlan`.
- :mod:`repro.faults.inject` — the :class:`FaultInjector` consulted by
  ``Cluster.send``/``exchange`` and the executors' reduce hops.
- :mod:`repro.faults.recovery` — quorum check, topology degradation, and
  post-crash plan recompilation.
"""

from repro.faults.inject import FaultInjector, WorkerCrashedError
from repro.faults.plan import (
    BitFlip,
    FaultPlan,
    LinkJitter,
    LinkPartition,
    MessageDrop,
    QuorumLostError,
    Straggler,
    WorkerCrash,
    load_fault_plan,
)
from repro.faults.recovery import (
    check_quorum,
    compile_degraded_plan,
    degraded_topology,
)

__all__ = [
    "BitFlip",
    "FaultInjector",
    "FaultPlan",
    "LinkJitter",
    "LinkPartition",
    "MessageDrop",
    "QuorumLostError",
    "Straggler",
    "WorkerCrash",
    "WorkerCrashedError",
    "check_quorum",
    "compile_degraded_plan",
    "degraded_topology",
    "load_fault_plan",
]
