"""Crash recovery: quorum check, topology degradation, plan recompilation.

The paper's K-round full-precision resync doubles as a natural recovery
anchor: after a fail-stop the survivors' compensation vectors reference sign
votes the dead worker contributed to, so Marsit recovers by

1. checking the quorum (``FaultPlan.quorum`` fraction of the original M),
2. rebuilding the topology over the survivor count — same family when the
   family can shrink (ring: always; tree: any size; halving-doubling: power
   of two), otherwise falling back to a ring, which accepts any size —
3. recompiling the :class:`~repro.sched.plan.SyncPlan` through the topology
   registry for the new worker set, and
4. forcing an early full-precision resync to zero every survivor's
   compensation, exactly like a scheduled K-sync round.

:func:`degraded_topology` is the policy; :func:`compile_degraded_plan` is
the pure helper the golden-snapshot tests (and offline tooling) use to pin
post-crash plans without running a cluster.
"""

from __future__ import annotations

import math

from repro.comm.topology import Topology, ring_topology
from repro.faults.plan import FaultPlan, QuorumLostError
from repro.sched.plan import CompileContext, SyncPlan

__all__ = [
    "check_quorum",
    "compile_degraded_plan",
    "degraded_topology",
]


def check_quorum(
    plan: FaultPlan, num_original: int, survivors: list[int]
) -> None:
    """Raise :class:`QuorumLostError` unless enough workers survive.

    One-bit consensus additionally needs at least two participants — a
    single survivor has nobody to merge with.
    """
    needed = max(2, math.ceil(plan.quorum * num_original))
    if len(survivors) < needed:
        raise QuorumLostError(
            f"{len(survivors)} of {num_original} workers survive; quorum "
            f"requires {needed}"
        )


def degraded_topology(topology: Topology, num_survivors: int) -> Topology:
    """The topology the survivors reform into.

    Consults the registry entry's ``degrade`` hook (a family that can
    rebuild at the new size keeps its shape); any family that cannot — a
    torus losing one node is no longer a torus, halving-doubling needs a
    power of two — falls back to a ring, the one multi-hop schedule that
    accepts every worker count.
    """
    if num_survivors < 2:
        raise ValueError("a degraded topology needs at least 2 survivors")
    from repro.allreduce import get_topology, topology_names

    if topology.name in topology_names():
        degrade = get_topology(topology.name).degrade
        if degrade is not None:
            rebuilt = degrade(num_survivors, dict(topology.meta))
            if rebuilt is not None:
                return rebuilt
    return ring_topology(num_survivors)


def compile_degraded_plan(
    topology: Topology,
    survivors: list[int],
    dimension: int,
    segment_elems: int | None = None,
) -> tuple[SyncPlan, Topology]:
    """Recompile the one-bit plan for the survivor set, with provenance.

    Returns ``(plan, degraded_topology)``.  The plan's ``provenance`` notes
    record the original family and the surviving original ranks, so its
    digest distinguishes e.g. "ring of 5" from "ring of 6 that lost rank 2"
    in golden snapshots and reports.
    """
    from repro.allreduce import get_topology

    rebuilt = degraded_topology(topology, len(survivors))
    compiler = get_topology(rebuilt.name).compile_one_bit
    if compiler is None:
        raise ValueError(
            f"degraded topology {rebuilt.name!r} has no one-bit compiler"
        )
    plan = compiler(
        CompileContext(
            num_workers=rebuilt.num_workers,
            dimension=dimension,
            meta=dict(rebuilt.meta),
            segment_elems=segment_elems,
        )
    )
    plan = SyncPlan(
        kind=plan.kind,
        topology=plan.topology,
        num_workers=plan.num_workers,
        dimension=plan.dimension,
        grids=plan.grids,
        steps=plan.steps,
        outputs=plan.outputs,
        provenance=(
            ("degraded_from", topology.name),
            ("survivors", ",".join(str(rank) for rank in survivors)),
        ),
    )
    plan.validate()
    return plan, rebuilt
