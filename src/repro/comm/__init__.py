"""Communication substrate: bit codecs, topologies, simulated cluster, timing.

This package provides everything below the all-reduce layer:

- :mod:`repro.comm.bits` — sign-bit packing and Elias integer codes.
- :mod:`repro.comm.topology` — ring / 2D-torus / star / tree graphs.
- :mod:`repro.comm.cluster` — an in-process simulated cluster whose workers
  exchange messages over explicit links, with byte accounting.
- :mod:`repro.comm.timing` — the alpha-beta analytical cost model used to
  produce the paper's simulated wall-clock results.
"""

from repro.comm.bits import (
    BitVector,
    PackedBits,
    PackedBitsBatch,
    elias_delta_decode,
    elias_delta_encode,
    elias_gamma_decode,
    elias_gamma_encode,
    pack_signs,
    signed_int_bit_width,
    unpack_signs,
)
from repro.comm.cluster import Cluster, Link, Message, Worker
from repro.comm.timing import CostModel, Phase, TimeLine
from repro.comm.topology import (
    Topology,
    fully_connected_topology,
    ring_topology,
    star_topology,
    torus_topology,
    tree_topology,
)

__all__ = [
    "BitVector",
    "Cluster",
    "CostModel",
    "Link",
    "Message",
    "PackedBits",
    "PackedBitsBatch",
    "Phase",
    "TimeLine",
    "Topology",
    "Worker",
    "elias_delta_decode",
    "elias_delta_encode",
    "elias_gamma_decode",
    "elias_gamma_encode",
    "fully_connected_topology",
    "pack_signs",
    "ring_topology",
    "signed_int_bit_width",
    "star_topology",
    "torus_topology",
    "tree_topology",
    "unpack_signs",
]
