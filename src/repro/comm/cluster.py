"""In-process simulated cluster with explicit message passing.

The cluster is the stand-in for the paper's 32-node testbed.  Worker code
calls :meth:`Cluster.send` / :meth:`Cluster.recv` exactly where a PyTorch
implementation would call ``dist.send`` / ``dist.recv``; the cluster

- enforces that messages only travel along topology edges,
- counts every byte per link and in total (Figure 4b's x-axis), and
- groups transfers into synchronous *steps* so the timing model can charge
  the makespan of each step (concurrent transfers overlap, like a real
  all-reduce ring stage).
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm.bits import BitVector, PackedBits
from repro.comm.timing import CostModel, Phase, TimeLine
from repro.comm.topology import Topology
from repro.obs.tracer import NULL_OBS, Observability

__all__ = ["Cluster", "Link", "Message", "SizedPayload", "Worker", "payload_nbytes"]


@dataclass(frozen=True)
class SizedPayload:
    """A payload with an explicitly modelled wire size.

    Used when the in-memory representation is wider than the modelled wire
    format — e.g. an ``int64`` array of partial sign sums that a real
    implementation would pack at ``ceil(log2(m+1)) + 1`` bits per element
    (Section 3.1's bit-length expansion), or an Elias-coded stream.
    """

    value: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


def payload_nbytes(payload: Any) -> int:
    """Wire size in bytes of a message payload.

    numpy arrays are charged their raw buffer size, :class:`BitVector` and
    :class:`PackedBits` their packed wire size ``ceil(length / 8)`` (the
    word-aligned in-memory tail padding is *not* charged), :class:`SizedPayload`
    (and any object exposing an integer ``nbytes``) its declared size, and
    containers the sum of their items.  Scalars are charged eight bytes (a
    double / int64 on the wire).
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (BitVector, PackedBits)):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(value) for value in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    raise TypeError(f"cannot size payload of type {type(payload)!r}")


@dataclass(frozen=True)
class Message:
    """A single point-to-point transfer."""

    src: int
    dst: int
    payload: Any
    nbytes: int
    tag: str = ""


@dataclass
class Link:
    """Per-edge traffic accounting."""

    src: int
    dst: int
    bytes_sent: int = 0
    messages_sent: int = 0


@dataclass
class Worker:
    """A worker handle: a rank plus an inbound mailbox.

    Mailboxes are FIFO per ``(src, tag)`` pair, which is how point-to-point
    ordering behaves in MPI/NCCL-style transports.
    """

    rank: int
    mailbox: dict = field(default_factory=lambda: defaultdict(deque))

    def deliver(self, message: Message) -> None:
        self.mailbox[(message.src, message.tag)].append(message)

    def take(self, src: int, tag: str = "") -> Message:
        """Pop the oldest message from ``(src, tag)``, pruning empty queues.

        Schedules use per-step tags (``"m-rs:0"``, ``"m-seg{start}-rs"``,
        ...), so a queue that is not dropped once drained — or worse, one
        *created* by a failed probe — leaks a dict entry per (src, tag) pair
        forever.  Misses therefore never insert, and the queue is deleted
        the moment its last message is taken, keeping the mailbox bounded by
        the number of in-flight messages.
        """
        key = (src, tag)
        queue = self.mailbox.get(key)
        if not queue:
            if queue is not None:
                del self.mailbox[key]
            raise LookupError(
                f"worker {self.rank} has no pending message from {src} "
                f"with tag {tag!r}"
            )
        message = queue.popleft()
        if not queue:
            del self.mailbox[key]
        return message

    def discard(self, tag: str | None = None, src: int | None = None) -> int:
        """Drop pending messages matching ``tag``/``src`` (None = any).

        The cleanup half of timeout recovery: a round aborted after a lost
        message leaves its delivered-but-never-taken companions queued, and
        those must not survive into the next round's ``take`` calls (or trip
        ``assert_drained``).  Returns the number of messages discarded.
        """
        removed = 0
        for key in list(self.mailbox):
            key_src, key_tag = key
            if tag is not None and key_tag != tag:
                continue
            if src is not None and key_src != src:
                continue
            removed += len(self.mailbox[key])
            del self.mailbox[key]
        return removed

    def pending(self) -> int:
        return sum(len(queue) for queue in self.mailbox.values())


class Cluster:
    """A synchronous simulated cluster over a :class:`Topology`.

    Args:
        topology: the communication graph; sends off-graph raise.
        cost_model: converts bytes/flops into simulated seconds.  When
            ``None`` a default :class:`CostModel` is used.
        strict: when True (default), :meth:`recv` with no matching message
            raises immediately instead of deadlocking silently.
        obs: an :class:`~repro.obs.tracer.Observability` bundle.  Defaults to
            the shared disabled bundle; attach a tracing one to get per-step
            spans and wire metrics out of the same accounting calls.
    """

    def __init__(
        self,
        topology: Topology,
        cost_model: CostModel | None = None,
        strict: bool = True,
        link_speed_factors: dict[tuple[int, int], float] | None = None,
        obs: Observability | None = None,
    ) -> None:
        """See class docstring.

        ``link_speed_factors`` scales individual links' bandwidth (a factor
        of 0.5 halves that link's speed) — the straggler-link model.  A
        synchronous step's makespan is the slowest link's time, so one slow
        link stalls a whole ring stage.
        """
        topology.validate()
        self.topology = topology
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.strict = strict
        self.link_speed_factors = dict(link_speed_factors or {})
        for (src, dst), factor in self.link_speed_factors.items():
            if not topology.has_edge(src, dst):
                raise ValueError(f"speed factor for missing link {src}->{dst}")
            if factor <= 0:
                raise ValueError("link speed factors must be positive")
        self.workers = [Worker(rank) for rank in range(topology.num_workers)]
        self.links: dict[tuple[int, int], Link] = {
            (u, v): Link(u, v) for u, v in topology.graph.edges
        }
        self.timeline = TimeLine()
        self.total_bytes = 0
        self.total_messages = 0
        self._step_bytes: dict[tuple[int, int], int] = {}
        self._step_messages = 0
        self._in_step = False
        self.obs = NULL_OBS
        self._obs_on = False
        self.faults = None
        if obs is not None:
            self.attach_observability(obs)

    def attach_observability(self, obs: Observability) -> None:
        """Attach (or swap) the observability bundle.

        The enabled flag is cached so the per-charge hot path pays a single
        attribute check when instrumentation is off.
        """
        self.obs = obs
        self._obs_on = obs.enabled

    def attach_faults(self, injector) -> None:
        """Attach a :class:`~repro.faults.inject.FaultInjector` (or None).

        With no injector attached every hook below is one ``is None`` check;
        fault-free runs stay bit-identical to a build without this feature.
        """
        self.faults = injector
        if injector is not None:
            injector.bind(self)

    @property
    def num_workers(self) -> int:
        return self.topology.num_workers

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, tag: str = "") -> Message:
        """Send ``payload`` from ``src`` to ``dst`` along a topology edge."""
        if not self.topology.has_edge(src, dst):
            raise ValueError(
                f"no link {src} -> {dst} in {self.topology.name} topology"
            )
        nbytes = payload_nbytes(payload)
        message = Message(src=src, dst=dst, payload=payload, nbytes=nbytes, tag=tag)
        wire_bytes = nbytes
        deliver = True
        if self.faults is not None:
            # Retry-mode losses retransmit: the extra attempts' bytes travel
            # the wire (and count everywhere bytes count); the message still
            # counts once.  Timeout-mode losses are never delivered.
            extra, deliver = self.faults.on_message(tag, src, dst, nbytes)
            wire_bytes += extra
        if deliver:
            self.workers[dst].deliver(message)
        link = self.links[(src, dst)]
        link.bytes_sent += wire_bytes
        link.messages_sent += 1
        self.total_bytes += wire_bytes
        self.total_messages += 1
        if self._in_step:
            key = (src, dst)
            self._step_bytes[key] = self._step_bytes.get(key, 0) + wire_bytes
            self._step_messages += 1
        return message

    def recv(self, dst: int, src: int, tag: str = "") -> Any:
        """Receive the oldest pending message from ``src`` at ``dst``.

        In strict mode a missing message raises; otherwise it yields None.
        """
        try:
            return self.workers[dst].take(src, tag).payload
        except LookupError:
            if self.strict:
                raise
            return None

    def exchange(
        self,
        transfers: Sequence[tuple[int, int, Any]],
        tag: str = "",
    ) -> float:
        """Run one whole synchronous step's transfers in a single call.

        The bulk equivalent of ``begin_step`` + per-message ``send``/``recv``
        + ``end_step`` for lockstep engines whose payloads live stacked in a
        lane matrix: data moves inside the caller's buffers, and this call
        performs the *accounting* for every transfer in one pass — per-link
        and global byte/message counters plus the step's makespan charged to
        the timeline, identical to what the per-message path would record.
        Mailboxes are not involved.

        Each transfer is ``(src, dst, payload)``.  A plain ``int`` payload is
        a pre-computed wire size in bytes (the lane-stacked case, where no
        per-message object ever materializes); anything else is sized via
        :func:`payload_nbytes`.

        Returns the step's elapsed (makespan) seconds, like ``end_step``.
        """
        if self._in_step:
            raise RuntimeError("cannot exchange inside an open step")
        faults = self.faults
        if faults is not None:
            faults.begin_step()
        step_bytes: dict[tuple[int, int], int] = {}
        links = self.links
        total = 0
        count = 0
        for src, dst, payload in transfers:
            key = (src, dst)
            link = links.get(key)
            if link is None:
                raise ValueError(
                    f"no link {src} -> {dst} in {self.topology.name} topology"
                )
            nbytes = payload if type(payload) is int else payload_nbytes(payload)
            if nbytes < 0:
                raise ValueError("nbytes must be non-negative")
            if faults is not None:
                # Same decision the per-message path makes; the lockstep
                # engine has no mailboxes, so only the byte/time consequences
                # apply (terminal timeout mode is a scalar-engine diagnostic).
                extra, _ = faults.on_message(tag, src, dst, nbytes)
                nbytes += extra
            link.bytes_sent += nbytes
            link.messages_sent += 1
            total += nbytes
            count += 1
            step_bytes[key] = step_bytes.get(key, 0) + nbytes
        self.total_bytes += total
        self.total_messages += count
        if not step_bytes:
            return 0.0
        if faults is not None:
            elapsed = faults.finish_step(tag, step_bytes)
        else:
            elapsed = max(
                self._link_transfer_time(link, nbytes)
                for link, nbytes in step_bytes.items()
            )
        self.timeline.add(Phase.COMMUNICATION, elapsed)
        if self._obs_on:
            self._record_step_obs(tag, step_bytes, count, elapsed)
        return elapsed

    # ------------------------------------------------------------------
    # synchronous stepping for the timing model
    # ------------------------------------------------------------------
    def begin_step(self) -> None:
        """Open a synchronous step: all sends until ``end_step`` overlap."""
        if self._in_step:
            raise RuntimeError("step already open")
        self._in_step = True
        self._step_bytes = {}
        self._step_messages = 0
        if self.faults is not None:
            self.faults.begin_step()

    def end_step(self, tag: str = "") -> float:
        """Close the step and charge its makespan to the timeline.

        The step time is the slowest link's ``latency + bytes / bandwidth``;
        all transfers inside one step are concurrent, which models one stage
        of a ring (every worker sends to its successor simultaneously).
        """
        if not self._in_step:
            raise RuntimeError("no step open")
        self._in_step = False
        if not self._step_bytes:
            return 0.0
        if self.faults is not None:
            elapsed = self.faults.finish_step(tag, self._step_bytes)
        else:
            elapsed = max(
                self._link_transfer_time(link, nbytes)
                for link, nbytes in self._step_bytes.items()
            )
        self.timeline.add(Phase.COMMUNICATION, elapsed)
        if self._obs_on:
            self._record_step_obs(
                tag, self._step_bytes, self._step_messages, elapsed
            )
        return elapsed

    def abort_step(self, tag: str = "") -> dict[tuple[int, int], int]:
        """Close an open step without charging its makespan.

        The timeout-recovery half of :meth:`end_step`: when a message is
        lost terminally mid-step, the round is void — charging the partial
        step's makespan (or letting its byte map leak into the *next*
        ``end_step``) would corrupt the timeline.  Wire counters keep the
        attempted bytes (they did travel); only the step state is cleared.
        Returns the aborted step's per-link byte map for diagnostics; pair
        with :meth:`discard_pending` to drop the step's queued messages.
        """
        if not self._in_step:
            raise RuntimeError("no step open")
        self._in_step = False
        aborted = self._step_bytes
        self._step_bytes = {}
        self._step_messages = 0
        if self._obs_on:
            self.obs.tracer.instant(
                "wire.step_aborted", tag=tag, bytes=sum(aborted.values())
            )
            if self.obs.metrics is not None:
                self.obs.metrics.counter("wire.steps_aborted").inc()
        return aborted

    def discard_pending(
        self, tag: str | None = None, src: int | None = None
    ) -> int:
        """Drop queued messages on every worker (see :meth:`Worker.discard`).

        Returns the total number discarded; after an aborted round this puts
        :meth:`assert_drained` back into force.
        """
        dropped = sum(
            worker.discard(tag=tag, src=src) for worker in self.workers
        )
        if dropped and self._obs_on and self.obs.metrics is not None:
            self.obs.metrics.counter("wire.discarded_messages").inc(dropped)
        return dropped

    def reconfigure(self, topology: Topology, drop_pending: bool = False) -> None:
        """Swap the topology in place — crash recovery's cluster surgery.

        Fresh workers and per-link counters are installed for the new graph;
        cumulative totals (``total_bytes``, ``total_messages``, the
        timeline) survive, so a run's cost accounting spans the recovery.
        Pending mailbox messages must be drained first or explicitly dropped
        with ``drop_pending=True`` (a crashed round's survivors hold
        messages that will never be taken).
        """
        if self._in_step:
            raise RuntimeError("cannot reconfigure inside an open step")
        pending = sum(worker.pending() for worker in self.workers)
        if pending and not drop_pending:
            raise RuntimeError(
                f"{pending} undelivered messages; drain them or pass "
                "drop_pending=True"
            )
        topology.validate()
        self.topology = topology
        self.workers = [Worker(rank) for rank in range(topology.num_workers)]
        self.links = {(u, v): Link(u, v) for u, v in topology.graph.edges}
        self.link_speed_factors = {
            key: factor
            for key, factor in self.link_speed_factors.items()
            if topology.has_edge(*key)
        }
        self._step_bytes = {}
        self._step_messages = 0

    def _record_step_obs(
        self,
        tag: str,
        step_bytes: dict[tuple[int, int], int],
        messages: int,
        elapsed: float,
    ) -> None:
        """Mirror one synchronous step into the tracer and metrics.

        Both the per-message (``begin_step``/``end_step``) and the bulk
        (:meth:`exchange`) paths funnel through here with identical
        ``step_bytes`` dicts, so the scalar and batched engines emit
        identical wire metrics by construction.
        """
        obs = self.obs
        total = sum(step_bytes.values())
        obs.tracer.record_step(
            "hop",
            Phase.COMMUNICATION,
            elapsed,
            tag=tag,
            bytes=total,
            messages=messages,
            links=len(step_bytes),
        )
        metrics = obs.metrics
        if metrics is None:
            return
        for (src, dst), nbytes in step_bytes.items():
            metrics.counter("wire.link_bytes", link=f"{src}->{dst}").inc(nbytes)
        metrics.counter("wire.step_bytes").inc(total)
        metrics.counter("wire.step_messages").inc(messages)
        metrics.counter("wire.steps").inc()
        metrics.histogram("wire.step_makespan_s").observe(elapsed)
        metrics.gauge("cluster.mailbox_depth").set(
            sum(worker.pending() for worker in self.workers)
        )

    def _link_transfer_time(self, link: tuple[int, int], nbytes: int) -> float:
        factor = self.link_speed_factors.get(link, 1.0)
        model = self.cost_model
        return model.latency_s + nbytes / (model.bandwidth_Bps * factor)

    def charge(self, phase: Phase, seconds: float) -> None:
        """Charge non-communication time (computation / compression)."""
        self.timeline.add(phase, seconds)
        if self._obs_on:
            self.obs.tracer.advance(phase, seconds)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Raise if any worker still has undelivered messages (leak check)."""
        leftover = {w.rank: w.pending() for w in self.workers if w.pending()}
        if leftover:
            raise AssertionError(f"undrained mailboxes: {leftover}")

    def reset_accounting(self) -> None:
        """Zero traffic counters and the timeline, keeping mailboxes intact.

        Refuses to run inside an open step: resetting mid-step would charge
        the step's makespan from a half-cleared byte map, silently corrupting
        the timeline.  Close the step (or never open one) first.
        """
        if self._in_step:
            raise RuntimeError("cannot reset accounting inside an open step")
        for link in self.links.values():
            link.bytes_sent = 0
            link.messages_sent = 0
        self.total_bytes = 0
        self.total_messages = 0
        self._step_bytes = {}
        self._step_messages = 0
        self.timeline = TimeLine()
