"""Network topologies for multi-hop all-reduce.

A :class:`Topology` wraps a directed :class:`networkx.DiGraph` whose nodes are
worker ranks ``0..M-1``.  All-reduce algorithms query successor/predecessor
relations rather than hard-coding ring arithmetic, so the same reduce code
runs over a plain ring, each ring of a 2D torus, or a star.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = [
    "Topology",
    "fully_connected_topology",
    "halving_doubling_topology",
    "ring_topology",
    "star_topology",
    "torus_topology",
    "tree_topology",
]


@dataclass
class Topology:
    """A directed communication graph over worker ranks.

    Attributes:
        graph: the underlying directed graph; an edge ``(u, v)`` means worker
            ``u`` may send directly to worker ``v``.
        name: human-readable topology family (``"ring"``, ``"torus"``, ...).
        meta: topology-specific layout data (e.g. torus ``rows``/``cols``).
    """

    graph: nx.DiGraph
    name: str
    meta: dict = field(default_factory=dict)

    @property
    def num_workers(self) -> int:
        return self.graph.number_of_nodes()

    def neighbors_out(self, rank: int) -> list[int]:
        """Ranks this worker may send to, sorted for determinism."""
        return sorted(self.graph.successors(rank))

    def neighbors_in(self, rank: int) -> list[int]:
        """Ranks this worker may receive from, sorted for determinism."""
        return sorted(self.graph.predecessors(rank))

    def successor(self, rank: int) -> int:
        """The unique out-neighbor; only valid for ring-like topologies."""
        out = self.neighbors_out(rank)
        if len(out) != 1:
            raise ValueError(
                f"rank {rank} has {len(out)} out-neighbors; "
                "successor() requires exactly one"
            )
        return out[0]

    def predecessor(self, rank: int) -> int:
        """The unique in-neighbor; only valid for ring-like topologies."""
        incoming = self.neighbors_in(rank)
        if len(incoming) != 1:
            raise ValueError(
                f"rank {rank} has {len(incoming)} in-neighbors; "
                "predecessor() requires exactly one"
            )
        return incoming[0]

    def has_edge(self, src: int, dst: int) -> bool:
        return self.graph.has_edge(src, dst)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        nodes = sorted(self.graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError("topology nodes must be contiguous ranks 0..M-1")
        if len(nodes) < 1:
            raise ValueError("topology must contain at least one worker")
        if not nx.is_weakly_connected(self.graph) and len(nodes) > 1:
            raise ValueError("topology must be connected")


def ring_topology(num_workers: int, bidirectional: bool = False) -> Topology:
    """Ring: rank ``i`` sends to ``(i + 1) % M``.

    ``bidirectional=True`` adds the reverse links too (needed by gossip,
    harmless for the all-reduce schedules, which only use forward links).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_workers))
    for rank in range(num_workers):
        if num_workers > 1:
            graph.add_edge(rank, (rank + 1) % num_workers)
            if bidirectional:
                graph.add_edge((rank + 1) % num_workers, rank)
    return Topology(graph=graph, name="ring", meta={"bidirectional": bidirectional})


def torus_topology(rows: int, cols: int) -> Topology:
    """2D torus: each rank joins a horizontal ring and a vertical ring.

    Rank layout is row-major: rank ``r * cols + c`` sits at grid cell
    ``(r, c)``.  Edges run rightwards along rows and downwards along columns
    (with wraparound), matching the two-phase TAR schedule of Mikami et al.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    graph = nx.DiGraph()
    num = rows * cols
    graph.add_nodes_from(range(num))
    for r in range(rows):
        for c in range(cols):
            rank = r * cols + c
            if cols > 1:
                graph.add_edge(rank, r * cols + (c + 1) % cols, axis="row")
            if rows > 1:
                graph.add_edge(rank, ((r + 1) % rows) * cols + c, axis="col")
    return Topology(graph=graph, name="torus", meta={"rows": rows, "cols": cols})


def star_topology(num_workers: int, server: int = 0) -> Topology:
    """Star used by the parameter-server baseline: all leaves <-> server."""
    if num_workers < 2:
        raise ValueError("star topology needs at least a server and a worker")
    if not 0 <= server < num_workers:
        raise ValueError("server rank out of range")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_workers))
    for rank in range(num_workers):
        if rank != server:
            graph.add_edge(rank, server, role="up")
            graph.add_edge(server, rank, role="down")
    return Topology(graph=graph, name="star", meta={"server": server})


def tree_topology(num_workers: int, arity: int = 2) -> Topology:
    """Rooted ``arity``-ary tree with bidirectional parent/child links."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if arity < 1:
        raise ValueError("arity must be >= 1")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_workers))
    for rank in range(1, num_workers):
        parent = (rank - 1) // arity
        graph.add_edge(rank, parent, role="up")
        graph.add_edge(parent, rank, role="down")
    return Topology(graph=graph, name="tree", meta={"arity": arity, "root": 0})


def halving_doubling_topology(num_workers: int) -> Topology:
    """Hypercube links for recursive halving-doubling: ``r <-> r ^ 2^s``.

    Requires a power-of-two worker count; ``meta["order"]`` records the
    hypercube dimension ``log2(M)``.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if num_workers & (num_workers - 1):
        raise ValueError(
            "halving-doubling requires a power-of-two worker count, "
            f"got {num_workers}"
        )
    order = num_workers.bit_length() - 1
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_workers))
    for rank in range(num_workers):
        for step in range(order):
            graph.add_edge(rank, rank ^ (1 << step), bit=step)
    return Topology(
        graph=graph, name="halving_doubling", meta={"order": order}
    )


def fully_connected_topology(num_workers: int) -> Topology:
    """Complete digraph; used by gossip and by PS-style direct exchange."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_workers))
    for src in range(num_workers):
        for dst in range(num_workers):
            if src != dst:
                graph.add_edge(src, dst)
    return Topology(graph=graph, name="full")
