"""Bit-level codecs used on the simulated wire.

Three codec families live here:

1. **Sign-bit packing** — a sign vector over ``{-1, +1}`` (or the bit
   convention ``{0, 1}`` with ``1 == +1``) is stored eight elements per byte.
   This is the one-bit representation Marsit puts on the wire every hop.
2. **Elias gamma/delta codes** — universal codes for positive integers.  The
   paper's baselines compact multi-bit sign sums with Elias coding (Section 5,
   "Baselines"), so SSDM-under-MAR messages can be entropy-coded here.
3. **Width accounting** — :func:`signed_int_bit_width` computes the fixed
   number of bits needed for a partial sign sum after ``m`` hops, which models
   the bit-length expansion of Section 3.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BitVector",
    "elias_delta_decode",
    "elias_delta_encode",
    "elias_gamma_decode",
    "elias_gamma_encode",
    "pack_signs",
    "signed_int_bit_width",
    "unpack_signs",
    "zigzag_decode",
    "zigzag_encode",
]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to positive ones: 0,-1,1,-2,2 -> 1,2,3,4,5.

    Shifted by one relative to protobuf zigzag so the output is strictly
    positive, as Elias codes require.
    """
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values + 1, -2 * values)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise ValueError("zigzag codes are strictly positive")
    return np.where(values % 2 == 1, (values - 1) // 2, -(values // 2))


@dataclass(frozen=True)
class BitVector:
    """An immutable packed vector of bits.

    ``data`` holds ``ceil(length / 8)`` bytes; bit ``j`` of the logical vector
    is bit ``j % 8`` (LSB-first) of byte ``j // 8``.  The class exists so that
    all-reduce code can move *exactly* the number of bytes a real
    implementation would, and so tests can round-trip through the packed
    representation.
    """

    data: bytes
    length: int

    def __post_init__(self) -> None:
        expected = (self.length + 7) // 8
        if len(self.data) != expected:
            raise ValueError(
                f"BitVector of length {self.length} needs {expected} bytes, "
                f"got {len(self.data)}"
            )

    @property
    def nbytes(self) -> int:
        """Number of bytes this vector occupies on the wire."""
        return len(self.data)

    def to_bits(self) -> np.ndarray:
        """Return the logical bits as a ``uint8`` array of 0/1 values."""
        raw = np.frombuffer(self.data, dtype=np.uint8)
        bits = np.unpackbits(raw, bitorder="little")
        return bits[: self.length].copy()

    def to_signs(self) -> np.ndarray:
        """Return the vector as ``float64`` signs: bit 1 -> +1, bit 0 -> -1."""
        return self.to_bits().astype(np.float64) * 2.0 - 1.0

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "BitVector":
        """Pack an array of 0/1 values into a :class:`BitVector`."""
        bits = np.asarray(bits)
        if bits.ndim != 1:
            raise ValueError("from_bits expects a 1-D array")
        if bits.size and not np.isin(bits, (0, 1)).all():
            raise ValueError("from_bits expects only 0/1 values")
        packed = np.packbits(bits.astype(np.uint8), bitorder="little")
        return cls(data=packed.tobytes(), length=int(bits.size))

    @classmethod
    def from_signs(cls, signs: np.ndarray) -> "BitVector":
        """Pack a ``{-1, +1}`` vector; zero is treated as +1 (sign of 0)."""
        signs = np.asarray(signs)
        return cls.from_bits((signs >= 0).astype(np.uint8))


def pack_signs(values: np.ndarray) -> BitVector:
    """Compress ``values`` to one bit per element keeping only the sign.

    Zeros map to +1, matching the convention ``sgn(0) = +1`` used throughout
    the library so that every transmitted bit decodes to a nonzero sign.
    """
    return BitVector.from_signs(np.asarray(values, dtype=np.float64))


def unpack_signs(vector: BitVector) -> np.ndarray:
    """Inverse of :func:`pack_signs` up to magnitude: returns ``{-1, +1}``."""
    return vector.to_signs()


def signed_int_bit_width(max_abs_value: int) -> int:
    """Bits for a fixed-width signed encoding of ``[-v, +v]``.

    Models Section 3.1's bit-length expansion: a sum of ``m`` signs lies in
    ``{-m, ..., +m}`` and needs ``ceil(log2(m + 1)) + 1`` bits (magnitude plus
    a sign bit).  ``m = 1`` correctly yields 1 bit because the values are then
    only ``{-1, +1}`` and the sign bit alone is enough.
    """
    if max_abs_value < 1:
        raise ValueError("max_abs_value must be >= 1")
    if max_abs_value == 1:
        return 1
    return math.ceil(math.log2(max_abs_value + 1)) + 1


class _BitWriter:
    """Accumulates bits MSB-first into a byte string."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, bit: int) -> None:
        self._bits.append(bit & 1)

    def write_int(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self.write((value >> shift) & 1)

    def getvalue(self) -> bytes:
        bits = np.array(self._bits, dtype=np.uint8)
        return np.packbits(bits, bitorder="big").tobytes()

    def __len__(self) -> int:
        return len(self._bits)


class _BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        raw = np.frombuffer(data, dtype=np.uint8)
        self._bits = np.unpackbits(raw, bitorder="big")
        self._pos = 0

    def read(self) -> int:
        if self._pos >= self._bits.size:
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_int(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read()
        return value

    @property
    def remaining(self) -> int:
        return int(self._bits.size - self._pos)


def _elias_gamma_write(writer: _BitWriter, value: int) -> None:
    if value < 1:
        raise ValueError("Elias gamma encodes positive integers only")
    n = value.bit_length() - 1
    for _ in range(n):
        writer.write(0)
    writer.write_int(value, n + 1)


def _elias_gamma_read(reader: _BitReader) -> int:
    n = 0
    while reader.read() == 0:
        n += 1
    value = 1
    for _ in range(n):
        value = (value << 1) | reader.read()
    return value


def elias_gamma_encode(values: np.ndarray | list[int]) -> tuple[bytes, int]:
    """Elias-gamma encode positive integers.

    Returns ``(payload, bit_count)``; ``bit_count`` is the exact number of
    meaningful bits (the payload is padded to a byte boundary).
    """
    writer = _BitWriter()
    for value in np.asarray(values, dtype=np.int64):
        _elias_gamma_write(writer, int(value))
    return writer.getvalue(), len(writer)


def elias_gamma_decode(payload: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Elias-gamma integers from ``payload``."""
    reader = _BitReader(payload)
    return np.array([_elias_gamma_read(reader) for _ in range(count)], dtype=np.int64)


def elias_delta_encode(values: np.ndarray | list[int]) -> tuple[bytes, int]:
    """Elias-delta encode positive integers (gamma-coded length prefix)."""
    writer = _BitWriter()
    for raw in np.asarray(values, dtype=np.int64):
        value = int(raw)
        if value < 1:
            raise ValueError("Elias delta encodes positive integers only")
        n = value.bit_length()
        _elias_gamma_write(writer, n)
        writer.write_int(value & ((1 << (n - 1)) - 1), n - 1)
    return writer.getvalue(), len(writer)


def elias_delta_decode(payload: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Elias-delta integers from ``payload``."""
    reader = _BitReader(payload)
    out = []
    for _ in range(count):
        n = _elias_gamma_read(reader)
        value = 1
        for _ in range(n - 1):
            value = (value << 1) | reader.read()
        out.append(value)
    return np.array(out, dtype=np.int64)
