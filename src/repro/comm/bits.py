"""Bit-level codecs used on the simulated wire.

Four codec families live here:

1. **Sign-bit packing** — a sign vector over ``{-1, +1}`` (or the bit
   convention ``{0, 1}`` with ``1 == +1``) is stored eight elements per byte.
   This is the one-bit representation Marsit puts on the wire every hop.
   :class:`BitVector` is the byte-level reference object;
   :class:`PackedBits` is the word-level fast path (64 elements per machine
   op) that the hot sign pipeline carries hop-to-hop.
2. **Elias gamma/delta codes** — universal codes for positive integers.  The
   paper's baselines compact multi-bit sign sums with Elias coding (Section 5,
   "Baselines"), so SSDM-under-MAR messages can be entropy-coded here.  The
   public codecs are fully vectorized (prefix-sum bit placement); the
   original per-bit implementations survive as ``*_reference`` for property
   tests and benchmarks.
3. **Width accounting** — :func:`signed_int_bit_width` computes the fixed
   number of bits needed for a partial sign sum after ``m`` hops, which models
   the bit-length expansion of Section 3.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

try:  # pragma: no cover - exercised indirectly via the decoders
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import breadth_first_order as _breadth_first_order
except ImportError:  # pragma: no cover
    _csr_matrix = None
    _breadth_first_order = None

__all__ = [
    "BitVector",
    "PackedBits",
    "PackedBitsBatch",
    "elias_delta_decode",
    "elias_delta_decode_reference",
    "elias_delta_encode",
    "elias_delta_encode_reference",
    "elias_gamma_decode",
    "elias_gamma_decode_reference",
    "elias_gamma_encode",
    "elias_gamma_encode_reference",
    "pack_signs",
    "signed_int_bit_width",
    "unpack_signs",
    "zigzag_decode",
    "zigzag_encode",
]

#: Explicit little-endian words so the byte view is the bit-plane layout on
#: any host; on little-endian machines this is the native uint64.
_WORD_DTYPE = np.dtype("<u8")
_WORD_BITS = 64


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to positive ones: 0,-1,1,-2,2 -> 1,2,3,4,5.

    Shifted by one relative to protobuf zigzag so the output is strictly
    positive, as Elias codes require.
    """
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values + 1, -2 * values)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise ValueError("zigzag codes are strictly positive")
    return np.where(values % 2 == 1, (values - 1) // 2, -(values // 2))


@dataclass(frozen=True)
class BitVector:
    """An immutable packed vector of bits.

    ``data`` holds ``ceil(length / 8)`` bytes; bit ``j`` of the logical vector
    is bit ``j % 8`` (LSB-first) of byte ``j // 8``.  The class exists so that
    all-reduce code can move *exactly* the number of bytes a real
    implementation would, and so tests can round-trip through the packed
    representation.
    """

    data: bytes
    length: int

    def __post_init__(self) -> None:
        expected = (self.length + 7) // 8
        if len(self.data) != expected:
            raise ValueError(
                f"BitVector of length {self.length} needs {expected} bytes, "
                f"got {len(self.data)}"
            )

    @property
    def nbytes(self) -> int:
        """Number of bytes this vector occupies on the wire."""
        return len(self.data)

    def to_bits(self) -> np.ndarray:
        """Return the logical bits as a ``uint8`` array of 0/1 values."""
        raw = np.frombuffer(self.data, dtype=np.uint8)
        bits = np.unpackbits(raw, bitorder="little")
        return bits[: self.length].copy()

    def to_signs(self) -> np.ndarray:
        """Return the vector as ``float64`` signs: bit 1 -> +1, bit 0 -> -1."""
        return self.to_bits().astype(np.float64) * 2.0 - 1.0

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "BitVector":
        """Pack an array of 0/1 values into a :class:`BitVector`.

        ``uint8``/``bool`` inputs are trusted bit vectors (the internal hop
        convention) and skip revalidation; other dtypes are checked.
        """
        bits = np.asarray(bits)
        if bits.ndim != 1:
            raise ValueError("from_bits expects a 1-D array")
        if bits.size and not _is_trusted_bits(bits) and not _binary_valued(bits):
            raise ValueError("from_bits expects only 0/1 values")
        packed = np.packbits(bits.astype(np.uint8, copy=False), bitorder="little")
        return cls(data=packed.tobytes(), length=int(bits.size))

    @classmethod
    def from_signs(cls, signs: np.ndarray) -> "BitVector":
        """Pack a ``{-1, +1}`` vector; zero is treated as +1 (sign of 0)."""
        signs = np.asarray(signs)
        return cls.from_bits((signs >= 0).astype(np.uint8))


def pack_signs(values: np.ndarray) -> BitVector:
    """Compress ``values`` to one bit per element keeping only the sign.

    Zeros map to +1, matching the convention ``sgn(0) = +1`` used throughout
    the library so that every transmitted bit decodes to a nonzero sign.
    """
    return BitVector.from_signs(np.asarray(values, dtype=np.float64))


def unpack_signs(vector: BitVector) -> np.ndarray:
    """Inverse of :func:`pack_signs` up to magnitude: returns ``{-1, +1}``."""
    return vector.to_signs()


def _is_trusted_bits(array: np.ndarray) -> bool:
    """``uint8``/``bool`` arrays are internal bit vectors: already validated."""
    return array.dtype == np.uint8 or array.dtype == np.bool_


def _binary_valued(array: np.ndarray) -> bool:
    """~3x cheaper than ``np.isin(array, (0, 1)).all()``."""
    return bool(((array == 0) | (array == 1)).all())


if hasattr(np, "bitwise_count"):

    def _popcount_words(words: np.ndarray) -> int:
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_TABLE = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.int64
    )

    def _popcount_words(words: np.ndarray) -> int:
        return int(_POPCOUNT_TABLE[words.view(np.uint8)].sum())


@dataclass(frozen=True, eq=False)
class PackedBits:
    """A bit vector stored as contiguous little-endian ``uint64`` words.

    Logical bit ``j`` is bit ``j % 64`` of word ``j // 64`` — the same
    little-endian bit-plane layout as :class:`BitVector`, widened from bytes
    to machine words so the Marsit ``⊙`` merge, the Bernoulli transient and
    the consensus checks all run 64 elements per numpy op instead of one.

    Invariants: ``words`` holds exactly ``ceil(length / 64)`` words and every
    padding bit past ``length`` is zero, so AND/OR/XOR/popcount need no tail
    masking.  Instances are immutable; all operators return new objects.

    ``nbytes`` is the *wire* size (``ceil(length / 8)`` — identical to the
    byte-packed :class:`BitVector`), not the in-memory word storage, so
    traffic accounting is unchanged by the fast path.
    """

    words: np.ndarray = field(repr=False)
    length: int

    def __post_init__(self) -> None:
        words = np.asarray(self.words, dtype=_WORD_DTYPE)
        if words.ndim != 1:
            raise ValueError("PackedBits words must be 1-D")
        expected = (self.length + _WORD_BITS - 1) // _WORD_BITS
        if words.size != expected:
            raise ValueError(
                f"PackedBits of length {self.length} needs {expected} words, "
                f"got {words.size}"
            )
        tail = self.length % _WORD_BITS
        if words.size and tail:
            mask = _WORD_DTYPE.type((1 << tail) - 1)
            if int(words[-1] & ~mask):
                raise ValueError("PackedBits padding bits must be zero")
        object.__setattr__(self, "words", words)

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "PackedBits":
        """Pack an array of 0/1 values (this is the *only* packing step).

        Like :meth:`BitVector.from_bits`, ``uint8``/``bool`` inputs are
        trusted internal bit vectors and skip the value check.
        """
        bits = np.asarray(bits)
        if bits.ndim != 1:
            raise ValueError("from_bits expects a 1-D array")
        if bits.size and not _is_trusted_bits(bits) and not _binary_valued(bits):
            raise ValueError("from_bits expects only 0/1 values")
        length = int(bits.size)
        packed = np.packbits(bits.astype(np.uint8, copy=False), bitorder="little")
        return cls(words=_bytes_to_words(packed, length), length=length)

    @classmethod
    def from_signs(cls, signs: np.ndarray) -> "PackedBits":
        """Pack a float/sign vector; ``>= 0`` maps to bit 1 (``sgn(0)=+1``)."""
        return cls.from_bits(np.asarray(signs) >= 0)

    @classmethod
    def from_bitvector(cls, vector: BitVector) -> "PackedBits":
        """Reinterpret a byte-packed :class:`BitVector` as words (no unpack)."""
        raw = np.frombuffer(vector.data, dtype=np.uint8).copy()
        tail = vector.length % 8
        if raw.size and tail:
            raw[-1] &= (1 << tail) - 1
        return cls(words=_bytes_to_words(raw, vector.length), length=vector.length)

    def to_bitvector(self) -> BitVector:
        """Byte-packed view for the final decode; no bit-level work."""
        data = self._byte_view()[: self.nbytes].tobytes()
        return BitVector(data=data, length=self.length)

    def to_bits(self) -> np.ndarray:
        """Unpack to a 0/1 ``uint8`` array — the final decode step."""
        raw = self._byte_view()[: self.nbytes]
        return np.unpackbits(raw, bitorder="little")[: self.length].copy()

    def to_signs(self) -> np.ndarray:
        """Unpack to ``{-1, +1}`` floats — the final decode step."""
        return self.to_bits().astype(np.float64) * 2.0 - 1.0

    def _byte_view(self) -> np.ndarray:
        """The words reinterpreted as the little-endian byte stream."""
        return self.words.view(np.uint8)

    # ------------------------------------------------------------------
    # word-level ops (the fast path)
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Wire bytes: ``ceil(length / 8)``, same as :class:`BitVector`."""
        return (self.length + 7) // 8

    def __len__(self) -> int:
        return self.length

    def _check_same_length(self, other: "PackedBits") -> None:
        if not isinstance(other, PackedBits):
            raise TypeError(f"expected PackedBits, got {type(other)!r}")
        if other.length != self.length:
            raise ValueError(
                f"length mismatch: {self.length} vs {other.length}"
            )

    def __and__(self, other: "PackedBits") -> "PackedBits":
        self._check_same_length(other)
        return PackedBits(words=self.words & other.words, length=self.length)

    def __or__(self, other: "PackedBits") -> "PackedBits":
        self._check_same_length(other)
        return PackedBits(words=self.words | other.words, length=self.length)

    def __xor__(self, other: "PackedBits") -> "PackedBits":
        self._check_same_length(other)
        return PackedBits(words=self.words ^ other.words, length=self.length)

    def invert(self) -> "PackedBits":
        """Bitwise NOT over the logical bits (padding stays zero)."""
        out = np.bitwise_not(self.words)
        tail = self.length % _WORD_BITS
        if out.size and tail:
            out[-1] &= _WORD_DTYPE.type((1 << tail) - 1)
        return PackedBits(words=out, length=self.length)

    def popcount(self) -> int:
        """Number of set bits (word-parallel)."""
        return _popcount_words(self.words)

    def equals(self, other: "PackedBits") -> bool:
        """Exact equality by word comparison (the consensus check)."""
        return (
            isinstance(other, PackedBits)
            and other.length == self.length
            and bool(np.array_equal(self.words, other.words))
        )

    # ------------------------------------------------------------------
    # slicing / concatenation (byte-shift arithmetic, no unpacking)
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "PackedBits":
        """The sub-vector ``[start, stop)``, realigned by byte shifts."""
        if not 0 <= start <= stop <= self.length:
            raise ValueError(
                f"invalid slice [{start}, {stop}) of length {self.length}"
            )
        nbits = stop - start
        if nbits == 0:
            return PackedBits(
                words=np.zeros(0, dtype=_WORD_DTYPE), length=0
            )
        raw = self._byte_view()
        first, shift = divmod(start, 8)
        need = (shift + nbits + 7) // 8
        seg = raw[first : first + need].copy()
        if shift:
            out = seg >> shift
            out[:-1] |= seg[1:] << (8 - shift)
        else:
            out = seg
        out = out[: (nbits + 7) // 8]
        tail = nbits % 8
        if tail:
            out[-1] &= (1 << tail) - 1
        return PackedBits(words=_bytes_to_words(out, nbits), length=nbits)

    def split(self, num_parts: int) -> list["PackedBits"]:
        """Split into ``num_parts`` pieces with ``np.array_split`` semantics."""
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        base, extra = divmod(self.length, num_parts)
        parts: list[PackedBits] = []
        start = 0
        for index in range(num_parts):
            size = base + (1 if index < extra else 0)
            parts.append(self.slice(start, start + size))
            start += size
        return parts

    @classmethod
    def concat(cls, parts: "list[PackedBits]") -> "PackedBits":
        """Concatenate packed vectors by OR-ing byte-shifted planes."""
        total = sum(part.length for part in parts)
        out = np.zeros(
            ((total + _WORD_BITS - 1) // _WORD_BITS) * 8, dtype=np.uint8
        )
        offset = 0
        for part in parts:
            if not isinstance(part, PackedBits):
                raise TypeError(f"expected PackedBits, got {type(part)!r}")
            if part.length == 0:
                continue
            data = part._byte_view()[: part.nbytes]
            byte0, shift = divmod(offset, 8)
            if shift == 0:
                out[byte0 : byte0 + data.size] |= data
            else:
                out[byte0 : byte0 + data.size] |= data << shift
                high = data >> (8 - shift)
                stop = min(byte0 + 1 + data.size, out.size)
                out[byte0 + 1 : stop] |= high[: stop - byte0 - 1]
            offset += part.length
        return cls(words=_bytes_to_words(out, total), length=total)


@dataclass(frozen=True, eq=False)
class PackedBitsBatch:
    """Lane-stacked bit vectors: one ``(lanes, width)`` ``uint64`` matrix.

    Row ``i`` holds a bit vector of ``lengths[i]`` logical bits in the same
    little-endian bit-plane layout as :class:`PackedBits`, zero-padded to a
    shared word ``width``, so a whole synchronous step of the lockstep
    simulation — every (cycle, position) lane at once — runs as *one* numpy
    operation instead of one Python call per lane.

    Invariants mirror :class:`PackedBits` per row: every padding bit past
    ``lengths[i]`` is zero, so AND/OR/XOR across the full matrix need no
    masking and a row prefix view *is* a valid :class:`PackedBits`.
    :meth:`row` returns exactly that zero-copy view.
    """

    words: np.ndarray = field(repr=False)
    lengths: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        words = np.asarray(self.words, dtype=_WORD_DTYPE)
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if words.ndim != 2:
            raise ValueError("PackedBitsBatch words must be 2-D")
        if lengths.ndim != 1 or lengths.size != words.shape[0]:
            raise ValueError("lengths must hold one entry per lane")
        if lengths.size and lengths.min() < 0:
            raise ValueError("lengths must be non-negative")
        needed = int(lengths.max()) if lengths.size else 0
        if words.shape[1] < (needed + _WORD_BITS - 1) // _WORD_BITS:
            raise ValueError(
                f"width {words.shape[1]} words cannot hold "
                f"{needed}-bit lanes"
            )
        if words.size:
            # Per-row padding must be zero: whole words past each row's
            # data, plus the tail bits of each row's last partial word.
            col = np.arange(words.shape[1], dtype=np.int64)
            full = (lengths + _WORD_BITS - 1) // _WORD_BITS
            if words[col[None, :] >= full[:, None]].any():
                raise ValueError("PackedBitsBatch padding words must be zero")
            tail = lengths % _WORD_BITS
            ragged = np.flatnonzero(tail)
            if ragged.size:
                last = words[ragged, lengths[ragged] // _WORD_BITS]
                mask = (_WORD_DTYPE.type(1) << tail[ragged].astype(np.uint64)) - 1
                if (last & ~mask).any():
                    raise ValueError("PackedBitsBatch padding bits must be zero")
        object.__setattr__(self, "words", words)
        object.__setattr__(self, "lengths", lengths)

    @classmethod
    def _trusted(cls, words: np.ndarray, lengths: np.ndarray) -> "PackedBitsBatch":
        """Wrap arrays whose invariants the caller guarantees (hot path)."""
        batch = object.__new__(cls)
        object.__setattr__(batch, "words", words)
        object.__setattr__(batch, "lengths", lengths)
        return batch

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_bit_matrix(
        cls,
        bits: np.ndarray,
        lengths: np.ndarray | None = None,
        width: int | None = None,
    ) -> "PackedBitsBatch":
        """Pack a ``(lanes, n)`` 0/1 matrix, one lane per row.

        ``lengths`` (default: all ``n``) marks each lane's valid prefix;
        columns at or past a lane's length are zeroed before packing, so
        ragged lanes share one rectangular buffer.  ``width`` pads the word
        matrix wider than ``n`` needs — used to match an existing batch's
        buffer so word-level operators line up.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2:
            raise ValueError("from_bit_matrix expects a 2-D array")
        if bits.size and not _is_trusted_bits(bits) and not _binary_valued(bits):
            raise ValueError("from_bit_matrix expects only 0/1 values")
        lanes, n = bits.shape
        if lengths is None:
            lengths = np.full(lanes, n, dtype=np.int64)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (lanes,):
                raise ValueError("lengths must hold one entry per lane")
            if lengths.size and (lengths.min() < 0 or lengths.max() > n):
                raise ValueError("lengths must lie in [0, columns]")
            bits = bits & (np.arange(n) < lengths[:, None])
        min_width = (n + _WORD_BITS - 1) // _WORD_BITS
        if width is None:
            width = min_width
        elif width < min_width:
            raise ValueError(f"width {width} cannot hold {n}-bit lanes")
        return cls._trusted(_pack_bit_rows(bits, width), lengths)

    @classmethod
    def from_sign_matrix(cls, signs: np.ndarray) -> "PackedBitsBatch":
        """Pack a ``(lanes, n)`` sign matrix; ``>= 0`` maps to bit 1."""
        return cls.from_bit_matrix(np.asarray(signs) >= 0)

    @classmethod
    def from_rows(
        cls, parts: Sequence[PackedBits], width: int | None = None
    ) -> "PackedBitsBatch":
        """Stack :class:`PackedBits` rows into one shared-width buffer."""
        lengths = np.array([part.length for part in parts], dtype=np.int64)
        needed = int(lengths.max()) if lengths.size else 0
        min_width = (needed + _WORD_BITS - 1) // _WORD_BITS
        if width is None:
            width = min_width
        elif width < min_width:
            raise ValueError(f"width {width} cannot hold {needed}-bit lanes")
        words = np.zeros((len(parts), width), dtype=_WORD_DTYPE)
        for i, part in enumerate(parts):
            if not isinstance(part, PackedBits):
                raise TypeError(f"expected PackedBits, got {type(part)!r}")
            words[i, : part.words.size] = part.words
        return cls._trusted(words, lengths)

    def row(self, index: int) -> PackedBits:
        """Lane ``index`` as a zero-copy :class:`PackedBits` view."""
        length = int(self.lengths[index])
        num_words = (length + _WORD_BITS - 1) // _WORD_BITS
        return PackedBits(words=self.words[index, :num_words], length=length)

    def rows(self) -> list[PackedBits]:
        """All lanes as zero-copy :class:`PackedBits` views."""
        return [self.row(index) for index in range(self.num_lanes)]

    # ------------------------------------------------------------------
    # batched word-level ops
    # ------------------------------------------------------------------
    @property
    def num_lanes(self) -> int:
        return self.words.shape[0]

    @property
    def width(self) -> int:
        """Shared row width in ``uint64`` words."""
        return self.words.shape[1]

    @property
    def nbytes_per_lane(self) -> np.ndarray:
        """Wire bytes per lane: ``ceil(length / 8)``, as for PackedBits."""
        return (self.lengths + 7) // 8

    def __len__(self) -> int:
        return self.num_lanes

    def _check_compatible(self, other: "PackedBitsBatch") -> None:
        if not isinstance(other, PackedBitsBatch):
            raise TypeError(f"expected PackedBitsBatch, got {type(other)!r}")
        if other.words.shape != self.words.shape or not np.array_equal(
            other.lengths, self.lengths
        ):
            raise ValueError("batch shape/length mismatch")

    def __and__(self, other: "PackedBitsBatch") -> "PackedBitsBatch":
        self._check_compatible(other)
        return PackedBitsBatch._trusted(self.words & other.words, self.lengths)

    def __or__(self, other: "PackedBitsBatch") -> "PackedBitsBatch":
        self._check_compatible(other)
        return PackedBitsBatch._trusted(self.words | other.words, self.lengths)

    def __xor__(self, other: "PackedBitsBatch") -> "PackedBitsBatch":
        self._check_compatible(other)
        return PackedBitsBatch._trusted(self.words ^ other.words, self.lengths)

    def invert(self) -> "PackedBitsBatch":
        """Bitwise NOT over every lane's logical bits (padding stays zero)."""
        out = np.bitwise_not(self.words)
        _mask_row_padding(out, self.lengths)
        return PackedBitsBatch._trusted(out, self.lengths)

    def popcounts(self) -> np.ndarray:
        """Set-bit count per lane (word-parallel)."""
        if hasattr(np, "bitwise_count"):
            return np.bitwise_count(self.words).sum(axis=1, dtype=np.int64)
        return np.array(
            [self.row(index).popcount() for index in range(self.num_lanes)],
            dtype=np.int64,
        )

    def equals(self, other: "PackedBitsBatch") -> bool:
        """Exact equality over all lanes by word comparison."""
        return (
            isinstance(other, PackedBitsBatch)
            and np.array_equal(other.lengths, self.lengths)
            and bool(np.array_equal(self.words, other.words))
        )

    def all_lanes_equal(self) -> bool:
        """True when every lane holds identical bits (consensus check)."""
        if self.num_lanes <= 1:
            return True
        if self.lengths.size and (self.lengths != self.lengths[0]).any():
            return False
        return bool((self.words == self.words[0]).all())


def _pack_bit_rows(bits: np.ndarray, width: int) -> np.ndarray:
    """Pack a ``(lanes, n)`` 0/1 matrix into ``(lanes, width)`` words."""
    lanes = bits.shape[0]
    packed = np.packbits(
        bits.astype(np.uint8, copy=False), axis=1, bitorder="little"
    )
    out = np.zeros((lanes, width * 8), dtype=np.uint8)
    out[:, : packed.shape[1]] = packed
    return out.view(_WORD_DTYPE)


def _mask_row_padding(words: np.ndarray, lengths: np.ndarray) -> None:
    """Zero every bit at or past ``lengths[i]`` in row ``i``, in place."""
    if not words.size:
        return
    col = np.arange(words.shape[1], dtype=np.int64)
    full = (lengths + _WORD_BITS - 1) // _WORD_BITS
    words[col[None, :] >= full[:, None]] = 0
    tail = lengths % _WORD_BITS
    ragged = np.flatnonzero(tail)
    if ragged.size:
        mask = (_WORD_DTYPE.type(1) << tail[ragged].astype(np.uint64)) - 1
        words[ragged, lengths[ragged] // _WORD_BITS] &= mask


def _bytes_to_words(raw: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad a little-endian byte stream to whole ``uint64`` words."""
    num_words = (length + _WORD_BITS - 1) // _WORD_BITS
    if raw.size == num_words * 8:
        return raw.view(_WORD_DTYPE)
    buf = np.zeros(num_words * 8, dtype=np.uint8)
    buf[: raw.size] = raw[: buf.size]
    return buf.view(_WORD_DTYPE)


def signed_int_bit_width(max_abs_value: int) -> int:
    """Bits for a fixed-width signed encoding of ``[-v, +v]``.

    Models Section 3.1's bit-length expansion: a sum of ``m`` signs lies in
    ``{-m, ..., +m}`` and needs ``ceil(log2(m + 1)) + 1`` bits (magnitude plus
    a sign bit).  ``m = 1`` correctly yields 1 bit because the values are then
    only ``{-1, +1}`` and the sign bit alone is enough.
    """
    if max_abs_value < 1:
        raise ValueError("max_abs_value must be >= 1")
    if max_abs_value == 1:
        return 1
    return math.ceil(math.log2(max_abs_value + 1)) + 1


class _BitWriter:
    """Accumulates bits MSB-first into a byte string."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, bit: int) -> None:
        self._bits.append(bit & 1)

    def write_int(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self.write((value >> shift) & 1)

    def getvalue(self) -> bytes:
        bits = np.array(self._bits, dtype=np.uint8)
        return np.packbits(bits, bitorder="big").tobytes()

    def __len__(self) -> int:
        return len(self._bits)


class _BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        raw = np.frombuffer(data, dtype=np.uint8)
        self._bits = np.unpackbits(raw, bitorder="big")
        self._pos = 0

    def read(self) -> int:
        if self._pos >= self._bits.size:
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_int(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read()
        return value

    @property
    def remaining(self) -> int:
        return int(self._bits.size - self._pos)


def _elias_gamma_write(writer: _BitWriter, value: int) -> None:
    if value < 1:
        raise ValueError("Elias gamma encodes positive integers only")
    n = value.bit_length() - 1
    for _ in range(n):
        writer.write(0)
    writer.write_int(value, n + 1)


def _elias_gamma_read(reader: _BitReader) -> int:
    n = 0
    while reader.read() == 0:
        n += 1
    value = 1
    for _ in range(n):
        value = (value << 1) | reader.read()
    return value


def elias_gamma_encode_reference(
    values: np.ndarray | list[int],
) -> tuple[bytes, int]:
    """Per-bit reference encoder (the original loop implementation)."""
    writer = _BitWriter()
    for value in np.asarray(values, dtype=np.int64):
        _elias_gamma_write(writer, int(value))
    return writer.getvalue(), len(writer)


def elias_gamma_decode_reference(payload: bytes, count: int) -> np.ndarray:
    """Per-bit reference decoder (the original loop implementation)."""
    reader = _BitReader(payload)
    return np.array([_elias_gamma_read(reader) for _ in range(count)], dtype=np.int64)


def elias_delta_encode_reference(
    values: np.ndarray | list[int],
) -> tuple[bytes, int]:
    """Per-bit reference encoder (the original loop implementation)."""
    writer = _BitWriter()
    for raw in np.asarray(values, dtype=np.int64):
        value = int(raw)
        if value < 1:
            raise ValueError("Elias delta encodes positive integers only")
        n = value.bit_length()
        _elias_gamma_write(writer, n)
        writer.write_int(value & ((1 << (n - 1)) - 1), n - 1)
    return writer.getvalue(), len(writer)


def elias_delta_decode_reference(payload: bytes, count: int) -> np.ndarray:
    """Per-bit reference decoder (the original loop implementation)."""
    reader = _BitReader(payload)
    out = []
    for _ in range(count):
        n = _elias_gamma_read(reader)
        value = 1
        for _ in range(n - 1):
            value = (value << 1) | reader.read()
        out.append(value)
    return np.array(out, dtype=np.int64)




# ----------------------------------------------------------------------
# vectorized Elias codecs
# ----------------------------------------------------------------------
def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Exact ``bit_length`` per element (positive ``int64`` inputs).

    ``np.frexp`` yields the double-precision exponent, which equals the bit
    length exactly below ``2**53``; one comparison repairs the values whose
    float conversion rounded up to the next power of two.
    """
    v = values.astype(np.int64, copy=False)
    _, exponents = np.frexp(v.astype(np.float64))
    lengths = exponents.astype(np.int64)
    capped = np.clip(lengths - 1, 0, 62)
    lengths -= (np.int64(1) << capped) > v
    return np.minimum(lengths, 63)


def elias_gamma_encode(values: np.ndarray | list[int]) -> tuple[bytes, int]:
    """Elias-gamma encode positive integers (fully vectorized).

    Returns ``(payload, bit_count)``; ``bit_count`` is the exact number of
    meaningful bits (the payload is padded to a byte boundary).  Output is
    byte-identical to :func:`elias_gamma_encode_reference`.

    A gamma code is the value written MSB-first in ``2n + 1`` bits, so bit
    ``k`` of code ``i`` is bit ``lengths[i] - 1 - k`` of ``values[i]`` —
    the whole stream assembles from ``np.repeat`` plus one shift, with no
    scatter and no per-value loop.
    """
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    if values.size == 0:
        return b"", 0
    if values.min() < 1:
        raise ValueError("Elias gamma encodes positive integers only")
    lengths = 2 * _bit_lengths(values) - 1
    total_bits = int(lengths.sum())
    ends = np.cumsum(lengths)
    if total_bits < (1 << 31) and int(values.max()) < (1 << 31):
        # 32-bit lanes halve memory traffic on the bitstream-sized arrays.
        vals_rep = np.repeat(values.astype(np.int32), lengths)
        shift = np.repeat((ends - 1).astype(np.int32), lengths)
        shift -= np.arange(total_bits, dtype=np.int32)
        np.minimum(shift, np.int32(31), out=shift)
        bits_arr = ((vals_rep >> shift) & np.int32(1)).astype(np.uint8)
    else:
        vals_rep = np.repeat(values, lengths)
        shift = np.repeat(ends - 1, lengths)
        shift -= np.arange(total_bits, dtype=np.int64)
        np.minimum(shift, np.int64(63), out=shift)
        bits_arr = ((vals_rep >> shift) & np.int64(1)).astype(np.uint8)
    return np.packbits(bits_arr, bitorder="big").tobytes(), total_bits


def elias_delta_encode(values: np.ndarray | list[int]) -> tuple[bytes, int]:
    """Elias-delta encode positive integers (fully vectorized).

    Byte-identical to :func:`elias_delta_encode_reference`: a gamma-coded
    ``bit_length`` prefix followed by the value's low ``n - 1`` bits.  The
    two regions of every code are assembled with the same repeat-plus-shift
    scheme as :func:`elias_gamma_encode` and selected per bit position.
    """
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    if values.size == 0:
        return b"", 0
    if values.min() < 1:
        raise ValueError("Elias delta encodes positive integers only")
    n = _bit_lengths(values)
    ng = _bit_lengths(n) - 1
    lengths = 2 * ng + n
    total_bits = int(lengths.sum())
    ends = np.cumsum(lengths)
    offsets = ends - lengths
    low = values - (np.int64(1) << (n - 1))
    if total_bits < (1 << 31) and int(values.max()) < (1 << 31):
        dtype, max_shift = np.int32, np.int32(31)
    else:
        dtype, max_shift = np.int64, np.int64(63)
    positions = np.arange(total_bits, dtype=dtype)
    # Bit k of code i reads n[i] while the gamma(n) prefix lasts, then the
    # low bits of the value; both shifts are affine in k, so each is one
    # repeat of its per-code base minus the global arange.
    prefix_shift = np.repeat((offsets + 2 * ng).astype(dtype), lengths)
    prefix_shift -= positions
    low_shift = np.repeat((ends - 1).astype(dtype), lengths)
    low_shift -= positions
    np.minimum(low_shift, max_shift, out=low_shift)
    in_prefix = prefix_shift >= 0
    np.clip(prefix_shift, 0, max_shift, out=prefix_shift)
    n_rep = np.repeat(n.astype(dtype), lengths)
    low_rep = np.repeat(low.astype(dtype), lengths)
    bits_arr = np.where(
        in_prefix, n_rep >> prefix_shift, low_rep >> low_shift
    ).astype(np.uint8)
    bits_arr &= 1
    return np.packbits(bits_arr, bitorder="big").tobytes(), total_bits


def _next_one_table(bits_arr: np.ndarray) -> np.ndarray:
    """``F[p]`` = position of the first 1-bit at or after ``p``.

    Positions past the last 1-bit get the sentinel ``size``.  Built from the
    1-bit positions with one ``np.repeat`` (streaming, no binary search).
    """
    size = bits_arr.size
    dtype = np.int32 if size < (1 << 30) else np.int64
    ones = np.flatnonzero(bits_arr)
    table = np.empty(size, dtype=dtype)
    if ones.size:
        covered = int(ones[-1]) + 1
        gaps = np.diff(ones, prepend=np.int64(-1))
        table[:covered] = np.repeat(ones.astype(dtype), gaps)
        table[covered:] = size
    else:
        table[:] = size
    return table


def _orbit(jump: np.ndarray, count: int) -> np.ndarray | None:
    """First ``count`` positions of the cursor orbit ``0, j(0), j(j(0))…``.

    ``jump`` is an ``int32`` next-code-start table whose values stay in
    ``[p + 1, size - 1]``; a clamped stream therefore always funnels into
    the fixed point at ``size - 1``.  Returns ``None`` when the orbit hits
    that fixed point before yielding ``count`` positions — the sequential
    cursor would have run off the stream, so the caller raises ``EOFError``.

    Small counts walk the table in Python.  Large counts follow the chain
    in one C-level pass: the table is a functional graph (out-degree one),
    so a breadth-first order from position zero IS the orbit.  Without
    scipy, fall back to composing ``jump`` with itself twice (near-monotone
    gathers), walking the quarter-length orbit of ``jump^4``, and expanding
    each anchor back to four consecutive starts vectorized.
    """
    size = jump.size
    if count <= 4096:
        walk = [0] * count
        position = 0
        view = memoryview(jump)
        for index in range(count):
            walk[index] = position
            if position == size - 1 and index + 1 < count:
                return None
            position = view[position]
        return np.array(walk, dtype=np.int32)
    if _breadth_first_order is not None:
        # float64 weights let csgraph's validate_graph reuse the matrix
        # as-is; any other dtype triggers a full-stream cast copy per call.
        graph = _csr_matrix(
            (
                np.broadcast_to(np.float64(1.0), size),
                jump,
                np.arange(size + 1, dtype=np.int32),
            ),
            shape=(size, size),
            copy=False,
        )
        order = _breadth_first_order(
            graph, 0, directed=True, return_predecessors=False
        )
        if order.size < count:
            return None
        return order[:count].astype(np.int32, copy=False)
    stride = 4
    power = jump[jump]
    power = power[power]
    anchors_needed = -(-count // stride)
    walk = [0] * anchors_needed
    position = 0
    view = memoryview(power)
    for index in range(anchors_needed):
        walk[index] = position
        position = view[position]
    frontier = np.array(walk, dtype=np.int32)
    expanded = np.empty((stride, anchors_needed), dtype=np.int32)
    for step in range(stride):
        expanded[step] = frontier
        if step + 1 < stride:
            frontier = jump[frontier]
    starts = expanded.T.reshape(-1)[:count]
    if count > 1 and starts[-1] == size - 1 and starts[-2] == size - 1:
        return None
    return starts


def _read_bit_fields(
    padded: np.ndarray, starts_bits: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """Read one MSB-first integer of ``widths[i]`` bits per start position.

    Gathers a byte window per field from the padded payload (the pad lets
    every window read full bytes) and shifts the field out of it; widths
    must be in ``[1, 63]``.
    """
    base = starts_bits >> 3
    max_width = int(widths.max())
    if max_width <= 25:
        # 32-bit lanes: a field plus its bit phase always fits four bytes.
        window_bytes = (max_width + 14) // 8
        window = np.zeros(starts_bits.shape, dtype=np.uint32)
        for k in range(window_bytes):
            window |= padded[base + k].astype(np.uint32) << np.uint32(
                8 * (3 - k)
            )
        window <<= (starts_bits & 7).astype(np.uint32)
        return (window >> (np.uint32(32) - widths.astype(np.uint32))).astype(
            np.int64
        )
    phase = (starts_bits & 7).astype(np.uint64)
    window_bytes = (max_width + 14) // 8
    window = np.zeros(starts_bits.shape, dtype=np.uint64)
    for k in range(min(window_bytes, 8)):
        window |= padded[base + k].astype(np.uint64) << np.uint64(8 * (7 - k))
    window <<= phase
    if window_bytes > 8:
        window |= padded[base + 8].astype(np.uint64) >> (np.uint64(8) - phase)
    return (window >> (np.uint64(64) - widths.astype(np.uint64))).astype(
        np.int64
    )


def elias_gamma_decode(payload: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Elias-gamma integers from ``payload`` (vectorized).

    The sequential cursor of the reference reader becomes a jump table
    ``next_start(p) = 2 * next_one(p) - p + 1`` whose orbit from zero is
    resolved by :func:`_orbit`; the decoded boundaries then replay the
    cursor exactly, so truncated or overrun streams raise ``EOFError``
    precisely when the reference reader would.
    """
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    data = np.frombuffer(payload, dtype=np.uint8)
    bits_arr = np.unpackbits(data, bitorder="big")
    size = bits_arr.size
    if size == 0:
        raise EOFError("bit stream exhausted")
    dtype = np.int32 if size < (1 << 30) else np.int64
    ones = np.flatnonzero(bits_arr)
    # Unclamped next-start table: a gamma code starting at p ends exactly at
    # 2 * next_one(p) - p + 1, so one table is both the jump function and
    # the cursor replay that validation checks against.
    raw_jump = np.empty(size, dtype=dtype)
    if ones.size:
        covered = int(ones[-1]) + 1
        gaps = np.diff(ones, prepend=np.int64(-1))
        head = np.repeat((2 * ones + 1).astype(dtype), gaps)
        head -= np.arange(covered, dtype=dtype)
        raw_jump[:covered] = head
        raw_jump[covered:] = size + 1
    else:
        raw_jump[:] = size + 1
    jump = np.minimum(raw_jump, dtype(size - 1))
    starts = _orbit(jump, count)
    if starts is None:
        raise EOFError("bit stream exhausted")
    ends = raw_jump[starts]
    n = (ends - starts) >> 1
    # Replay the sequential cursor exactly: each code's (unclamped) end must
    # be the next code's start, and the last end must fit in the stream.
    if (
        (n > 62).any()
        or int(ends[-1]) > size
        or (ends[:-1] != starts[1:]).any()
    ):
        raise EOFError("bit stream exhausted")
    padded = np.concatenate([data, np.zeros(16, dtype=np.uint8)])
    return _read_bit_fields(padded, starts + n, n + 1)


def elias_delta_decode(payload: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Elias-delta integers from ``payload`` (vectorized).

    The jump table needs the gamma-decoded length ``n`` at every position;
    since valid lengths keep ``n <= 63`` the gamma prefix spans at most 13
    bits, so a seven-bit window gathered at each next-one position recovers
    ``n`` everywhere at once.
    """
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    data = np.frombuffer(payload, dtype=np.uint8)
    bits_arr = np.unpackbits(data, bitorder="big")
    size = bits_arr.size
    if size == 0:
        raise EOFError("bit stream exhausted")
    padded = np.concatenate([data, np.zeros(16, dtype=np.uint8)])
    next_one = _next_one_table(bits_arr)
    dtype = next_one.dtype.type
    positions = np.arange(size, dtype=next_one.dtype)
    ng_capped = np.minimum(next_one - positions, dtype(6))
    lead_byte = next_one >> 3
    window = (padded[lead_byte].astype(next_one.dtype) << 8) | padded[
        lead_byte + 1
    ]
    window = (window >> (dtype(9) - (next_one & dtype(7)))) & dtype(0x7F)
    n_all = window >> (dtype(6) - ng_capped)
    jump = (next_one << 1) - positions + n_all
    np.minimum(jump, dtype(size - 1), out=jump)
    starts = _orbit(jump, count)
    if starts is None:
        raise EOFError("bit stream exhausted")
    lead = next_one[starts]
    ng = lead - starts
    n = n_all[starts]
    # Replay the sequential cursor exactly (see elias_gamma_decode); ng <= 6
    # bounds the prefix this decoder trusts, and n <= 63 the int64 range.
    ends = (lead << 1) - starts + n
    if (
        (ng > 6).any()
        or (n < 1).any()
        or (n > 63).any()
        or int(ends[-1]) > size
        or (ends[:-1] != starts[1:]).any()
    ):
        raise EOFError("bit stream exhausted")
    low_starts = starts + 2 * ng + np.int32(1)
    low = _read_bit_fields(padded, low_starts, np.maximum(n - 1, 1))
    n64 = n.astype(np.int64)
    return (np.int64(1) << (n64 - 1)) + np.where(n64 > 1, low, 0)
