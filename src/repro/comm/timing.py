"""Alpha-beta analytical cost model and per-phase time accounting.

The paper reports wall-clock time on a real cluster; our substitution is the
standard alpha-beta model used throughout the collective-communication
literature: sending ``n`` bytes over one link costs ``alpha + n / beta``
seconds (``alpha`` = latency, ``beta`` = bandwidth).  Computation and
compression are charged per element from a cost book whose defaults are
calibrated so that the *proportions* in Figures 1a and 5 (communication
dominates under RAR; cascading's decompress/compress period is large;
Marsit's compression overlaps reception) come out of the model rather than
being hard-coded.

Phases mirror Figure 5's three colors: computation (grey), compression (red),
communication (blue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["CostModel", "Phase", "TimeLine"]


class Phase(enum.Enum):
    """The three time buckets of Figure 5."""

    COMPUTATION = "computation"
    COMPRESSION = "compression"
    COMMUNICATION = "communication"


@dataclass
class CostModel:
    """Simulated-time cost constants.

    Attributes:
        latency_s: per-message link latency (alpha), seconds.
        bandwidth_Bps: link bandwidth (beta), bytes per second.  The default
            1.25e9 B/s is a 10 Gbps cloud NIC.
        flops_per_s: dense compute throughput for forward/backward passes.
        compress_elems_per_s: throughput of sign extraction / quantization.
        decompress_elems_per_s: throughput of decompression (cascading pays
            this serially on every hop).
        rng_elems_per_s: throughput of Bernoulli draws for Marsit's transient
            vector.  It is charged to the compression phase but, because the
            draw runs concurrently with reception (Section 4.1.1), the model
            only charges the *excess* over the overlapped receive when asked.
    """

    latency_s: float = 25e-6
    bandwidth_Bps: float = 1.25e9
    flops_per_s: float = 4.0e12
    compress_elems_per_s: float = 2.0e9
    decompress_elems_per_s: float = 2.0e9
    rng_elems_per_s: float = 4.0e9
    bitop_elems_per_s: float = 2.0e10

    def transfer_time(self, nbytes: int) -> float:
        """alpha + n/beta for one link transfer."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_Bps

    def compute_time(self, flops: float) -> float:
        """Seconds of dense computation."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.flops_per_s

    def compress_time(self, num_elements: int) -> float:
        """Seconds to quantize/sign-extract ``num_elements`` values."""
        return num_elements / self.compress_elems_per_s

    def decompress_time(self, num_elements: int) -> float:
        """Seconds to decompress ``num_elements`` values."""
        return num_elements / self.decompress_elems_per_s

    def rng_time(self, num_elements: int) -> float:
        """Seconds to draw ``num_elements`` Bernoulli samples."""
        return num_elements / self.rng_elems_per_s

    def bitop_time(self, num_elements: int) -> float:
        """Seconds for element-wise AND/XOR/OR merges (Marsit's ``⊙``)."""
        return num_elements / self.bitop_elems_per_s


@dataclass
class TimeLine:
    """Accumulated simulated seconds per :class:`Phase`."""

    seconds: dict[Phase, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in Phase}
    )

    def add(self, phase: Phase, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot add negative time")
        self.seconds[phase] += amount

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> dict[str, float]:
        """Phase name -> seconds, for reporting."""
        return {phase.value: self.seconds[phase] for phase in Phase}

    def delta_since(self, earlier: "TimeLine") -> dict[str, float]:
        """Phase name -> seconds accrued since ``earlier`` was snapshot.

        The per-round cost probe: snapshot the cluster timeline with
        :meth:`copy` at round start, then ask what this round added.
        """
        return {
            phase.value: self.seconds[phase] - earlier.seconds[phase]
            for phase in Phase
        }

    def merged_with(self, other: "TimeLine") -> "TimeLine":
        merged = TimeLine()
        for phase in Phase:
            merged.seconds[phase] = self.seconds[phase] + other.seconds[phase]
        return merged

    def copy(self) -> "TimeLine":
        fresh = TimeLine()
        fresh.seconds = dict(self.seconds)
        return fresh
