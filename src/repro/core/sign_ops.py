"""The Marsit bit-wise merge operator (paper Eq. 2 and Section 4.1.1).

Sign vectors are bit vectors with the convention ``1 == +1``, ``0 == -1``.
When a worker that has already folded in ``a`` workers' signs (the received
vector ``v``) meets a local vector ``v*`` representing ``b`` workers, the
merged bit is

    ``v ⊙ v* = (v AND v*) OR ((v XOR v*) AND r)``

with the transient vector ``r`` drawn *before* ``v`` arrives (it depends only
on ``v*``), which is what lets compression overlap reception:

    ``P(r_j = 1) = b / (a + b)``  where ``v*_j = 1``
    ``P(r_j = 1) = a / (a + b)``  where ``v*_j = 0``

Eq. (2) is the special case ``a = m - 1, b = 1``.  Induction over hops gives
the exact invariant tested in this package:

    ``P(merged_j = 1) = (a p_j + b q_j) / (a + b)``

where ``p_j``/``q_j`` are the +1 fractions represented by ``v``/``v*`` —
i.e. the final bit is an unbiased one-bit sample of the *mean sign* across
all contributing workers, with no decompression anywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_merge_probability",
    "merge_sign_bits",
    "transient_vector",
]


def _validate_bits(bits: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D")
    if array.size and not np.isin(array, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 values")
    return array.astype(np.uint8)


def transient_vector(
    local_bits: np.ndarray,
    received_weight: int,
    local_weight: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw the transient vector ``r`` of Eq. (2), generalized to weights.

    Args:
        local_bits: the local sign bits ``v*`` (0/1).
        received_weight: ``a`` — workers already folded into the incoming
            vector.  Eq. (2) uses ``a = m - 1``.
        local_weight: ``b`` — workers represented by ``local_bits``
            (1 in RAR's reduce phase; a whole row's worth in TAR's column
            phase).
        rng: source of randomness; the draw happens *before* reception.

    Returns:
        A 0/1 ``uint8`` vector: where ``v*_j = 1``, ``P(r_j = 1) = b/(a+b)``;
        where ``v*_j = 0``, ``P(r_j = 1) = a/(a+b)``.
    """
    local = _validate_bits(local_bits, "local_bits")
    if received_weight < 1 or local_weight < 1:
        raise ValueError("weights must be >= 1")
    total = received_weight + local_weight
    keep_local = local_weight / total
    uniforms = rng.random(local.size)
    probs = np.where(local == 1, keep_local, 1.0 - keep_local)
    return (uniforms < probs).astype(np.uint8)


def merge_sign_bits(
    received_bits: np.ndarray,
    local_bits: np.ndarray,
    transient: np.ndarray,
) -> np.ndarray:
    """Apply ``v ⊙ v* = (v AND v*) OR ((v XOR v*) AND r)`` bit-wise.

    Pure bit logic — no decompression, no floats; agreement keeps the common
    bit, disagreement resolves to the pre-drawn transient bit.
    """
    received = _validate_bits(received_bits, "received_bits")
    local = _validate_bits(local_bits, "local_bits")
    trans = _validate_bits(transient, "transient")
    if not received.size == local.size == trans.size:
        raise ValueError("all bit vectors must share one length")
    return (received & local) | ((received ^ local) & trans)


def expected_merge_probability(
    received_prob: np.ndarray | float,
    local_prob: np.ndarray | float,
    received_weight: int,
    local_weight: int,
) -> np.ndarray:
    """The invariant the merge preserves: the weighted mean +1 probability.

    Used by tests and the theory module to check unbiasedness:
    ``E[merged] = (a p + b q) / (a + b)``.
    """
    total = received_weight + local_weight
    return (
        received_weight * np.asarray(received_prob, dtype=np.float64)
        + local_weight * np.asarray(local_prob, dtype=np.float64)
    ) / total
