"""The Marsit bit-wise merge operator (paper Eq. 2 and Section 4.1.1).

Sign vectors are bit vectors with the convention ``1 == +1``, ``0 == -1``.
When a worker that has already folded in ``a`` workers' signs (the received
vector ``v``) meets a local vector ``v*`` representing ``b`` workers, the
merged bit is

    ``v ⊙ v* = (v AND v*) OR ((v XOR v*) AND r)``

with the transient vector ``r`` drawn *before* ``v`` arrives (it depends only
on ``v*``), which is what lets compression overlap reception:

    ``P(r_j = 1) = b / (a + b)``  where ``v*_j = 1``
    ``P(r_j = 1) = a / (a + b)``  where ``v*_j = 0``

Eq. (2) is the special case ``a = m - 1, b = 1``.  Induction over hops gives
the exact invariant tested in this package:

    ``P(merged_j = 1) = (a p_j + b q_j) / (a + b)``

where ``p_j``/``q_j`` are the +1 fractions represented by ``v``/``v*`` —
i.e. the final bit is an unbiased one-bit sample of the *mean sign* across
all contributing workers, with no decompression anywhere.

The packed fast path (:func:`transient_vector_packed`,
:func:`merge_sign_bits_packed`) runs the same algebra 64 elements per
``uint64`` word on :class:`~repro.comm.bits.PackedBits` operands, consuming
the identical RNG stream so packed and unpacked hops are bit-for-bit equal
under a shared seed.

The lane-stacked batch path (:func:`transient_vector_batch`,
:func:`merge_sign_bits_batch`) widens that once more: a whole synchronous
step's merges — one lane per (cycle, position) pair — execute as single
numpy expressions over a :class:`~repro.comm.bits.PackedBitsBatch`, again
consuming per-rank RNG streams identical to the scalar path, so all three
tiers are bit-for-bit interchangeable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.bits import PackedBits, PackedBitsBatch

__all__ = [
    "expected_merge_probability",
    "merge_sign_bits",
    "merge_sign_bits_batch",
    "merge_sign_bits_packed",
    "transient_vector",
    "transient_vector_batch",
    "transient_vector_packed",
]


def _validate_bits(bits: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D")
    if (
        array.size
        and array.dtype not in (np.uint8, np.bool_)
        and not bool(((array == 0) | (array == 1)).all())
    ):
        raise ValueError(f"{name} must contain only 0/1 values")
    return array.astype(np.uint8)


def transient_vector(
    local_bits: np.ndarray,
    received_weight: int,
    local_weight: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw the transient vector ``r`` of Eq. (2), generalized to weights.

    Args:
        local_bits: the local sign bits ``v*`` (0/1).
        received_weight: ``a`` — workers already folded into the incoming
            vector.  Eq. (2) uses ``a = m - 1``.
        local_weight: ``b`` — workers represented by ``local_bits``
            (1 in RAR's reduce phase; a whole row's worth in TAR's column
            phase).
        rng: source of randomness; the draw happens *before* reception.

    Returns:
        A 0/1 ``uint8`` vector: where ``v*_j = 1``, ``P(r_j = 1) = b/(a+b)``;
        where ``v*_j = 0``, ``P(r_j = 1) = a/(a+b)``.
    """
    local = _validate_bits(local_bits, "local_bits")
    if received_weight < 1 or local_weight < 1:
        raise ValueError("weights must be >= 1")
    total = received_weight + local_weight
    keep_local = local_weight / total
    uniforms = rng.random(local.size)
    probs = np.where(local == 1, keep_local, 1.0 - keep_local)
    return (uniforms < probs).astype(np.uint8)


def merge_sign_bits(
    received_bits: np.ndarray,
    local_bits: np.ndarray,
    transient: np.ndarray,
) -> np.ndarray:
    """Apply ``v ⊙ v* = (v AND v*) OR ((v XOR v*) AND r)`` bit-wise.

    Pure bit logic — no decompression, no floats; agreement keeps the common
    bit, disagreement resolves to the pre-drawn transient bit.
    """
    received = _validate_bits(received_bits, "received_bits")
    local = _validate_bits(local_bits, "local_bits")
    trans = _validate_bits(transient, "transient")
    if not received.size == local.size == trans.size:
        raise ValueError("all bit vectors must share one length")
    return (received & local) | ((received ^ local) & trans)


def transient_vector_packed(
    local_bits: PackedBits,
    received_weight: int,
    local_weight: int,
    rng: np.random.Generator,
) -> PackedBits:
    """Packed-word :func:`transient_vector`: same draw, 64 bits per op.

    Consumes the identical RNG stream — one ``rng.random(length)`` batch —
    so the result is bit-for-bit equal to the unpacked reference under a
    shared seed.  The per-element select ``probs = where(v*, b/(a+b),
    a/(a+b))`` becomes two packed threshold masks muxed by the local word:
    ``r = (v* & [u < b/(a+b)]) | (~v* & [u < a/(a+b)])``.  The draw still
    depends only on ``v*``, preserving the overlap-with-reception property.
    """
    if received_weight < 1 or local_weight < 1:
        raise ValueError("weights must be >= 1")
    keep_local = local_weight / (received_weight + local_weight)
    uniforms = rng.random(len(local_bits))
    below_local = PackedBits.from_bits(uniforms < keep_local)
    below_other = PackedBits.from_bits(uniforms < 1.0 - keep_local)
    return (local_bits & below_local) | (local_bits.invert() & below_other)


def merge_sign_bits_packed(
    received_bits: PackedBits,
    local_bits: PackedBits,
    transient: PackedBits,
) -> PackedBits:
    """``v ⊙ v* = (v AND v*) OR ((v XOR v*) AND r)`` on ``uint64`` words."""
    if not len(received_bits) == len(local_bits) == len(transient):
        raise ValueError("all bit vectors must share one length")
    return (received_bits & local_bits) | (
        (received_bits ^ local_bits) & transient
    )


def transient_vector_batch(
    local_bits: PackedBitsBatch,
    received_weights: int | np.ndarray,
    local_weights: int | np.ndarray,
    rngs: Sequence[np.random.Generator],
) -> PackedBitsBatch:
    """Lane-stacked :func:`transient_vector_packed`: one draw call per lane,
    one vectorized threshold-and-pack for the whole synchronous step.

    ``rngs[i]`` is lane ``i``'s generator (the receiving rank's stream); each
    lane draws exactly ``lengths[i]`` uniforms into one shared matrix, so the
    per-rank streams are *identical* to the scalar path's
    ``rng.random(length)`` calls and batched and scalar engines stay
    bit-for-bit interchangeable under a shared seed.  Weights may be scalars
    (every lane at the same hop, the ring schedules) or per-lane arrays (the
    tree reduce, where subtree sizes differ).
    """
    lanes = local_bits.num_lanes
    if len(rngs) != lanes:
        raise ValueError("one generator per lane required")
    received = np.broadcast_to(
        np.asarray(received_weights, dtype=np.int64), (lanes,)
    )
    local_w = np.broadcast_to(np.asarray(local_weights, dtype=np.int64), (lanes,))
    if lanes and (received.min() < 1 or local_w.min() < 1):
        raise ValueError("weights must be >= 1")
    lengths = local_bits.lengths
    max_len = int(lengths.max()) if lengths.size else 0
    uniforms = np.empty((lanes, max_len))
    for lane in range(lanes):
        n = int(lengths[lane])
        if n:
            rngs[lane].random(out=uniforms[lane, :n])
    keep_local = (local_w / (received + local_w))[:, None]
    # from_bit_matrix masks columns past each lane's length, so the
    # uninitialized tail of the shared uniforms buffer never leaks through.
    width = local_bits.width
    below_local = PackedBitsBatch.from_bit_matrix(
        uniforms < keep_local, lengths, width=width
    )
    below_other = PackedBitsBatch.from_bit_matrix(
        uniforms < 1.0 - keep_local, lengths, width=width
    )
    return (local_bits & below_local) | (local_bits.invert() & below_other)


def merge_sign_bits_batch(
    received_bits: PackedBitsBatch,
    local_bits: PackedBitsBatch,
    transient: PackedBitsBatch,
) -> PackedBitsBatch:
    """``v ⊙ v* = (v AND v*) OR ((v XOR v*) AND r)`` over a whole lane stack.

    One batched word-matrix expression merges every (cycle, position) lane of
    a synchronous step at once — the lockstep engine's per-step workhorse.
    """
    return (received_bits & local_bits) | (
        (received_bits ^ local_bits) & transient
    )


def expected_merge_probability(
    received_prob: np.ndarray | float,
    local_prob: np.ndarray | float,
    received_weight: int,
    local_weight: int,
) -> np.ndarray:
    """The invariant the merge preserves: the weighted mean +1 probability.

    Used by tests and the theory module to check unbiasedness:
    ``E[merged] = (a p + b q) / (a + b)``.
    """
    total = received_weight + local_weight
    return (
        received_weight * np.asarray(received_prob, dtype=np.float64)
        + local_weight * np.asarray(local_prob, dtype=np.float64)
    ) / total
