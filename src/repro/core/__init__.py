"""Marsit: the paper's primary contribution.

- :mod:`repro.core.sign_ops` — the bit-wise merge operator ``v ⊙ v*``
  of Eq. (2): unbiased one-bit aggregation without decompression.
- :mod:`repro.core.marsit` — Algorithm 1: one-bit multi-hop synchronization
  with global compensation and periodic full-precision rounds, over ring
  (RAR) and 2D-torus (TAR) schedules.
- :mod:`repro.core.optimizer` — Algorithm 2 (Marsit-driven SGD) plus the
  Momentum and Adam variants the experiments use.
"""

from repro.core.marsit import MarsitConfig, MarsitState, MarsitSynchronizer
from repro.core.optimizer import MarsitAdam, MarsitMomentum, MarsitSGD
from repro.core.sign_ops import (
    expected_merge_probability,
    merge_sign_bits,
    merge_sign_bits_batch,
    merge_sign_bits_packed,
    transient_vector,
    transient_vector_batch,
    transient_vector_packed,
)

__all__ = [
    "MarsitAdam",
    "MarsitConfig",
    "MarsitMomentum",
    "MarsitSGD",
    "MarsitState",
    "MarsitSynchronizer",
    "expected_merge_probability",
    "merge_sign_bits",
    "merge_sign_bits_batch",
    "merge_sign_bits_packed",
    "transient_vector",
    "transient_vector_batch",
    "transient_vector_packed",
]
