"""Marsit synchronization (paper Algorithm 1).

Each round every worker holds an update ``g_t^(m)`` (the local-stepsize-scaled
gradient, possibly momentum/Adam-transformed) and a compensation vector
``c_t^(m)``.  The synchronizer:

1. forms the compensated update ``g <- g_t^(m) + c_t^(m)`` (line 1);
2. on a **one-bit round** (``t mod K != 0``): splits ``g`` into segments,
   runs the multi-hop reduce where every hop applies the ``⊙`` merge of
   :mod:`repro.core.sign_ops` to sign-bit segments (lines 4-8), gathers the
   consensus bit vector, and returns ``g_t = eta_s * signs`` (line 9);
   compensation becomes ``c <- g - g_t`` (line 10);
3. on a **full-precision round** (``t mod K == 0``): all-reduces ``g`` in
   FP32 and resets ``c <- 0`` (lines 12-13).

Timing model for the one-bit path (Section 4.1.1's parallelism claim): the
local sign extraction and the Bernoulli transient draw for the *next* segment
run concurrently with the current reception, so only their excess over the
transfer time hits the critical path; the post-receive bit merge is charged
fully (it needs the received bits) but runs at bit-op throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.allreduce.ring import (
    PackedLaneGrid,
    lockstep_ring_all_gather,
    lockstep_ring_reduce_scatter,
    parallel_ring_all_gather,
    parallel_ring_reduce_scatter,
    ring_allreduce_mean,
    split_segments,
)
from repro.allreduce.torus import (
    col_cycles,
    row_cycles,
    torus_allreduce_mean,
    torus_rows_cols,
)
from repro.comm.bits import PackedBits, PackedBitsBatch
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.core.sign_ops import (
    merge_sign_bits_batch,
    merge_sign_bits_packed,
    transient_vector_batch,
    transient_vector_packed,
)

__all__ = ["MarsitConfig", "MarsitState", "MarsitSynchronizer", "SyncReport"]


@dataclass
class MarsitConfig:
    """Hyper-parameters of Algorithm 1.

    Attributes:
        global_lr: ``eta_s``, the stepsize applied to the consensus signs.
        full_precision_every: ``K``; rounds with ``t % K == 0`` synchronize
            in FP32 and reset compensation.  ``None`` means never (the paper's
            plain "Marsit", i.e. ``K = infinity``).
        seed: root seed for the per-worker transient-vector generators.
        global_lr_schedule: optional ``round_idx -> multiplier`` applied on
            top of ``global_lr`` (the experiments decay the LR at every
            full-precision synchronization).
        use_compensation: ablation hook — ``False`` zeroes the compensation
            vector every round (Section 4.1.3's mechanism disabled), so the
            magnitude residual of each one-bit step is discarded instead of
            carried forward.
        segment_elems: when set and the topology is a ring, the one-bit sync
            runs as a *segmented ring* (paper ref [25]): the vector is cut
            into fixed-size pipeline segments, each synchronized by its own
            ring pass — Section 5's "easily extended to segmented-ring
            all-reduce".
        engine: ``"batched"`` (default) runs the lane-stacked lockstep
            path — every synchronous step's merges and transfers execute as
            one numpy op over all (cycle, position) lanes; ``"scalar"`` keeps
            the per-message reference path.  Both consume identical per-rank
            RNG streams, so results are bit-for-bit equal.
        verify_consensus: assert after every one-bit round that all workers
            hold identical bits.  The check costs O(M * D) per round, so
            benchmarks turn it off.
    """

    global_lr: float
    full_precision_every: int | None = None
    seed: int = 0
    global_lr_schedule: Callable[[int], float] | None = None
    use_compensation: bool = True
    segment_elems: int | None = None
    engine: str = "batched"
    verify_consensus: bool = True

    def __post_init__(self) -> None:
        if self.global_lr <= 0:
            raise ValueError("global_lr must be positive")
        if self.full_precision_every is not None and self.full_precision_every < 1:
            raise ValueError("full_precision_every must be >= 1 or None")
        if self.segment_elems is not None and self.segment_elems < 1:
            raise ValueError("segment_elems must be >= 1 or None")
        if self.engine not in ("batched", "scalar"):
            raise ValueError(
                f"engine must be 'batched' or 'scalar', got {self.engine!r}"
            )

    def is_full_precision_round(self, round_idx: int) -> bool:
        if self.full_precision_every is None:
            return False
        return round_idx % self.full_precision_every == 0

    def effective_global_lr(self, round_idx: int) -> float:
        if self.global_lr_schedule is None:
            return self.global_lr
        return self.global_lr * self.global_lr_schedule(round_idx)


@dataclass
class MarsitState:
    """Per-worker compensation vectors ``c_t^(m)``, stacked ``(M, D)``.

    One contiguous matrix instead of a list of per-worker vectors, so the
    round update ``c <- g - g_t`` is a single broadcast expression.  Row
    ``compensation[m]`` is still worker ``m``'s vector, so indexing callers
    (checkpointing, tests) are unchanged; a list of equal-length vectors is
    accepted and stacked.
    """

    compensation: np.ndarray

    def __post_init__(self) -> None:
        self.compensation = np.asarray(self.compensation, dtype=np.float64)
        if self.compensation.ndim != 2:
            raise ValueError(
                "compensation must be a (num_workers, dimension) matrix"
            )

    @classmethod
    def zeros(cls, num_workers: int, dimension: int) -> "MarsitState":
        return cls(compensation=np.zeros((num_workers, dimension)))


@dataclass
class SyncReport:
    """What one :meth:`MarsitSynchronizer.synchronize` call did."""

    round_idx: int
    full_precision: bool
    bits_per_element: float
    global_updates: list[np.ndarray] = field(repr=False)


class MarsitSynchronizer:
    """Drives Algorithm 1 over ring (RAR) or 2D-torus (TAR) clusters.

    The synchronizer owns the compensation state and one RNG per worker (the
    transient vector is drawn by the *receiving* worker, so randomness is
    local — no shared seed is needed for consensus because the merged bits
    themselves travel the ring).
    """

    def __init__(
        self,
        config: MarsitConfig,
        num_workers: int,
        dimension: int,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        self.config = config
        self.num_workers = num_workers
        self.dimension = dimension
        self.state = MarsitState.zeros(num_workers, dimension)
        seeds = np.random.SeedSequence(config.seed).spawn(num_workers)
        self.rngs = [np.random.default_rng(seed) for seed in seeds]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def synchronize(
        self,
        cluster: Cluster,
        updates: list[np.ndarray],
        round_idx: int,
    ) -> SyncReport:
        """Run Algorithm 1 for one round.

        Args:
            cluster: ring or torus cluster with ``num_workers`` workers.
            updates: per-worker ``g_t^(m)`` (local LR already applied).
            round_idx: the synchronization index ``t``.

        Returns:
            A :class:`SyncReport` whose ``global_updates[m]`` is the vector
            worker ``m`` subtracts from its model.  On one-bit rounds all
            entries are identical (consensus); on full-precision rounds they
            are identical up to FP32 wire rounding.
        """
        if cluster.num_workers != self.num_workers:
            raise ValueError("cluster size does not match synchronizer")
        if len(updates) != self.num_workers:
            raise ValueError("one update vector per worker required")
        stacked = [np.asarray(update, dtype=np.float64) for update in updates]
        for vector in stacked:
            if vector.shape != (self.dimension,):
                raise ValueError(
                    f"update dimension {vector.shape} != ({self.dimension},)"
                )
        # One (M, D) matrix expression forms every worker's compensated
        # update at once (line 1 of Algorithm 1).
        compensated = np.stack(stacked) + self.state.compensation

        obs = cluster.obs
        full_precision = self.config.is_full_precision_round(round_idx)
        with obs.tracer.span(
            "round",
            cat="marsit",
            round=round_idx,
            engine=self.config.engine,
            full_precision=full_precision,
        ):
            if full_precision:
                global_updates = self._full_precision_sync(cluster, compensated)
                self.state.compensation = np.zeros(
                    (self.num_workers, self.dimension)
                )
                report = SyncReport(
                    round_idx=round_idx,
                    full_precision=True,
                    bits_per_element=32.0,
                    global_updates=global_updates,
                )
            else:
                consensus_signs = self._one_bit_sync(cluster, compensated)
                eta_s = self.config.effective_global_lr(round_idx)
                global_update = eta_s * consensus_signs
                if self.config.use_compensation:
                    self.state.compensation = compensated - global_update
                else:
                    self.state.compensation = np.zeros(
                        (self.num_workers, self.dimension)
                    )
                report = SyncReport(
                    round_idx=round_idx,
                    full_precision=False,
                    bits_per_element=1.0,
                    global_updates=[
                        global_update.copy() for _ in range(self.num_workers)
                    ],
                )
        metrics = obs.metrics
        if metrics is not None:
            metrics.gauge("marsit.bits_per_element").set(report.bits_per_element)
            metrics.gauge("marsit.comp_norm").set(
                float(np.mean(np.linalg.norm(self.state.compensation, axis=1)))
            )
            if not full_precision:
                # Live Figure-1b statistic: how often the one-bit consensus
                # matches the sign of the exact full-precision mean update.
                mean_sign = np.where(compensated.mean(axis=0) >= 0, 1.0, -1.0)
                metrics.gauge("marsit.sign_agreement").set(
                    float(np.mean(consensus_signs == mean_sign))
                )
        return report

    # ------------------------------------------------------------------
    # one-bit path
    # ------------------------------------------------------------------
    def _one_bit_sync(
        self, cluster: Cluster, vectors: np.ndarray
    ) -> np.ndarray:
        """Multi-hop sign aggregation; returns the consensus ``{-1,+1}``.

        ``vectors`` is the stacked ``(M, D)`` compensated-update matrix; the
        scalar engine indexes its rows, the batched engine consumes it whole.
        """
        if self.num_workers == 1:
            bits = (vectors[0] >= 0).astype(np.uint8)
            return bits.astype(np.float64) * 2.0 - 1.0
        batched = self.config.engine == "batched"
        if cluster.topology.name == "ring":
            if self.config.segment_elems is not None:
                runner = (
                    self._one_bit_segmented_ring_batched
                    if batched
                    else self._one_bit_segmented_ring
                )
            else:
                runner = (
                    self._one_bit_ring_batched if batched else self._one_bit_ring
                )
        elif cluster.topology.name == "torus":
            runner = (
                self._one_bit_torus_batched if batched else self._one_bit_torus
            )
        elif cluster.topology.name == "tree":
            runner = (
                self._one_bit_tree_batched if batched else self._one_bit_tree
            )
        else:
            raise ValueError(
                f"Marsit one-bit sync supports ring/torus/tree topologies, "
                f"got {cluster.topology.name!r}"
            )
        final = runner(cluster, vectors)
        # The single unpack of the whole pipeline: words -> {-1, +1} floats.
        return final.to_signs()

    def _sign_segments(
        self, vector: np.ndarray, num_segments: int
    ) -> list[PackedBits]:
        """Split and pack ``sgn`` (+1-at-zero) once, at compression time."""
        return [
            PackedBits.from_signs(seg)
            for seg in split_segments(vector, num_segments, copy=False)
        ]

    def _reduce_cycles(
        self,
        cluster: Cluster,
        cycles: Sequence[Sequence[int]],
        bit_segments: Sequence[list[list[PackedBits]]],
        base_weight: int,
        tag: str,
    ) -> None:
        """One-bit reduce-scatter over disjoint ring cycles in lockstep.

        ``bit_segments[c][p][i]`` are :class:`PackedBits`; each position's
        vector already aggregates ``base_weight`` workers (1 on RAR; a full
        row on TAR's column phase).  The schedule itself is
        :func:`parallel_ring_reduce_scatter`; this wrapper supplies the
        packed ``⊙`` combine (the receiving rank selects the RNG stream) and
        the Section 4.1.1 overlap charges.  Mutates in place; ownership ends
        at the standard reduce layout (``(p + 1) % size``).
        """
        if not cycles:
            return
        model = cluster.cost_model
        metrics = cluster.obs.metrics
        segment_elems = max(
            (len(seg) for seg in bit_segments[0][0]), default=0
        )

        def combine(
            received: PackedBits, local: PackedBits, step: int, rank: int
        ) -> PackedBits:
            transient = transient_vector_packed(
                local,
                received_weight=(step + 1) * base_weight,
                local_weight=base_weight,
                rng=self.rngs[rank],
            )
            if metrics is not None:
                # Disagreeing coordinates are exactly the ones the transient
                # vector decides (the ⊙ merge keeps agreements verbatim).
                metrics.counter("marsit.transient_draws").inc(
                    (received ^ local).popcount()
                )
                metrics.counter("marsit.merged_bits").inc(len(local))
            return merge_sign_bits_packed(received, local, transient)

        def charge_hop(step: int, transfer: float) -> None:
            # Sign extraction + transient draw for the next hop overlap the
            # transfer (Section 4.1.1); only the excess is critical path.
            overlapped = model.compress_time(segment_elems) + model.rng_time(
                segment_elems
            )
            cluster.charge(Phase.COMPRESSION, max(0.0, overlapped - transfer))
            # The merge itself needs the received bits: charged in full.
            cluster.charge(Phase.COMPRESSION, model.bitop_time(segment_elems))

        with cluster.obs.tracer.span("reduce-scatter", cat="phase", tag=tag):
            # The first outgoing segment's signs must exist before step 0.
            cluster.charge(
                Phase.COMPRESSION, model.compress_time(segment_elems)
            )
            parallel_ring_reduce_scatter(
                cluster,
                cycles,
                bit_segments,
                combine,
                tag=tag,
                on_step_end=charge_hop,
            )

    def _gather_cycles(
        self,
        cluster: Cluster,
        cycles: Sequence[Sequence[int]],
        bit_segments: Sequence[list[list[PackedBits]]],
        tag: str,
    ) -> None:
        """All-gather of owned packed segments over cycles in lockstep."""
        with cluster.obs.tracer.span("all-gather", cat="phase", tag=tag):
            parallel_ring_all_gather(cluster, cycles, bit_segments, tag=tag)

    def _one_bit_ring(
        self, cluster: Cluster, vectors: list[np.ndarray]
    ) -> PackedBits:
        """RAR one-bit sync (Figure 2's R and G periods)."""
        size = self.num_workers
        ranks = list(range(size))
        bit_segments = [
            self._sign_segments(vec, size) for vec in vectors
        ]
        self._reduce_cycles(
            cluster, [ranks], [bit_segments], base_weight=1, tag="m-rs"
        )
        self._gather_cycles(cluster, [ranks], [bit_segments], tag="m-ag")
        final = PackedBits.concat(bit_segments[0])
        if self.config.verify_consensus:
            for pos in range(1, size):
                other = PackedBits.concat(bit_segments[pos])
                if not final.equals(other):
                    raise AssertionError("consensus violated after gather phase")
        return final

    def _one_bit_torus(
        self, cluster: Cluster, vectors: list[np.ndarray]
    ) -> PackedBits:
        """TAR one-bit sync: row reduce, column all-reduce, then gathers.

        The column phase merges vectors that each already represent a whole
        row of ``cols`` workers, so its transient weights scale by ``cols``
        — the weighted generalization of Eq. (2).  All rows (and then all
        columns) advance in lockstep, matching TAR's latency profile.
        """
        rows, cols = torus_rows_cols(cluster)
        row_rank_lists = row_cycles(rows, cols)
        col_rank_lists = col_cycles(rows, cols)

        # Row phase: reduce-scatter sign bits within every row, in lockstep.
        row_segments: dict[int, list[PackedBits]] = {}
        owned_idx: dict[int, int] = {}
        if cols > 1:
            all_segments = [
                [self._sign_segments(vectors[rank], cols) for rank in ranks]
                for ranks in row_rank_lists
            ]
            self._reduce_cycles(
                cluster, row_rank_lists, all_segments, base_weight=1, tag="m-row-rs"
            )
            for cycle_idx, ranks in enumerate(row_rank_lists):
                for pos, rank in enumerate(ranks):
                    row_segments[rank] = all_segments[cycle_idx][pos]
                    owned_idx[rank] = (pos + 1) % cols
        else:
            for rank in range(self.num_workers):
                row_segments[rank] = [PackedBits.from_signs(vectors[rank])]
                owned_idx[rank] = 0

        # Column phase: one-bit all-reduce of every owned chunk, in lockstep.
        if rows > 1:
            chunk_segments = [
                [
                    row_segments[rank][owned_idx[rank]].split(rows)
                    for rank in ranks
                ]
                for ranks in col_rank_lists
            ]
            self._reduce_cycles(
                cluster,
                col_rank_lists,
                chunk_segments,
                base_weight=cols,
                tag="m-col-rs",
            )
            self._gather_cycles(cluster, col_rank_lists, chunk_segments, tag="m-col-ag")
            for cycle_idx, ranks in enumerate(col_rank_lists):
                for pos, rank in enumerate(ranks):
                    row_segments[rank][owned_idx[rank]] = PackedBits.concat(
                        chunk_segments[cycle_idx][pos]
                    )

        # Row gather: circulate the now fully reduced owned segments.
        if cols > 1:
            all_segments = [
                [row_segments[rank] for rank in ranks] for ranks in row_rank_lists
            ]
            self._gather_cycles(cluster, row_rank_lists, all_segments, tag="m-row-ag")

        final = PackedBits.concat(row_segments[0])
        if self.config.verify_consensus:
            for rank in range(1, self.num_workers):
                other = PackedBits.concat(row_segments[rank])
                if not final.equals(other):
                    raise AssertionError("consensus violated after torus gather")
        return final

    def _one_bit_segmented_ring(
        self, cluster: Cluster, vectors: list[np.ndarray]
    ) -> PackedBits:
        """Segmented-ring variant: independent one-bit ring passes per chunk.

        Each fixed-size chunk of the vector runs its own reduce+gather, so a
        real implementation could pipeline chunks; traffic volume matches
        the plain ring.
        """
        segment_elems = self.config.segment_elems
        size = self.num_workers
        ranks = list(range(size))
        dimension = vectors[0].size
        pieces: list[PackedBits] = []
        for start in range(0, dimension, segment_elems):
            stop = min(start + segment_elems, dimension)
            chunk_segments = [
                self._sign_segments(vec[start:stop], size) for vec in vectors
            ]
            self._reduce_cycles(
                cluster, [ranks], [chunk_segments], base_weight=1,
                tag=f"m-seg{start}-rs",
            )
            self._gather_cycles(
                cluster, [ranks], [chunk_segments], tag=f"m-seg{start}-ag"
            )
            pieces.append(PackedBits.concat(chunk_segments[0]))
            if self.config.verify_consensus:
                for pos in range(1, size):
                    if not pieces[-1].equals(
                        PackedBits.concat(chunk_segments[pos])
                    ):
                        raise AssertionError("segmented-ring consensus violated")
        return PackedBits.concat(pieces)

    def _one_bit_tree(
        self, cluster: Cluster, vectors: list[np.ndarray]
    ) -> PackedBits:
        """Tree variant: weighted ``⊙`` merges up the tree, broadcast down.

        A parent folds each child's bit vector (representing that child's
        whole subtree) into its own accumulated bits with transient weights
        (subtree size vs accumulated size) — the same weighted merge the
        torus column phase uses — so the root's bits remain an unbiased
        sample of the global mean sign.
        """
        meta = cluster.topology.meta
        arity, root = meta["arity"], meta["root"]
        num = self.num_workers
        depth_of = [0] * num
        for rank in range(1, num):
            depth_of[rank] = depth_of[(rank - 1) // arity] + 1
        max_depth = max(depth_of)
        levels: list[list[int]] = [[] for _ in range(max_depth + 1)]
        for rank, depth in enumerate(depth_of):
            levels[depth].append(rank)

        model = cluster.cost_model
        metrics = cluster.obs.metrics
        tracer = cluster.obs.tracer
        bits = [PackedBits.from_signs(vec) for vec in vectors]
        weight = [1] * num
        dimension = vectors[0].size

        # Reduce: deepest level first; each level is one synchronous step.
        with tracer.span("reduce-scatter", cat="phase", tag="m-tree-up"):
            cluster.charge(Phase.COMPRESSION, model.compress_time(dimension))
            for level in reversed(levels[1:]):
                cluster.begin_step()
                for rank in level:
                    cluster.send(
                        rank, (rank - 1) // arity, bits[rank], tag="m-tree-up"
                    )
                for rank in level:
                    parent = (rank - 1) // arity
                    received: PackedBits = cluster.recv(
                        parent, rank, tag="m-tree-up"
                    )
                    transient = transient_vector_packed(
                        bits[parent],
                        received_weight=weight[rank],
                        local_weight=weight[parent],
                        rng=self.rngs[parent],
                    )
                    if metrics is not None:
                        metrics.counter("marsit.transient_draws").inc(
                            (received ^ bits[parent]).popcount()
                        )
                        metrics.counter("marsit.merged_bits").inc(
                            len(bits[parent])
                        )
                    # Merge child (received) into parent (local).
                    bits[parent] = merge_sign_bits_packed(
                        received, bits[parent], transient
                    )
                    weight[parent] += weight[rank]
                transfer = cluster.end_step(tag="m-tree-up")
                overlapped = model.rng_time(dimension)
                cluster.charge(
                    Phase.COMPRESSION, max(0.0, overlapped - transfer)
                )
                cluster.charge(Phase.COMPRESSION, model.bitop_time(dimension))
        if weight[root] != num:
            raise AssertionError("tree reduce missed workers")

        # Broadcast: shallowest level first.
        with tracer.span("all-gather", cat="phase", tag="m-tree-down"):
            for level in levels[1:]:
                cluster.begin_step()
                for rank in level:
                    parent = (rank - 1) // arity
                    cluster.send(parent, rank, bits[parent], tag="m-tree-down")
                for rank in level:
                    bits[rank] = cluster.recv(
                        rank, (rank - 1) // arity, tag="m-tree-down"
                    )
                cluster.end_step(tag="m-tree-down")
        if self.config.verify_consensus:
            for rank in range(1, num):
                if not bits[rank].equals(bits[0]):
                    raise AssertionError("tree consensus violated")
        return bits[0]

    # ------------------------------------------------------------------
    # one-bit path, lane-stacked lockstep engine
    # ------------------------------------------------------------------
    def _reduce_cycles_batched(
        self,
        cluster: Cluster,
        cycles: Sequence[Sequence[int]],
        grid: PackedLaneGrid,
        base_weight: int,
        tag: str,
    ) -> None:
        """Batched :meth:`_reduce_cycles`: identical schedule, charges and
        RNG streams, but each synchronous step's merges run as one
        :class:`~repro.comm.bits.PackedBitsBatch` expression over all lanes.
        """
        if not cycles:
            return
        model = cluster.cost_model
        metrics = cluster.obs.metrics
        segment_elems = (
            int(grid.lengths[0].max()) if grid.lengths.size else 0
        )

        def combine(
            received: PackedBitsBatch,
            local: PackedBitsBatch,
            step: int,
            ranks: Sequence[int],
        ) -> PackedBitsBatch:
            transient = transient_vector_batch(
                local,
                received_weights=(step + 1) * base_weight,
                local_weights=base_weight,
                rngs=[self.rngs[rank] for rank in ranks],
            )
            if metrics is not None:
                # Same statistic as the scalar combine, batched over lanes.
                metrics.counter("marsit.transient_draws").inc(
                    int((received ^ local).popcounts().sum())
                )
                metrics.counter("marsit.merged_bits").inc(
                    int(local.lengths.sum())
                )
            return merge_sign_bits_batch(received, local, transient)

        def charge_hop(step: int, transfer: float) -> None:
            # Sign extraction + transient draw for the next hop overlap the
            # transfer (Section 4.1.1); only the excess is critical path.
            overlapped = model.compress_time(segment_elems) + model.rng_time(
                segment_elems
            )
            cluster.charge(Phase.COMPRESSION, max(0.0, overlapped - transfer))
            # The merge itself needs the received bits: charged in full.
            cluster.charge(Phase.COMPRESSION, model.bitop_time(segment_elems))

        with cluster.obs.tracer.span("reduce-scatter", cat="phase", tag=tag):
            # The first outgoing segment's signs must exist before step 0.
            cluster.charge(
                Phase.COMPRESSION, model.compress_time(segment_elems)
            )
            lockstep_ring_reduce_scatter(
                cluster, cycles, grid, combine, tag=tag, on_step_end=charge_hop
            )

    def _gather_cycles_batched(
        self,
        cluster: Cluster,
        cycles: Sequence[Sequence[int]],
        grid: PackedLaneGrid,
        tag: str,
    ) -> None:
        """Batched all-gather under an ``all-gather`` phase span."""
        with cluster.obs.tracer.span("all-gather", cat="phase", tag=tag):
            lockstep_ring_all_gather(cluster, cycles, grid, tag=tag)

    def _check_grid_consensus(self, grid: PackedLaneGrid, where: str) -> None:
        if not self.config.verify_consensus or grid.num_lanes <= 1:
            return
        if (grid.lengths != grid.lengths[0]).any() or (
            grid.words != grid.words[0]
        ).any():
            raise AssertionError(f"consensus violated after {where}")

    def _one_bit_ring_batched(
        self, cluster: Cluster, matrix: np.ndarray
    ) -> PackedBits:
        """RAR one-bit sync on the lockstep engine (lane = ring position)."""
        size = self.num_workers
        ranks = list(range(size))
        grid = PackedLaneGrid.from_sign_matrix(matrix, size)
        self._reduce_cycles_batched(
            cluster, [ranks], grid, base_weight=1, tag="m-rs"
        )
        self._gather_cycles_batched(cluster, [ranks], grid, tag="m-ag")
        self._check_grid_consensus(grid, "gather phase")
        return PackedBits.concat(grid.segments_of(0))

    def _one_bit_torus_batched(
        self, cluster: Cluster, matrix: np.ndarray
    ) -> PackedBits:
        """TAR one-bit sync on the lockstep engine.

        Row phase lanes are ranks in row-major order (the row-cycle flatten);
        column phase restacks each rank's owned segment into a second grid in
        column-cycle order, mirroring the scalar path's ``split(rows)`` so
        per-rank RNG streams line up exactly.
        """
        rows, cols = torus_rows_cols(cluster)
        row_rank_lists = row_cycles(rows, cols)
        col_rank_lists = col_cycles(rows, cols)

        # Row phase: reduce-scatter sign bits within every row, in lockstep.
        # cols == 1 degenerates to one whole-vector segment per rank.
        grid = PackedLaneGrid.from_sign_matrix(matrix, cols)
        if cols > 1:
            self._reduce_cycles_batched(
                cluster, row_rank_lists, grid, base_weight=1, tag="m-row-rs"
            )

        def owned_of(rank: int) -> int:
            return (rank % cols + 1) % cols if cols > 1 else 0

        # Column phase: one-bit all-reduce of every owned chunk, in lockstep.
        if rows > 1:
            col_ranks = [rank for ranks in col_rank_lists for rank in ranks]
            col_grid = PackedLaneGrid.from_packed_rows(
                [grid.row(rank, owned_of(rank)).split(rows) for rank in col_ranks]
            )
            self._reduce_cycles_batched(
                cluster,
                col_rank_lists,
                col_grid,
                base_weight=cols,
                tag="m-col-rs",
            )
            self._gather_cycles_batched(
                cluster, col_rank_lists, col_grid, tag="m-col-ag"
            )
            for lane, rank in enumerate(col_ranks):
                grid.set_row(
                    rank,
                    owned_of(rank),
                    PackedBits.concat(col_grid.segments_of(lane)),
                )

        # Row gather: circulate the now fully reduced owned segments.
        if cols > 1:
            self._gather_cycles_batched(
                cluster, row_rank_lists, grid, tag="m-row-ag"
            )

        self._check_grid_consensus(grid, "torus gather")
        return PackedBits.concat(grid.segments_of(0))

    def _one_bit_segmented_ring_batched(
        self, cluster: Cluster, matrix: np.ndarray
    ) -> PackedBits:
        """Segmented-ring variant on the lockstep engine: one grid per chunk."""
        segment_elems = self.config.segment_elems
        size = self.num_workers
        ranks = list(range(size))
        dimension = matrix.shape[1]
        pieces: list[PackedBits] = []
        for start in range(0, dimension, segment_elems):
            stop = min(start + segment_elems, dimension)
            grid = PackedLaneGrid.from_sign_matrix(matrix[:, start:stop], size)
            self._reduce_cycles_batched(
                cluster, [ranks], grid, base_weight=1, tag=f"m-seg{start}-rs"
            )
            self._gather_cycles_batched(
                cluster, [ranks], grid, tag=f"m-seg{start}-ag"
            )
            self._check_grid_consensus(grid, "segmented-ring gather")
            pieces.append(PackedBits.concat(grid.segments_of(0)))
        return PackedBits.concat(pieces)

    def _one_bit_tree_batched(
        self, cluster: Cluster, matrix: np.ndarray
    ) -> PackedBits:
        """Tree variant on the lockstep engine.

        Each level's child-into-parent merges run in *waves* by sibling index
        ``(rank - 1) % arity``: a wave touches each parent at most once, so
        batching across parents preserves every parent generator's
        sequential child-merge order (ascending rank) and the running
        subtree weights — bit-for-bit the scalar schedule.
        """
        meta = cluster.topology.meta
        arity, root = meta["arity"], meta["root"]
        num = self.num_workers
        depth_of = [0] * num
        for rank in range(1, num):
            depth_of[rank] = depth_of[(rank - 1) // arity] + 1
        max_depth = max(depth_of)
        levels: list[list[int]] = [[] for _ in range(max_depth + 1)]
        for rank, depth in enumerate(depth_of):
            levels[depth].append(rank)

        model = cluster.cost_model
        metrics = cluster.obs.metrics
        tracer = cluster.obs.tracer
        dimension = matrix.shape[1]
        words = PackedBitsBatch.from_sign_matrix(matrix).words.copy()
        lengths = np.full(num, dimension, dtype=np.int64)
        weight = np.ones(num, dtype=np.int64)
        nbytes = (dimension + 7) // 8

        # Reduce: deepest level first; each level is one synchronous step.
        with tracer.span("reduce-scatter", cat="phase", tag="m-tree-up"):
            cluster.charge(Phase.COMPRESSION, model.compress_time(dimension))
            for level in reversed(levels[1:]):
                for sibling in range(arity):
                    wave = [r for r in level if (r - 1) % arity == sibling]
                    if not wave:
                        continue
                    wave_arr = np.asarray(wave)
                    parent_arr = (wave_arr - 1) // arity
                    received = PackedBitsBatch._trusted(
                        words[wave_arr], lengths[wave_arr]
                    )
                    local = PackedBitsBatch._trusted(
                        words[parent_arr], lengths[parent_arr]
                    )
                    transient = transient_vector_batch(
                        local,
                        received_weights=weight[wave_arr],
                        local_weights=weight[parent_arr],
                        rngs=[self.rngs[int(p)] for p in parent_arr],
                    )
                    if metrics is not None:
                        metrics.counter("marsit.transient_draws").inc(
                            int((received ^ local).popcounts().sum())
                        )
                        metrics.counter("marsit.merged_bits").inc(
                            int(local.lengths.sum())
                        )
                    merged = merge_sign_bits_batch(received, local, transient)
                    words[parent_arr] = merged.words
                    weight[parent_arr] += weight[wave_arr]
                transfer = cluster.exchange(
                    [(rank, (rank - 1) // arity, nbytes) for rank in level],
                    tag="m-tree-up",
                )
                overlapped = model.rng_time(dimension)
                cluster.charge(
                    Phase.COMPRESSION, max(0.0, overlapped - transfer)
                )
                cluster.charge(Phase.COMPRESSION, model.bitop_time(dimension))
        if int(weight[root]) != num:
            raise AssertionError("tree reduce missed workers")

        # Broadcast: shallowest level first.
        with tracer.span("all-gather", cat="phase", tag="m-tree-down"):
            for level in levels[1:]:
                level_arr = np.asarray(level)
                words[level_arr] = words[(level_arr - 1) // arity]
                cluster.exchange(
                    [((rank - 1) // arity, rank, nbytes) for rank in level],
                    tag="m-tree-down",
                )
        if self.config.verify_consensus and num > 1:
            if (words != words[0]).any():
                raise AssertionError("tree consensus violated")
        return PackedBits(words=words[0], length=dimension)

    # ------------------------------------------------------------------
    # full-precision path
    # ------------------------------------------------------------------
    def _full_precision_sync(
        self, cluster: Cluster, vectors: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Lines 12-13: FP32 all-reduce mean of the compensated updates."""
        if self.num_workers == 1:
            return [vectors[0].copy()]
        with cluster.obs.tracer.span("fp-allreduce", cat="phase"):
            if cluster.topology.name == "torus":
                return torus_allreduce_mean(cluster, vectors)
            if cluster.topology.name == "tree":
                from repro.allreduce.tree import tree_allreduce

                wire = [np.asarray(v, dtype=np.float32) for v in vectors]
                return tree_allreduce(
                    cluster, wire, finalize=lambda x: x / self.num_workers
                )
            return ring_allreduce_mean(cluster, vectors)
