"""Marsit synchronization (paper Algorithm 1).

Each round every worker holds an update ``g_t^(m)`` (the local-stepsize-scaled
gradient, possibly momentum/Adam-transformed) and a compensation vector
``c_t^(m)``.  The synchronizer:

1. forms the compensated update ``g <- g_t^(m) + c_t^(m)`` (line 1);
2. on a **one-bit round** (``t mod K != 0``): compiles the cluster topology
   to a :class:`~repro.sched.plan.SyncPlan` (once, cached) and hands it to
   the configured executor, which runs the multi-hop reduce where every hop
   applies the ``⊙`` merge of :mod:`repro.core.sign_ops` to sign-bit
   segments (lines 4-8), gathers the consensus bit vector, and returns
   ``g_t = eta_s * signs`` (line 9); compensation becomes ``c <- g - g_t``
   (line 10);
3. on a **full-precision round** (``t mod K == 0``): all-reduces ``g`` in
   FP32 and resets ``c <- 0`` (lines 12-13).

The topology knowledge lives in the per-topology compilers registered in
:mod:`repro.allreduce`; the hop semantics, RNG streams, metrics, and the
Section 4.1.1 overlap charges live in the two :mod:`repro.sched` executors.
This module only owns the algorithm state (compensation, RNGs, LR schedule)
and the plan cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.comm.cluster import Cluster
from repro.sched import executor_names, get_executor
from repro.sched.plan import CompileContext, SyncPlan, full_precision_plan

__all__ = ["MarsitConfig", "MarsitState", "MarsitSynchronizer", "SyncReport"]


@dataclass
class MarsitConfig:
    """Hyper-parameters of Algorithm 1.

    Attributes:
        global_lr: ``eta_s``, the stepsize applied to the consensus signs.
        full_precision_every: ``K``; rounds with ``t % K == 0`` synchronize
            in FP32 and reset compensation.  ``None`` means never (the paper's
            plain "Marsit", i.e. ``K = infinity``).
        seed: root seed for the per-worker transient-vector generators.
        global_lr_schedule: optional ``round_idx -> multiplier`` applied on
            top of ``global_lr`` (the experiments decay the LR at every
            full-precision synchronization).
        use_compensation: ablation hook — ``False`` zeroes the compensation
            vector every round (Section 4.1.3's mechanism disabled), so the
            magnitude residual of each one-bit step is discarded instead of
            carried forward.
        segment_elems: when set and the topology is a ring, the one-bit sync
            runs as a *segmented ring* (paper ref [25]): the vector is cut
            into fixed-size pipeline segments, each synchronized by its own
            ring pass — Section 5's "easily extended to segmented-ring
            all-reduce".
        engine: which :mod:`repro.sched` executor interprets the plan.
            ``"batched"`` (default) runs the lane-stacked lockstep path —
            every synchronous step's merges and transfers execute as one
            numpy op over all lanes; ``"scalar"`` keeps the per-message
            reference path.  Both consume identical per-rank RNG streams, so
            results are bit-for-bit equal.
        verify_consensus: assert after every one-bit round that all workers
            hold identical bits.  The check costs O(M * D) per round, so
            benchmarks turn it off.
    """

    global_lr: float
    full_precision_every: int | None = None
    seed: int = 0
    global_lr_schedule: Callable[[int], float] | None = None
    use_compensation: bool = True
    segment_elems: int | None = None
    engine: str = "batched"
    verify_consensus: bool = True

    def __post_init__(self) -> None:
        if self.global_lr <= 0:
            raise ValueError("global_lr must be positive")
        if self.full_precision_every is not None and self.full_precision_every < 1:
            raise ValueError("full_precision_every must be >= 1 or None")
        if self.segment_elems is not None and self.segment_elems < 1:
            raise ValueError("segment_elems must be >= 1 or None")
        if self.engine not in executor_names():
            raise ValueError(
                f"engine must be one of {', '.join(executor_names())}, "
                f"got {self.engine!r}"
            )

    def validate_topology(self, name: str) -> None:
        """Check ``name`` names a registered topology with a one-bit compiler."""
        from repro.allreduce import get_topology, one_bit_topology_names

        entry = get_topology(name)
        if entry.compile_one_bit is None:
            raise ValueError(
                "Marsit one-bit sync requires a topology with a SyncPlan "
                f"compiler ({', '.join(one_bit_topology_names())}), "
                f"got {name!r}"
            )

    def is_full_precision_round(self, round_idx: int) -> bool:
        if self.full_precision_every is None:
            return False
        return round_idx % self.full_precision_every == 0

    def effective_global_lr(self, round_idx: int) -> float:
        if self.global_lr_schedule is None:
            return self.global_lr
        return self.global_lr * self.global_lr_schedule(round_idx)


@dataclass
class MarsitState:
    """Per-worker compensation vectors ``c_t^(m)``, stacked ``(M, D)``.

    One contiguous matrix instead of a list of per-worker vectors, so the
    round update ``c <- g - g_t`` is a single broadcast expression.  Row
    ``compensation[m]`` is still worker ``m``'s vector, so indexing callers
    (checkpointing, tests) are unchanged; a list of equal-length vectors is
    accepted and stacked.
    """

    compensation: np.ndarray

    def __post_init__(self) -> None:
        self.compensation = np.asarray(self.compensation, dtype=np.float64)
        if self.compensation.ndim != 2:
            raise ValueError(
                "compensation must be a (num_workers, dimension) matrix"
            )

    @classmethod
    def zeros(cls, num_workers: int, dimension: int) -> "MarsitState":
        return cls(compensation=np.zeros((num_workers, dimension)))


@dataclass
class SyncReport:
    """What one :meth:`MarsitSynchronizer.synchronize` call did."""

    round_idx: int
    full_precision: bool
    bits_per_element: float
    global_updates: list[np.ndarray] = field(repr=False)
    plan_digest: str | None = None
    num_plan_steps: int = 0
    #: True when this round ran crash recovery: the topology was degraded to
    #: the survivor set and the round was forced to full precision to reset
    #: compensation (the paper's K-sync mechanism as a recovery anchor).
    recovered: bool = False


class MarsitSynchronizer:
    """Drives Algorithm 1 over any registered topology with a plan compiler.

    The synchronizer owns the compensation state and one RNG per worker (the
    transient vector is drawn by the *receiving* worker, so randomness is
    local — no shared seed is needed for consensus because the merged bits
    themselves travel the ring).  Topologies are compiled to
    :class:`~repro.sched.plan.SyncPlan` once per (kind, topology) and cached.
    """

    def __init__(
        self,
        config: MarsitConfig,
        num_workers: int,
        dimension: int,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        self.config = config
        self.num_workers = num_workers
        self.dimension = dimension
        self.state = MarsitState.zeros(num_workers, dimension)
        seeds = np.random.SeedSequence(config.seed).spawn(num_workers)
        self.rngs = [np.random.default_rng(seed) for seed in seeds]
        self._plans: dict[tuple, tuple[SyncPlan, str]] = {}
        # Crash recovery state: the original ranks still participating, and
        # whether the next round must resync in full precision.
        self._active: list[int] = list(range(num_workers))
        self._inactive: list[int] = []
        self._forced_fp = False

    @property
    def active_workers(self) -> list[int]:
        """Original ranks of the workers still participating."""
        return list(self._active)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def synchronize(
        self,
        cluster: Cluster,
        updates: list[np.ndarray],
        round_idx: int,
    ) -> SyncReport:
        """Run Algorithm 1 for one round.

        Args:
            cluster: cluster with ``num_workers`` workers over a registered
                topology.
            updates: per-worker ``g_t^(m)`` (local LR already applied).
            round_idx: the synchronization index ``t``.

        Returns:
            A :class:`SyncReport` whose ``global_updates[m]`` is the vector
            worker ``m`` subtracts from its model.  On one-bit rounds all
            entries are identical (consensus); on full-precision rounds they
            are identical up to FP32 wire rounding.
        """
        faults = cluster.faults
        recovered = False
        if faults is not None:
            faults.begin_round(round_idx)
            crashed = faults.take_new_crashes()
            if crashed:
                self._recover(cluster, crashed, faults)
                recovered = True
        if cluster.num_workers != len(self._active):
            raise ValueError("cluster size does not match synchronizer")
        if len(updates) != self.num_workers:
            raise ValueError("one update vector per worker required")
        stacked = [np.asarray(update, dtype=np.float64) for update in updates]
        for vector in stacked:
            if vector.shape != (self.dimension,):
                raise ValueError(
                    f"update dimension {vector.shape} != ({self.dimension},)"
                )
        # One (M, D) matrix expression forms every worker's compensated
        # update at once (line 1 of Algorithm 1).  After a crash only the
        # survivors' rows go on the wire; dead rows stay parked (their
        # updates are ignored and their compensation pinned to zero).
        compensated = np.stack(stacked) + self.state.compensation
        active = self._active
        degraded = len(active) != self.num_workers
        vectors = compensated[active] if degraded else compensated

        obs = cluster.obs
        full_precision = (
            self.config.is_full_precision_round(round_idx) or self._forced_fp
        )
        self._forced_fp = False
        with obs.tracer.span(
            "round",
            cat="marsit",
            round=round_idx,
            engine=self.config.engine,
            full_precision=full_precision,
        ):
            if full_precision:
                outputs, plan_digest, num_plan_steps = (
                    self._full_precision_sync(cluster, vectors)
                )
                self.state.compensation = np.zeros(
                    (self.num_workers, self.dimension)
                )
                if degraded:
                    # Dead ranks get the consensus update so trainer-side
                    # indexing (``updates[0]``) stays valid either way.
                    global_updates = [outputs[0].copy()] * self.num_workers
                    for pos, rank in enumerate(active):
                        global_updates[rank] = outputs[pos]
                else:
                    global_updates = outputs
                report = SyncReport(
                    round_idx=round_idx,
                    full_precision=True,
                    bits_per_element=32.0,
                    global_updates=global_updates,
                    plan_digest=plan_digest,
                    num_plan_steps=num_plan_steps,
                    recovered=recovered,
                )
            else:
                consensus_signs, plan_digest, num_plan_steps = (
                    self._one_bit_sync(cluster, vectors)
                )
                eta_s = self.config.effective_global_lr(round_idx)
                global_update = eta_s * consensus_signs
                if self.config.use_compensation:
                    compensation = compensated - global_update
                    if degraded:
                        compensation[self._inactive] = 0.0
                    self.state.compensation = compensation
                else:
                    self.state.compensation = np.zeros(
                        (self.num_workers, self.dimension)
                    )
                report = SyncReport(
                    round_idx=round_idx,
                    full_precision=False,
                    bits_per_element=1.0,
                    global_updates=[
                        global_update.copy() for _ in range(self.num_workers)
                    ],
                    plan_digest=plan_digest,
                    num_plan_steps=num_plan_steps,
                    recovered=recovered,
                )
        metrics = obs.metrics
        if metrics is not None:
            metrics.gauge("marsit.bits_per_element").set(report.bits_per_element)
            metrics.gauge("marsit.comp_norm").set(
                float(
                    np.mean(
                        np.linalg.norm(self.state.compensation[active], axis=1)
                    )
                )
            )
            if not full_precision:
                # Live Figure-1b statistic: how often the one-bit consensus
                # matches the sign of the exact full-precision mean update.
                mean_sign = np.where(vectors.mean(axis=0) >= 0, 1.0, -1.0)
                metrics.gauge("marsit.sign_agreement").set(
                    float(np.mean(consensus_signs == mean_sign))
                )
        return report

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _recover(self, cluster: Cluster, crashed, faults) -> None:
        """Degrade to the survivor set and force an early FP resync.

        Quorum check -> rebuild the topology over the survivors (same family
        when it can shrink, ring otherwise) -> reconfigure the cluster in
        place -> re-rank the injector -> force this round to full precision
        so every survivor's compensation is reset (the paper's K-sync
        mechanism doubling as the recovery anchor).
        """
        from repro.faults.recovery import check_quorum, degraded_topology

        crashed_set = set(crashed)
        survivors = [rank for rank in self._active if rank not in crashed_set]
        check_quorum(faults.plan, self.num_workers, survivors)
        topology = degraded_topology(cluster.topology, len(survivors))
        cluster.reconfigure(topology, drop_pending=True)
        faults.set_active(survivors)
        self._active = survivors
        self._inactive = [
            rank for rank in range(self.num_workers) if rank not in survivors
        ]
        self._forced_fp = True
        faults.note_recovery(tuple(crashed), survivors)

    # ------------------------------------------------------------------
    # plan cache
    # ------------------------------------------------------------------
    def _plan_for(self, cluster: Cluster, kind: str) -> tuple[SyncPlan, str]:
        """Compile (or fetch) the plan for ``cluster``'s topology.

        The worker count is the *cluster*'s, not the synchronizer's — after
        crash recovery the degraded topology is smaller, and its plans cache
        under a distinct key.
        """
        topology = cluster.topology
        meta_items = tuple(sorted(topology.meta.items()))
        key = (
            kind,
            topology.name,
            meta_items,
            cluster.num_workers,
            self.config.segment_elems,
        )
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        if kind == "full_precision":
            plan = full_precision_plan(
                topology.name, cluster.num_workers, self.dimension
            )
        else:
            from repro.allreduce import get_topology

            self.config.validate_topology(topology.name)
            compiler = get_topology(topology.name).compile_one_bit
            plan = compiler(
                CompileContext(
                    num_workers=cluster.num_workers,
                    dimension=self.dimension,
                    meta=dict(topology.meta),
                    segment_elems=self.config.segment_elems,
                )
            )
        plan.validate()
        cached = (plan, plan.digest())
        self._plans[key] = cached
        return cached

    # ------------------------------------------------------------------
    # one-bit path
    # ------------------------------------------------------------------
    def _one_bit_sync(
        self, cluster: Cluster, vectors: np.ndarray
    ) -> tuple[np.ndarray, str | None, int]:
        """Plan-driven sign aggregation; returns the consensus ``{-1,+1}``.

        ``vectors`` is the stacked compensated-update matrix of the *active*
        workers (one row per cluster rank); the scalar engine indexes its
        rows, the batched engine consumes it whole.  Survivors keep their
        original RNG streams across a recovery.
        """
        if vectors.shape[0] == 1:
            bits = (vectors[0] >= 0).astype(np.uint8)
            return bits.astype(np.float64) * 2.0 - 1.0, None, 0
        plan, digest = self._plan_for(cluster, "one_bit")
        executor = get_executor(self.config.engine)
        if len(self._active) == self.num_workers:
            rngs = self.rngs
        else:
            rngs = [self.rngs[rank] for rank in self._active]
        final = executor.run_one_bit(
            plan,
            cluster,
            vectors,
            rngs,
            verify_consensus=self.config.verify_consensus,
        )
        # The single unpack of the whole pipeline: words -> {-1, +1} floats.
        return final.to_signs(), digest, plan.num_steps

    # ------------------------------------------------------------------
    # full-precision path
    # ------------------------------------------------------------------
    def _full_precision_sync(
        self, cluster: Cluster, vectors: np.ndarray
    ) -> tuple[list[np.ndarray], str | None, int]:
        """Lines 12-13: FP32 all-reduce mean of the compensated updates."""
        if vectors.shape[0] == 1:
            return [vectors[0].copy()], None, 0
        plan, digest = self._plan_for(cluster, "full_precision")
        executor = get_executor(self.config.engine)
        outputs = executor.run_full_precision(plan, cluster, vectors)
        return outputs, digest, plan.num_steps
