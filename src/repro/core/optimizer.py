"""Marsit-driven optimizers (paper Algorithm 2 and Section 5).

Algorithm 2 wires Marsit into SGD: the local stochastic gradient is scaled by
``eta_l`` and handed to Algorithm 1, whose output ``g_t`` is subtracted from
the (replicated) global model.  The experiments additionally use Momentum for
image classification and Adam for sentiment analysis; those variants apply
the base optimizer's gradient transform *locally, before* synchronization —
the same structure as 1-bit Adam — so the wire still carries one bit.

These classes return per-worker update vectors; applying them to model
parameters is the trainer's job (:mod:`repro.train`), keeping the optimizer
reusable for raw-vector experiments (quadratic objectives in the theory
benches).
"""

from __future__ import annotations

import numpy as np

from repro.comm.cluster import Cluster
from repro.core.marsit import MarsitConfig, MarsitSynchronizer, SyncReport

__all__ = ["MarsitAdam", "MarsitMomentum", "MarsitSGD"]


class MarsitSGD:
    """Algorithm 2: plain SGD through Marsit synchronization."""

    def __init__(
        self,
        config: MarsitConfig,
        local_lr: float,
        num_workers: int,
        dimension: int,
    ) -> None:
        if local_lr <= 0:
            raise ValueError("local_lr must be positive")
        self.local_lr = local_lr
        self.synchronizer = MarsitSynchronizer(config, num_workers, dimension)
        self.num_workers = num_workers
        self.dimension = dimension

    def transform(self, rank: int, grad: np.ndarray) -> np.ndarray:
        """Local gradient transform; plain SGD just scales by ``eta_l``."""
        return self.local_lr * np.asarray(grad, dtype=np.float64)

    def step(
        self,
        cluster: Cluster,
        grads: list[np.ndarray],
        round_idx: int,
    ) -> SyncReport:
        """One synchronization round; ``global_updates`` are to be subtracted."""
        if len(grads) != self.num_workers:
            raise ValueError("one gradient per worker required")
        updates = [self.transform(rank, grad) for rank, grad in enumerate(grads)]
        return self.synchronizer.synchronize(cluster, updates, round_idx)


class MarsitMomentum(MarsitSGD):
    """Heavy-ball momentum applied locally before one-bit synchronization."""

    def __init__(
        self,
        config: MarsitConfig,
        local_lr: float,
        num_workers: int,
        dimension: int,
        momentum: float = 0.9,
    ) -> None:
        super().__init__(config, local_lr, num_workers, dimension)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._buffers = [np.zeros(dimension) for _ in range(num_workers)]

    def transform(self, rank: int, grad: np.ndarray) -> np.ndarray:
        buffer = self._buffers[rank]
        buffer *= self.momentum
        buffer += np.asarray(grad, dtype=np.float64)
        return self.local_lr * buffer


class MarsitAdam(MarsitSGD):
    """Adam preconditioning applied locally (1-bit-Adam-style) before sync."""

    def __init__(
        self,
        config: MarsitConfig,
        local_lr: float,
        num_workers: int,
        dimension: int,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(config, local_lr, num_workers, dimension)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros(dimension) for _ in range(num_workers)]
        self._v = [np.zeros(dimension) for _ in range(num_workers)]
        self._step_count = [0] * num_workers

    def transform(self, rank: int, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad, dtype=np.float64)
        self._step_count[rank] += 1
        t = self._step_count[rank]
        self._m[rank] = self.beta1 * self._m[rank] + (1 - self.beta1) * grad
        self._v[rank] = self.beta2 * self._v[rank] + (1 - self.beta2) * grad**2
        m_hat = self._m[rank] / (1 - self.beta1**t)
        v_hat = self._v[rank] / (1 - self.beta2**t)
        return self.local_lr * m_hat / (np.sqrt(v_hat) + self.eps)
