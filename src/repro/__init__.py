"""Marsit reproduction: sign-bit synchronization for multi-hop all-reduce.

Reproduction of Wu et al., "Sign Bit is Enough: A Learning Synchronization
Framework for Multi-hop All-reduce with Ultimate Compression" (DAC 2022),
as a self-contained simulation stack:

- :mod:`repro.core` — Marsit itself (the ``⊙`` merge, Algorithm 1/2).
- :mod:`repro.comm` — bit codecs, topologies, simulated cluster, timing.
- :mod:`repro.allreduce` — ring/torus/PS/tree/gossip collectives.
- :mod:`repro.compression` — signSGD/SSDM/EF/QSGD/... baselines.
- :mod:`repro.nn` — a from-scratch numpy NN framework + model zoo.
- :mod:`repro.data` — synthetic stand-ins for the paper's datasets.
- :mod:`repro.train` — the M-worker distributed trainer and strategies.
- :mod:`repro.theory` — bound evaluators and empirical deviation metrics.

Quickstart::

    from repro import quick_train
    result = quick_train(strategy="marsit", num_workers=8, rounds=100)
    print(result.final_accuracy)
"""

from repro.core import MarsitConfig, MarsitSynchronizer
from repro.train import (
    CascadingSSDMStrategy,
    DistributedTrainer,
    EFSignSGDStrategy,
    MarsitStrategy,
    PSGDStrategy,
    SSDMStrategy,
    SignSGDMajorityStrategy,
    TrainConfig,
    TrainResult,
)

__version__ = "1.0.0"

__all__ = [
    "CascadingSSDMStrategy",
    "DistributedTrainer",
    "EFSignSGDStrategy",
    "MarsitConfig",
    "MarsitStrategy",
    "MarsitSynchronizer",
    "PSGDStrategy",
    "SSDMStrategy",
    "SignSGDMajorityStrategy",
    "TrainConfig",
    "TrainResult",
    "__version__",
    "quick_train",
]


def quick_train(
    strategy: str = "marsit",
    num_workers: int = 4,
    rounds: int = 100,
    topology: str = "ring",
    seed: int = 0,
    observability=None,
    callbacks=None,
    faults=None,
) -> TrainResult:
    """One-call demo: train an MLP on MNIST-like data with a named scheme.

    Args:
        strategy: one of ``psgd``, ``signsgd``, ``ef-signsgd``, ``ssdm``,
            ``cascading``, ``marsit``, ``marsit-k`` (K = 25).
        topology: any registered topology name (``ring``, ``torus``,
            ``tree``, ``halving_doubling``, ...); torus requires a square M,
            halving-doubling a power-of-two M.
        observability: optional :class:`repro.obs.Observability` attached to
            the cluster (span tracer and/or metrics registry).
        callbacks: optional sequence of :class:`repro.obs.TrainerCallback`.
        faults: optional :class:`repro.faults.FaultPlan` injected into the
            cluster (jitter, stragglers, drops, bit-flips, crashes).

    Returns:
        The :class:`repro.train.TrainResult` with accuracy/time/bytes
        history.
    """
    import numpy as np

    from repro.data import mnist_like, train_test_split
    from repro.nn.zoo import mlp

    data = mnist_like(num_samples=1200, size=8, noise=0.6, seed=seed)
    train_set, test_set = train_test_split(data, 0.25, seed=seed)

    def factory():
        return mlp(64, hidden=(32,), num_classes=10, seed=7)

    dimension = factory().num_parameters()
    builders = {
        "psgd": lambda: PSGDStrategy(lr=0.05, num_workers=num_workers),
        "signsgd": lambda: SignSGDMajorityStrategy(
            lr=0.002, num_workers=num_workers
        ),
        "ef-signsgd": lambda: EFSignSGDStrategy(lr=0.05, num_workers=num_workers),
        "ssdm": lambda: SSDMStrategy(
            lr=0.1 / np.sqrt(dimension), num_workers=num_workers
        ),
        "cascading": lambda: CascadingSSDMStrategy(lr=0.05, num_workers=num_workers),
        "marsit": lambda: MarsitStrategy(
            local_lr=0.05,
            global_lr=4e-3,
            num_workers=num_workers,
            dimension=dimension,
        ),
        "marsit-k": lambda: MarsitStrategy(
            local_lr=0.05,
            global_lr=8e-3,
            num_workers=num_workers,
            dimension=dimension,
            full_precision_every=25,
        ),
    }
    if strategy not in builders:
        raise ValueError(f"unknown strategy {strategy!r}; one of {sorted(builders)}")
    torus_shape = None
    if topology == "torus":
        side = int(num_workers**0.5)
        if side * side != num_workers:
            raise ValueError("torus quickstart needs a square worker count")
        torus_shape = (side, side)
    config = TrainConfig(
        num_workers=num_workers,
        rounds=rounds,
        batch_size=32,
        topology=topology,
        torus_shape=torus_shape,
        eval_every=max(1, rounds // 10),
        seed=seed,
        faults=faults,
    )
    trainer = DistributedTrainer(
        factory,
        train_set,
        test_set,
        builders[strategy](),
        config,
        callbacks=callbacks,
        observability=observability,
    )
    return trainer.run()
