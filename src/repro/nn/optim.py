"""Single-model optimizers for plain (non-distributed) training.

The distributed strategies in :mod:`repro.train` own their optimizer state
to keep workers fair; these classes are the ordinary single-process
counterparts so the NN framework is usable on its own::

    optimizer = Adam(model.parameters(), lr=1e-3)
    for x, y in batches:
        model.zero_grad()
        loss = loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        optimizer.step()

All support decoupled weight decay (AdamW-style for :class:`Adam`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "Adam", "Optimizer"]


class Optimizer:
    """Base: holds parameters and applies per-parameter updates."""

    def __init__(self, parameters: list[Parameter], lr: float,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for index, param in enumerate(self.parameters):
            direction = self._direction(index, param)
            if self.weight_decay:
                param.data *= 1.0 - self.lr * self.weight_decay
            param.data -= self.lr * direction

    def _direction(self, index: int, param: Parameter) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Plain or heavy-ball SGD with decoupled weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._buffers = [np.zeros_like(p.data) for p in parameters]

    def _direction(self, index: int, param: Parameter) -> np.ndarray:
        if self.momentum:
            buffer = self._buffers[index]
            buffer *= self.momentum
            buffer += param.grad
            return buffer
        return param.grad


class Adam(Optimizer):
    """Adam with bias correction and AdamW-style decoupled weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]
        self._t = 0
        self._stepped_index: int | None = None

    def step(self) -> None:
        self._t += 1
        super().step()

    def _direction(self, index: int, param: Parameter) -> np.ndarray:
        self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * param.grad
        self._v[index] = (
            self.beta2 * self._v[index] + (1 - self.beta2) * param.grad**2
        )
        m_hat = self._m[index] / (1 - self.beta1**self._t)
        v_hat = self._v[index] / (1 - self.beta2**self._t)
        return m_hat / (np.sqrt(v_hat) + self.eps)
