"""Weight initializers."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform"]


def kaiming_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int
) -> np.ndarray:
    """He-uniform init: U(-sqrt(6/fan_in), +sqrt(6/fan_in)); ReLU-friendly."""
    if fan_in < 1:
        raise ValueError("fan_in must be >= 1")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform init over the first two axes' fans."""
    if len(shape) < 2:
        raise ValueError("xavier_uniform needs at least a 2-D shape")
    fan_in, fan_out = shape[1], shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
