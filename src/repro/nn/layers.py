"""Core layers with explicit forward/backward passes.

Convolutions use im2col so the heavy lifting is a single GEMM per pass, which
is what keeps the scaled-down paper models trainable in pure numpy.  Each
layer caches exactly what its backward needs and invalidates the cache after
use, so calling ``backward`` twice without a fresh forward raises instead of
silently reusing stale activations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_uniform, xavier_uniform
from repro.nn.module import Module, Parameter

__all__ = [
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "Tanh",
]


class _Cache:
    """Single-use forward cache; raises on double-backward."""

    def __init__(self) -> None:
        self._store: dict | None = None

    def put(self, **items: object) -> None:
        self._store = items

    def take(self) -> dict:
        if self._store is None:
            raise RuntimeError("backward called without a preceding forward")
        store, self._store = self._store, None
        return store


class Linear(Module):
    """Affine map ``y = x W^T + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform(rng, (out_features, in_features), fan_in=in_features)
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features))
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache.put(x=x)
        out = x @ self.weight.data.T
        if self.use_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._cache.take()["x"]
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad.reshape(-1, self.out_features)
        self.weight.grad += flat_g.T @ flat_x
        if self.use_bias:
            self.bias.grad += flat_g.sum(axis=0)
        return (flat_g @ self.weight.data).reshape(x.shape)


def _im2col_indices(
    height: int, width: int, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Row/col gather indices for im2col on a padded image."""
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    i0 = np.repeat(np.arange(kernel), kernel)
    j0 = np.tile(np.arange(kernel), kernel)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    return rows, cols, out_h, out_w


class Conv2d(Module):
    """2-D convolution (NCHW) via im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_uniform(
                rng,
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
            )
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_channels))
        self._cache = _Cache()

    def _im2col(self, x: np.ndarray) -> tuple[np.ndarray, tuple]:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        rows, cols, out_h, out_w = _im2col_indices(h, w, k, s, p)
        # (N, C, k*k, out_h*out_w)
        patches = padded[:, :, rows, cols]
        # -> (C * k * k, N * out_h * out_w)
        col = patches.transpose(1, 2, 0, 3).reshape(c * k * k, -1)
        return col, (x.shape, padded.shape, rows, cols, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        col, geometry = self._im2col(x)
        n = x.shape[0]
        _, _, _, _, out_h, out_w = geometry
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = w_mat @ col  # (out_c, N*out_h*out_w)
        out = out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
        if self.use_bias:
            out = out + self.bias.data.reshape(1, -1, 1, 1)
        self._cache.put(col=col, geometry=geometry)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cached = self._cache.take()
        col, geometry = cached["col"], cached["geometry"]
        x_shape, padded_shape, rows, cols, out_h, out_w = geometry
        n, c, h, w = x_shape
        k, p = self.kernel_size, self.padding
        grad_mat = grad.transpose(1, 0, 2, 3).reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat @ col.T).reshape(self.weight.shape)
        if self.use_bias:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        dcol = w_mat.T @ grad_mat  # (C*k*k, N*out_h*out_w)
        patches = dcol.reshape(c, k * k, n, out_h * out_w).transpose(2, 0, 1, 3)
        dpadded = np.zeros(padded_shape)
        np.add.at(dpadded, (slice(None), slice(None), rows, cols), patches)
        if p:
            return dpadded[:, :, p:-p, p:-p]
        return dpadded

    def flops_per_example(self, height: int, width: int) -> float:
        """MACs x2 for one image; used by the timing model."""
        _, _, out_h, out_w = (
            0,
            0,
            (height + 2 * self.padding - self.kernel_size) // self.stride + 1,
            (width + 2 * self.padding - self.kernel_size) // self.stride + 1,
        )
        macs = (
            self.out_channels
            * out_h
            * out_w
            * self.in_channels
            * self.kernel_size**2
        )
        return 2.0 * macs


class MaxPool2d(Module):
    """Non-overlapping-friendly max pooling (kernel == stride typical)."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        rows, cols, _, _ = _im2col_indices(h, w, k, s, padding=0)
        patches = x[:, :, rows, cols]  # (N, C, k*k, out_h*out_w)
        argmax = patches.argmax(axis=2)
        out = np.take_along_axis(patches, argmax[:, :, None, :], axis=2)
        out = out.squeeze(2).reshape(n, c, out_h, out_w)
        self._cache.put(
            argmax=argmax, rows=rows, cols=cols, x_shape=x.shape,
            out_h=out_h, out_w=out_w,
        )
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cached = self._cache.take()
        argmax, rows, cols = cached["argmax"], cached["rows"], cached["cols"]
        n, c, h, w = cached["x_shape"]
        out_h, out_w = cached["out_h"], cached["out_w"]
        grad_flat = grad.reshape(n, c, out_h * out_w)
        dpatches = np.zeros((n, c, rows.shape[0], out_h * out_w))
        np.put_along_axis(
            dpatches, argmax[:, :, None, :], grad_flat[:, :, None, :], axis=2
        )
        dx = np.zeros((n, c, h, w))
        np.add.at(dx, (slice(None), slice(None), rows, cols), dpatches)
        return dx


class AvgPool2d(Module):
    """Global average pooling over spatial dims: (N,C,H,W) -> (N,C)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache.put(shape=x.shape)
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._cache.take()["shape"]
        return np.broadcast_to(
            grad.reshape(n, c, 1, 1) / (h * w), (n, c, h, w)
        ).copy()


class Flatten(Module):
    """(N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        super().__init__()
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache.put(shape=x.shape)
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._cache.take()["shape"])


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        self._cache.put(mask=mask)
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._cache.take()["mask"]


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x)
        self._cache.put(out=out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._cache.take()["out"]
        return grad * (1.0 - out**2)


class GELU(Module):
    """tanh-approximation GELU (the DistilBERT activation)."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self) -> None:
        super().__init__()
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        inner = self._C * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        self._cache.put(x=x, tanh_inner=tanh_inner)
        return 0.5 * x * (1.0 + tanh_inner)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cached = self._cache.take()
        x, tanh_inner = cached["x"], cached["tanh_inner"]
        sech2 = 1.0 - tanh_inner**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        return grad * (0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._cache.put(mask=None)
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        self._cache.put(mask=mask)
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask = self._cache.take()["mask"]
        return grad if mask is None else grad * mask


class _BatchNormBase(Module):
    """Shared BN math; subclasses define the reduction axes."""

    def __init__(self, num_features: int, momentum: float = 0.9,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = _Cache()

    def _axes(self) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._axes()
        shape = self._shape(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
        self._cache.put(x_hat=x_hat, inv_std=inv_std, axes=axes, shape=shape)
        return self.gamma.data.reshape(shape) * x_hat + self.beta.data.reshape(shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cached = self._cache.take()
        x_hat, inv_std = cached["x_hat"], cached["inv_std"]
        axes, shape = cached["axes"], cached["shape"]
        count = grad.size // self.num_features
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        dx_hat = grad * self.gamma.data.reshape(shape)
        if not self.training:
            return dx_hat * inv_std.reshape(shape)
        term = (
            dx_hat
            - dx_hat.mean(axis=axes).reshape(shape)
            - x_hat * (dx_hat * x_hat).mean(axis=axes).reshape(shape)
        )
        del count
        return term * inv_std.reshape(shape)


class BatchNorm2d(_BatchNormBase):
    """Batch norm over (N, H, W) per channel; input NCHW."""

    def _axes(self) -> tuple[int, ...]:
        return (0, 2, 3)

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNormBase):
    """Batch norm over N per feature; input (N, F)."""

    def _axes(self) -> tuple[int, ...]:
        return (0,)

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.num_features)


class LayerNorm(Module):
    """Normalization over the last axis (transformer style)."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self._cache = _Cache()

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache.put(x_hat=x_hat, inv_std=inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cached = self._cache.take()
        x_hat, inv_std = cached["x_hat"], cached["inv_std"]
        reduce_axes = tuple(range(grad.ndim - 1))
        self.gamma.grad += (grad * x_hat).sum(axis=reduce_axes)
        self.beta.grad += grad.sum(axis=reduce_axes)
        dx_hat = grad * self.gamma.data
        return (
            dx_hat
            - dx_hat.mean(axis=-1, keepdims=True)
            - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std


class Embedding(Module):
    """Token embedding lookup: int indices (N, T) -> (N, T, dim)."""

    def __init__(self, vocab_size: int, dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(xavier_uniform(rng, (vocab_size, dim)))
        self._cache = _Cache()

    def forward(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.vocab_size:
            raise ValueError("token index out of vocabulary range")
        self._cache.put(indices=indices)
        return self.weight.data[indices]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        indices = self._cache.take()["indices"]
        np.add.at(self.weight.grad, indices.reshape(-1), grad.reshape(-1, self.dim))
        return np.zeros(indices.shape)  # no gradient flows into int tokens


class Sequential(Module):
    """Chain of layers; backward runs in reverse."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad
