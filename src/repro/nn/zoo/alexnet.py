"""AlexNet-mini: the conv-pool-FC stack standing in for AlexNet.

Three conv/pool stages plus a dropout-regularized FC head — the same layer
vocabulary as AlexNet (conv, max-pool, ReLU, dropout, linear) at a scale a
numpy simulation trains in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.module import Module

__all__ = ["alexnet_mini"]


def alexnet_mini(
    in_channels: int = 3,
    image_size: int = 16,
    num_classes: int = 10,
    width: int = 16,
    seed: int = 0,
) -> Module:
    """Build AlexNet-mini for ``image_size`` x ``image_size`` inputs.

    ``image_size`` must be divisible by 8 (three 2x pools).
    """
    if image_size % 8 != 0:
        raise ValueError("image_size must be divisible by 8")
    rng = np.random.default_rng(seed)
    final_spatial = image_size // 8
    channels = (width, 2 * width, 3 * width)
    model = Sequential(
        Conv2d(in_channels, channels[0], kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(channels[0], channels[1], kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(channels[1], channels[2], kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dropout(0.3, seed=seed),
        Linear(channels[2] * final_spatial**2, 4 * width, rng=rng),
        ReLU(),
        Linear(4 * width, num_classes, rng=rng),
    )
    conv_macs = (
        in_channels * channels[0] * 9 * image_size**2
        + channels[0] * channels[1] * 9 * (image_size // 2) ** 2
        + channels[1] * channels[2] * 9 * (image_size // 4) ** 2
    )
    fc_macs = channels[2] * final_spatial**2 * 4 * width + 4 * width * num_classes
    model.flops_per_example = 6.0 * (conv_macs + fc_macs)
    return model
