"""DistilBERT-mini: transformer encoder for the IMDb-like sentiment task.

Token + learned positional embeddings, a stack of pre-LN encoder blocks with
real multi-head self-attention, mean pooling over time, and a classification
head — DistilBERT's shape at a numpy-trainable scale.  The experiments drive
it with the Adam variant, like the paper.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import TransformerEncoderBlock
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module, Parameter

__all__ = ["DistilBertMini", "distilbert_mini"]


class DistilBertMini(Module):
    """Encoder-only classifier over integer token sequences (N, T)."""

    def __init__(
        self,
        vocab_size: int,
        max_len: int,
        dim: int,
        num_heads: int,
        num_layers: int,
        ffn_dim: int,
        num_classes: int,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.max_len = max_len
        self.dim = dim
        self.token_embedding = Embedding(vocab_size, dim, rng=rng)
        self.position_embedding = Parameter(
            0.02 * rng.standard_normal((max_len, dim))
        )
        self.blocks = [
            TransformerEncoderBlock(dim, num_heads, ffn_dim, rng=rng, seed=seed + i)
            for i in range(num_layers)
        ]
        for index, block in enumerate(self.blocks):
            setattr(self, f"block_{index}", block)
        self.final_ln = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self._seq_len: int | None = None
        # ~2 matmul MACs per param per token + attention T^2 d term.
        self.flops_per_example = 6.0 * (
            num_layers * max_len * (4 * dim * dim + 2 * dim * ffn_dim)
            + num_layers * max_len * max_len * dim
        )

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError("tokens must be (N, T)")
        seq_len = tokens.shape[1]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} > max_len {self.max_len}")
        self._seq_len = seq_len
        x = self.token_embedding(tokens) + self.position_embedding.data[:seq_len]
        for block in self.blocks:
            x = block(x)
        x = self.final_ln(x)
        pooled = x.mean(axis=1)  # (N, dim)
        return self.head(pooled)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._seq_len is None:
            raise RuntimeError("backward called before forward")
        seq_len, self._seq_len = self._seq_len, None
        d_pooled = self.head.backward(grad)  # (N, dim)
        n = d_pooled.shape[0]
        dx = np.broadcast_to(
            d_pooled[:, None, :] / seq_len, (n, seq_len, self.dim)
        ).copy()
        dx = self.final_ln.backward(dx)
        for block in reversed(self.blocks):
            dx = block.backward(dx)
        self.position_embedding.grad[:seq_len] += dx.sum(axis=0)
        return self.token_embedding.backward(dx)


def distilbert_mini(
    vocab_size: int = 128,
    max_len: int = 16,
    dim: int = 32,
    num_heads: int = 4,
    num_layers: int = 2,
    ffn_dim: int = 64,
    num_classes: int = 2,
    seed: int = 0,
) -> DistilBertMini:
    """Default configuration used by the IMDb-like experiments."""
    return DistilBertMini(
        vocab_size=vocab_size,
        max_len=max_len,
        dim=dim,
        num_heads=num_heads,
        num_layers=num_layers,
        ffn_dim=ffn_dim,
        num_classes=num_classes,
        seed=seed,
    )
