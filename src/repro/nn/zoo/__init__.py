"""Model zoo: scaled-down versions of the paper's five workloads.

| Paper model | Zoo factory | Notes |
|---|---|---|
| AlexNet (MNIST/CIFAR-10) | :func:`alexnet_mini` | conv-pool stack + dropout FC head |
| ResNet-20 (CIFAR-10)     | :func:`resnet20` | 3 stages x 3 basic blocks, widths 16/32/64 |
| ResNet-18 (ImageNet)     | :func:`resnet18_mini` | 3 stages x 2 basic blocks |
| ResNet-50 (ImageNet)     | :func:`resnet50_mini` | bottleneck blocks, 4x expansion |
| DistilBERT (IMDb)        | :func:`distilbert_mini` | real MHSA encoder, GELU, pre-LN |

All factories take a seed so every simulated worker can build an identical
replica, and attach ``flops_per_example`` (forward+backward estimate) for the
timing model.
"""

from repro.nn.zoo.alexnet import alexnet_mini
from repro.nn.zoo.distilbert import DistilBertMini, distilbert_mini
from repro.nn.zoo.mlp import mlp
from repro.nn.zoo.resnet import resnet18_mini, resnet20, resnet50_mini

__all__ = [
    "DistilBertMini",
    "alexnet_mini",
    "distilbert_mini",
    "mlp",
    "resnet18_mini",
    "resnet20",
    "resnet50_mini",
]
