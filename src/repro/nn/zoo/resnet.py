"""CIFAR-style residual networks at three scales.

- :func:`resnet20` — the paper's ResNet-20 (3 stages x 3 basic blocks,
  widths 16/32/64), at reduced input resolution.
- :func:`resnet18_mini` — a lighter basic-block net standing in for
  ResNet-18 on the ImageNet-like workload.
- :func:`resnet50_mini` — bottleneck blocks with 4x expansion, the
  structural stand-in for ResNet-50.

Residual blocks implement backward explicitly: the incoming gradient splits
into the conv branch and the (possibly projected) shortcut and the two paths
re-merge at the block input.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Linear,
    ReLU,
    Sequential,
)
from repro.nn.module import Module

__all__ = ["BasicBlock", "BottleneckBlock", "resnet18_mini", "resnet20", "resnet50_mini"]


class BasicBlock(Module):
    """conv3x3-BN-ReLU-conv3x3-BN + shortcut, then ReLU."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False,
            rng=rng,
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, padding=1, bias=False, rng=rng
        )
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        self.has_projection = stride != 1 or in_channels != out_channels
        if self.has_projection:
            self.proj = Conv2d(
                in_channels, out_channels, 1, stride=stride, bias=False, rng=rng
            )
            self.proj_bn = BatchNorm2d(out_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        branch = self.bn2(self.conv2(self.relu1(self.bn1(self.conv1(x)))))
        shortcut = self.proj_bn(self.proj(x)) if self.has_projection else x
        return self.relu2(branch + shortcut)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad)
        d_branch = self.conv1.backward(
            self.bn1.backward(
                self.relu1.backward(self.conv2.backward(self.bn2.backward(grad)))
            )
        )
        if self.has_projection:
            d_short = self.proj.backward(self.proj_bn.backward(grad))
        else:
            d_short = grad
        return d_branch + d_short


class BottleneckBlock(Module):
    """1x1 reduce - 3x3 - 1x1 expand (x``expansion``) + shortcut."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        mid_channels: int,
        stride: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        out_channels = mid_channels * self.expansion
        self.conv1 = Conv2d(in_channels, mid_channels, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(mid_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(
            mid_channels, mid_channels, 3, stride=stride, padding=1, bias=False,
            rng=rng,
        )
        self.bn2 = BatchNorm2d(mid_channels)
        self.relu2 = ReLU()
        self.conv3 = Conv2d(mid_channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu3 = ReLU()
        self.has_projection = stride != 1 or in_channels != out_channels
        if self.has_projection:
            self.proj = Conv2d(
                in_channels, out_channels, 1, stride=stride, bias=False, rng=rng
            )
            self.proj_bn = BatchNorm2d(out_channels)
        self.out_channels = out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        branch = self.relu1(self.bn1(self.conv1(x)))
        branch = self.relu2(self.bn2(self.conv2(branch)))
        branch = self.bn3(self.conv3(branch))
        shortcut = self.proj_bn(self.proj(x)) if self.has_projection else x
        return self.relu3(branch + shortcut)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu3.backward(grad)
        d_branch = self.conv3.backward(self.bn3.backward(grad))
        d_branch = self.conv2.backward(self.bn2.backward(self.relu2.backward(d_branch)))
        d_branch = self.conv1.backward(self.bn1.backward(self.relu1.backward(d_branch)))
        if self.has_projection:
            d_short = self.proj.backward(self.proj_bn.backward(grad))
        else:
            d_short = grad
        return d_branch + d_short


class _ResNet(Module):
    """Stem conv + staged residual blocks + global pool + FC."""

    def __init__(
        self,
        block_kind: str,
        blocks_per_stage: int,
        widths: tuple[int, int, int],
        in_channels: int,
        num_classes: int,
        seed: int,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stem_relu = ReLU()
        blocks: list[Module] = []
        channels = widths[0]
        for stage, width in enumerate(widths):
            for index in range(blocks_per_stage):
                stride = 2 if stage > 0 and index == 0 else 1
                if block_kind == "basic":
                    block = BasicBlock(channels, width, stride, rng)
                    channels = width
                else:
                    block = BottleneckBlock(channels, width, stride, rng)
                    channels = block.out_channels
                blocks.append(block)
        self.body = Sequential(*blocks)
        self.pool = AvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem_relu(self.stem_bn(self.stem(x)))
        x = self.body(x)
        return self.fc(self.pool(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.fc.backward(grad))
        grad = self.body.backward(grad)
        return self.stem.backward(self.stem_bn.backward(self.stem_relu.backward(grad)))


def _attach_flops(model: _ResNet, image_size: int) -> None:
    # Rough but architecture-aware: conv MACs dominate; 6x for fwd + bwd.
    macs = 0.0
    spatial = float(image_size**2)
    for module in model.modules():
        if isinstance(module, Conv2d):
            macs += (
                module.in_channels
                * module.out_channels
                * module.kernel_size**2
                * spatial
                / max(1, module.stride**2)
            )
    model.flops_per_example = 6.0 * macs


def resnet20(
    in_channels: int = 3, image_size: int = 16, num_classes: int = 10, seed: int = 0
) -> Module:
    """The paper's CIFAR-10 ResNet-20 (0.27M params at full width)."""
    model = _ResNet("basic", 3, (16, 32, 64), in_channels, num_classes, seed)
    _attach_flops(model, image_size)
    return model


def resnet18_mini(
    in_channels: int = 3, image_size: int = 16, num_classes: int = 10, seed: int = 0
) -> Module:
    """Lighter basic-block net standing in for ResNet-18 on ImageNet."""
    model = _ResNet("basic", 2, (8, 16, 32), in_channels, num_classes, seed)
    _attach_flops(model, image_size)
    return model


def resnet50_mini(
    in_channels: int = 3, image_size: int = 16, num_classes: int = 10, seed: int = 0
) -> Module:
    """Bottleneck-block net (4x expansion) standing in for ResNet-50."""
    model = _ResNet("bottleneck", 2, (8, 16, 32), in_channels, num_classes, seed)
    _attach_flops(model, image_size)
    return model
