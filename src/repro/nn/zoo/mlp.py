"""Plain MLP — the fast workload for unit tests and Table 1's MNIST runs."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Flatten, Linear, ReLU, Sequential
from repro.nn.module import Module

__all__ = ["mlp"]


def mlp(
    in_features: int,
    hidden: tuple[int, ...] = (64,),
    num_classes: int = 10,
    seed: int = 0,
) -> Module:
    """Fully connected ReLU network; input may be any shape (flattened)."""
    rng = np.random.default_rng(seed)
    layers: list[Module] = [Flatten()]
    prev = in_features
    for width in hidden:
        layers.append(Linear(prev, width, rng=rng))
        layers.append(ReLU())
        prev = width
    layers.append(Linear(prev, num_classes, rng=rng))
    model = Sequential(*layers)
    flops = 0
    prev = in_features
    for width in (*hidden, num_classes):
        flops += 2 * prev * width
        prev = width
    model.flops_per_example = 3.0 * flops  # fwd + ~2x for backward
    return model
