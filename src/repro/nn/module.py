"""Parameter and Module base classes.

A :class:`Module` discovers its parameters and sub-modules through attribute
assignment (like a miniature torch.nn): setting ``self.weight = Parameter(w)``
registers a parameter; setting ``self.block = SomeModule()`` registers a
child.  Registration order is attribute-assignment order, which makes
:meth:`Module.flatten_grads` / :meth:`Module.set_flat_params` deterministic —
the property the distributed layer relies on so that all workers agree on the
gradient layout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Module", "Parameter"]


class Parameter:
    """A trainable array with an accumulated gradient."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_children", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._children[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # forward / backward contract
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter grads, return dL/d(input)."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All parameters in deterministic registration order."""
        found: list[Parameter] = list(self._params.values())
        for child in self._children.values():
            found.extend(child.parameters())
        return found

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        found = [
            (f"{prefix}{name}", param) for name, param in self._params.items()
        ]
        for child_name, child in self._children.items():
            found.extend(child.named_parameters(prefix=f"{prefix}{child_name}."))
        return found

    def modules(self) -> list["Module"]:
        found: list[Module] = [self]
        for child in self._children.values():
            found.extend(child.modules())
        return found

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # train / eval mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    # ------------------------------------------------------------------
    # flat views for the distributed layer
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def flatten_grads(self) -> np.ndarray:
        """Concatenate all parameter gradients into one vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([param.grad.reshape(-1) for param in params])

    def flatten_params(self) -> np.ndarray:
        """Concatenate all parameter values into one vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([param.data.reshape(-1) for param in params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameter values from a flat vector (inverse of flatten)."""
        flat = np.asarray(flat, dtype=np.float64)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(f"expected {expected} values, got {flat.size}")
        offset = 0
        for param in self.parameters():
            chunk = flat[offset : offset + param.size]
            param.data[...] = chunk.reshape(param.shape)
            offset += param.size

    def add_flat_update(self, delta: np.ndarray, scale: float = 1.0) -> None:
        """In-place ``params += scale * delta`` from a flat vector."""
        delta = np.asarray(delta, dtype=np.float64)
        expected = self.num_parameters()
        if delta.size != expected:
            raise ValueError(f"expected {expected} values, got {delta.size}")
        offset = 0
        for param in self.parameters():
            chunk = delta[offset : offset + param.size]
            param.data += scale * chunk.reshape(param.shape)
            offset += param.size

    # ------------------------------------------------------------------
    # state copy (model replication across simulated workers)
    # ------------------------------------------------------------------
    def copy_state_from(self, other: "Module") -> None:
        """Copy parameter values (not grads) from a same-architecture module."""
        mine, theirs = self.parameters(), other.parameters()
        if len(mine) != len(theirs):
            raise ValueError("architectures do not match")
        for dst, src in zip(mine, theirs):
            if dst.shape != src.shape:
                raise ValueError("parameter shapes do not match")
            dst.data[...] = src.data
