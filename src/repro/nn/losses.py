"""Loss functions.

Losses are not Modules: ``forward(pred, target)`` returns a scalar and
``backward()`` returns dL/d(pred), which is then fed to the model's
``backward``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CrossEntropyLoss", "MSELoss", "log_softmax", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class CrossEntropyLoss:
    """Softmax cross-entropy with integer class targets, mean-reduced."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ValueError("logits must be (N, num_classes)")
        if targets.shape != (logits.shape[0],):
            raise ValueError("targets must be (N,) integer labels")
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
            raise ValueError("target label out of range")
        log_probs = log_softmax(logits)
        self._probs = np.exp(log_probs)
        self._targets = targets
        picked = log_probs[np.arange(logits.shape[0]), targets]
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        self._probs = None
        self._targets = None
        return grad / n

    __call__ = forward


class MSELoss:
    """Mean squared error, mean-reduced over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ValueError("pred and target shapes must match")
        self._diff = pred - target
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        grad = 2.0 * self._diff / self._diff.size
        self._diff = None
        return grad

    __call__ = forward
