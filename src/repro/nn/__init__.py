"""A from-scratch numpy neural-network framework.

The paper trains AlexNet / ResNet / DistilBERT in PyTorch; this package is
the substitution: explicit forward/backward layers (no autograd) sufficient
to train scaled-down versions of all five paper workloads.  The distributed
layer only ever sees flattened gradients (:meth:`Module.flatten_grads`), so
any synchronization scheme composes with any model.

Sub-modules:

- :mod:`repro.nn.module` — ``Parameter`` / ``Module`` base machinery.
- :mod:`repro.nn.layers` — Linear, Conv2d, pooling, norms, activations.
- :mod:`repro.nn.attention` — multi-head self-attention + encoder block.
- :mod:`repro.nn.losses` — cross-entropy and MSE.
- :mod:`repro.nn.zoo` — the model zoo used by the experiments.
"""

from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderBlock
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "MultiHeadSelfAttention",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "TransformerEncoderBlock",
]
