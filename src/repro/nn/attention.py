"""Multi-head self-attention and the transformer encoder block.

These are the DistilBERT building blocks; the backward passes are derived by
hand (softmax Jacobian contracted against the value-weighted gradient).
Input/output tensors are (N, T, dim).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dropout, GELU, LayerNorm, Linear, _Cache
from repro.nn.losses import softmax
from repro.nn.module import Module

__all__ = ["MultiHeadSelfAttention", "TransformerEncoderBlock"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng=rng)
        self.w_k = Linear(dim, dim, rng=rng)
        self.w_v = Linear(dim, dim, rng=rng)
        self.w_o = Linear(dim, dim, rng=rng)
        self._cache = _Cache()

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n, _, t, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(n, t, self.dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split_heads(self.w_q(x))  # (N, H, T, hd)
        k = self._split_heads(self.w_k(x))
        v = self._split_heads(self.w_v(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (N, H, T, T)
        attn = softmax(scores)
        context = attn @ v  # (N, H, T, hd)
        out = self.w_o(self._merge_heads(context))
        self._cache.put(q=q, k=k, v=v, attn=attn, scale=scale)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cached = self._cache.take()
        q, k, v = cached["q"], cached["k"], cached["v"]
        attn, scale = cached["attn"], cached["scale"]

        d_context_merged = self.w_o.backward(grad)
        d_context = self._split_heads(d_context_merged)

        d_attn = d_context @ v.transpose(0, 1, 3, 2)  # (N, H, T, T)
        d_v = attn.transpose(0, 1, 3, 2) @ d_context

        # softmax backward per row: dS = A * (dA - sum(dA * A, axis=-1))
        inner = (d_attn * attn).sum(axis=-1, keepdims=True)
        d_scores = attn * (d_attn - inner)

        d_q = (d_scores @ k) * scale
        d_k = (d_scores.transpose(0, 1, 3, 2) @ q) * scale

        dx = self.w_q.backward(self._merge_heads(d_q))
        dx = dx + self.w_k.backward(self._merge_heads(d_k))
        dx = dx + self.w_v.backward(self._merge_heads(d_v))
        return dx


class TransformerEncoderBlock(Module):
    """Pre-LN encoder block: LN -> MHSA -> residual, LN -> FFN -> residual."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(seed)
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.ln2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.gelu = GELU()
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.drop1 = Dropout(dropout, seed=seed)
        self.drop2 = Dropout(dropout, seed=seed + 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.drop1(self.attn(self.ln1(x)))
        x = x + self.drop2(self.ffn_out(self.gelu(self.ffn_in(self.ln2(x)))))
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        d_branch = self.ffn_in.backward(
            self.gelu.backward(self.ffn_out.backward(self.drop2.backward(grad)))
        )
        grad = grad + self.ln2.backward(d_branch)
        d_branch = self.attn.backward(self.drop1.backward(grad))
        grad = grad + self.ln1.backward(d_branch)
        return grad
