"""QSGD: stochastic uniform quantization (Alistarh et al., NeurIPS 2017).

An element ``v_j`` is quantized to one of ``s + 1`` levels of ``|v_j|/||v||``
with stochastic rounding, keeping the estimator unbiased.  The payload
carries the norm, the sign bits, and the level integers
(``ceil(log2(s + 1))`` bits each).  Listed in the paper's related work
(Section 2, "Quantization") and included here as an extension baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.comm.bits import BitVector, PackedBits
from repro.compression.base import Compressor, Payload, as_vector

__all__ = ["QSGDCompressor", "QSGDPayload"]


@dataclass(frozen=True)
class QSGDPayload(Payload):
    """norm + signs + per-element quantization levels."""

    norm: float
    bits: BitVector | PackedBits
    levels: np.ndarray
    num_levels: int

    @property
    def nbytes(self) -> int:
        level_bits = max(1, math.ceil(math.log2(self.num_levels + 1)))
        return 4 + self.bits.nbytes + (level_bits * int(self.levels.size) + 7) // 8

    def decode(self) -> np.ndarray:
        signs = self.bits.to_signs()
        return self.norm * signs * self.levels.astype(np.float64) / self.num_levels


class QSGDCompressor(Compressor):
    """Unbiased ``s``-level stochastic quantizer."""

    name = "qsgd"
    unbiased = True

    def __init__(self, num_levels: int = 4) -> None:
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        self.num_levels = num_levels

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        if rng is None:
            raise ValueError("QSGDCompressor is stochastic; pass an rng")
        vector = as_vector(vector)
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            levels = np.zeros(vector.shape, dtype=np.int64)
            signs = np.ones(vector.shape)
        else:
            scaled = np.abs(vector) / norm * self.num_levels
            lower = np.floor(scaled)
            prob_up = scaled - lower
            levels = (lower + (rng.random(vector.shape) < prob_up)).astype(np.int64)
            signs = np.where(vector >= 0, 1.0, -1.0)
        return QSGDPayload(
            norm=norm,
            bits=PackedBits.from_signs(signs),
            levels=levels,
            num_levels=self.num_levels,
        )

    def nominal_bits_per_element(self) -> float:
        return 1.0 + max(1, math.ceil(math.log2(self.num_levels + 1)))
