"""Compressor and payload abstractions.

A :class:`Compressor` turns a gradient vector into a :class:`Payload`; the
payload is what travels over the simulated wire, so its ``nbytes`` determines
communication cost and its :meth:`Payload.decode` recovers (an estimate of)
the original vector.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.comm.bits import BitVector, PackedBits

__all__ = [
    "Compressor",
    "DensePayload",
    "Payload",
    "ScaledSignPayload",
    "SignPayload",
    "as_vector",
]


def as_vector(values: np.ndarray) -> np.ndarray:
    """Validate and convert input to a 1-D float64 array."""
    vector = np.asarray(values, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    if not np.isfinite(vector).all():
        raise ValueError("vector contains non-finite values")
    return vector


class Payload(abc.ABC):
    """An encoded gradient as it appears on the wire."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Wire size in bytes."""

    @abc.abstractmethod
    def decode(self) -> np.ndarray:
        """Reconstruct the (lossy) float vector."""


@dataclass(frozen=True)
class DensePayload(Payload):
    """Uncompressed values; 4 bytes per element (FP32 on the wire)."""

    values: np.ndarray

    @property
    def nbytes(self) -> int:
        return 4 * int(self.values.size)

    def decode(self) -> np.ndarray:
        return np.asarray(self.values, dtype=np.float64).copy()


@dataclass(frozen=True)
class SignPayload(Payload):
    """Pure sign bits; decodes to ``{-1, +1}``.

    ``bits`` is any packed one-bit container exposing ``nbytes`` /
    ``to_signs`` — :class:`PackedBits` on the word-level fast path,
    :class:`BitVector` for byte-level legacy payloads.
    """

    bits: BitVector | PackedBits

    @property
    def nbytes(self) -> int:
        return self.bits.nbytes

    def decode(self) -> np.ndarray:
        return self.bits.to_signs()


@dataclass(frozen=True)
class ScaledSignPayload(Payload):
    """Sign bits plus one float scale; decodes to ``scale * signs``.

    Used by SSDM (scale = l2 norm) and EF-signSGD (scale = mean |.|).
    """

    bits: BitVector | PackedBits
    scale: float

    @property
    def nbytes(self) -> int:
        return self.bits.nbytes + 4

    def decode(self) -> np.ndarray:
        return self.scale * self.bits.to_signs()


class Compressor(abc.ABC):
    """Stateless-by-default gradient compressor.

    Subclasses that keep per-worker state (error feedback, PowerSGD warm
    starts) document it and expose a ``reset()``.
    """

    #: short identifier used in reports and plots
    name: str = "base"
    #: whether E[decode(compress(v))] == v
    unbiased: bool = False

    @abc.abstractmethod
    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        """Encode ``vector``; stochastic schemes draw from ``rng``."""

    def decompress(self, payload: Payload) -> np.ndarray:
        """Decode a payload produced by this compressor."""
        return payload.decode()

    def nominal_bits_per_element(self) -> float:
        """Bits per element of the main payload, ignoring O(1) headers."""
        return 32.0

    def reset(self) -> None:
        """Clear any per-worker state; default is stateless no-op."""
