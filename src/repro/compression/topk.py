"""Top-k sparsification (Wangni et al. / Guo et al., paper Section 2).

Keeps the ``k`` largest-magnitude coordinates; payload carries 4-byte indices
and FP32 values.  Biased unless paired with error feedback; under MAR the sum
of two top-k vectors is generally 2k-sparse, so sparsification does not keep
a fixed wire size across hops — the same structural obstacle the paper raises
for PowerSGD under RAR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor, Payload, as_vector

__all__ = ["TopKCompressor", "TopKPayload"]


@dataclass(frozen=True)
class TopKPayload(Payload):
    """Sparse vector: (indices, values, dimension)."""

    indices: np.ndarray
    values: np.ndarray
    dimension: int

    @property
    def nbytes(self) -> int:
        return 8 * int(self.indices.size)  # 4B index + 4B value per entry

    def decode(self) -> np.ndarray:
        dense = np.zeros(self.dimension)
        dense[self.indices] = self.values
        return dense


class TopKCompressor(Compressor):
    """Keep the ``k`` largest-|.| coordinates (ties broken by index)."""

    name = "topk"
    unbiased = False

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        vector = as_vector(vector)
        k = min(self.k, vector.size)
        if k == 0:
            indices = np.array([], dtype=np.int64)
        else:
            indices = np.argpartition(np.abs(vector), -k)[-k:]
            indices = np.sort(indices)
        return TopKPayload(
            indices=indices, values=vector[indices], dimension=int(vector.size)
        )

    def nominal_bits_per_element(self) -> float:
        return 64.0  # per *kept* element; density scales actual cost
