"""SSDM: the unbiased stochastic sign compressor (Safaryan & Richtarik).

An element ``v_j`` is encoded as ``+1`` with probability
``1/2 + v_j / (2 ||v||_2)`` and ``-1`` otherwise, so
``E[sign~(v_j)] = v_j / ||v||`` and ``Q(v) = ||v|| * sign~(v)`` is an
unbiased estimate of ``v`` (paper Appendix A).  The payload carries the sign
bits plus the scalar norm.

This is the compressor the paper plugs into *cascading compression*
(Section 3.2) and into the bit-length-expanding SSDM-under-MAR baseline
(Section 3.1); both of those pipelines live in :mod:`repro.allreduce`.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass

from repro.comm.bits import BitVector, PackedBits
from repro.compression.base import Compressor, Payload, ScaledSignPayload, as_vector

__all__ = ["BlockScaledSignPayload", "SSDMCompressor", "stochastic_sign"]


def stochastic_sign(
    vector: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, float]:
    """Draw SSDM stochastic signs for ``vector``.

    Returns ``(signs, norm)`` where ``signs`` is over ``{-1, +1}`` and
    ``norm = ||vector||_2``.  A zero vector returns fair-coin signs with
    norm 0 so the decoded estimate is exactly the zero vector.
    """
    vector = as_vector(vector)
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        probs = np.full(vector.shape, 0.5)
    else:
        probs = 0.5 + vector / (2.0 * norm)
    draws = rng.random(vector.shape)
    signs = np.where(draws < probs, 1.0, -1.0)
    return signs, norm


@dataclass(frozen=True)
class BlockScaledSignPayload(Payload):
    """Sign bits plus one float scale per block of ``block_size`` elements."""

    bits: BitVector | PackedBits
    scales: np.ndarray
    block_size: int

    @property
    def nbytes(self) -> int:
        return self.bits.nbytes + 4 * int(self.scales.size)

    def decode(self) -> np.ndarray:
        signs = self.bits.to_signs()
        repeated = np.repeat(self.scales, self.block_size)[: signs.size]
        return repeated * signs


class SSDMCompressor(Compressor):
    """Unbiased one-bit compressor: ``Q(v) = ||v|| * sign~(v)``.

    ``block_size=None`` (default) normalizes by the global l2 norm — the
    textbook SSDM operator used in the paper's Appendix A analysis.
    ``block_size=B`` compresses each B-element block with its own norm
    (one extra float per block), the standard per-block scaling practical
    sign-compression implementations use; it raises the per-coordinate
    signal from ``~1/sqrt(D)`` to ``~1/sqrt(B)``, which is what makes
    cascading compression converge *at all* at small M (Table 1) while still
    degrading with every extra hop.
    """

    name = "ssdm"
    unbiased = True

    def __init__(self, block_size: int | None = None) -> None:
        if block_size is not None and block_size < 1:
            raise ValueError("block_size must be >= 1 or None")
        self.block_size = block_size

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        if rng is None:
            raise ValueError("SSDMCompressor is stochastic; pass an rng")
        vector = as_vector(vector)
        if self.block_size is None or vector.size <= self.block_size:
            signs, norm = stochastic_sign(vector, rng)
            return ScaledSignPayload(bits=PackedBits.from_signs(signs), scale=norm)
        block = self.block_size
        num_blocks = (vector.size + block - 1) // block
        padded = np.zeros(num_blocks * block)
        padded[: vector.size] = vector
        blocks = padded.reshape(num_blocks, block)
        norms = np.linalg.norm(blocks, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        probs = 0.5 + blocks / (2.0 * safe[:, None])
        probs[norms == 0.0] = 0.5
        draws = rng.random(blocks.shape)
        signs = np.where(draws < probs, 1.0, -1.0).reshape(-1)[: vector.size]
        return BlockScaledSignPayload(
            bits=PackedBits.from_signs(signs),
            scales=norms,
            block_size=block,
        )

    def nominal_bits_per_element(self) -> float:
        if self.block_size is None:
            return 1.0
        return 1.0 + 32.0 / self.block_size
