"""EF-signSGD: error-feedback sign compression (Karimireddy et al., 2019).

Each worker keeps a residual memory ``e``.  At every round it compresses the
corrected gradient ``p = e + g`` to the *scaled* sign
``delta = (||p||_1 / d) * sign(p)`` — the scaling makes the compressor a
contraction — and carries the leftover ``e <- p - delta`` into the next
round.  Error feedback is what "fixes" the bias of plain signSGD at the cost
of per-worker state; Marsit's *global* compensation plays the analogous role
without requiring workers to know their individual contribution to the
multi-hop aggregate (paper Section 4.1.3).
"""

from __future__ import annotations

import numpy as np

from repro.comm.bits import PackedBits
from repro.compression.base import Compressor, Payload, ScaledSignPayload, as_vector

__all__ = ["EFSignCompressor"]


class EFSignCompressor(Compressor):
    """Stateful scaled-sign compressor with local error feedback.

    One instance per worker; :meth:`compress` mutates the residual memory.
    """

    name = "ef-signsgd"
    unbiased = False

    def __init__(self) -> None:
        self._memory: np.ndarray | None = None

    @property
    def memory(self) -> np.ndarray | None:
        """The current residual (read-only view for tests/diagnostics)."""
        return None if self._memory is None else self._memory.copy()

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        vector = as_vector(vector)
        if self._memory is None:
            self._memory = np.zeros_like(vector)
        if self._memory.shape != vector.shape:
            raise ValueError(
                f"gradient dimension changed from {self._memory.shape} "
                f"to {vector.shape}"
            )
        corrected = self._memory + vector
        scale = float(np.abs(corrected).sum() / corrected.size)
        signs = np.where(corrected >= 0, 1.0, -1.0)
        self._memory = corrected - scale * signs
        return ScaledSignPayload(bits=PackedBits.from_signs(signs), scale=scale)

    def nominal_bits_per_element(self) -> float:
        return 1.0

    def reset(self) -> None:
        self._memory = None
