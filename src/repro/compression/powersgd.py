"""PowerSGD: rank-r gradient compression (Vogels et al., NeurIPS 2019).

The gradient, reshaped to a matrix ``G`` (rows x cols), is approximated as
``P Q^T`` via one step of subspace iteration with a warm-started ``Q``.
The payload ships the two skinny factors.  The paper (Section 2) notes that
PowerSGD "requires to transmit multiple sequential vectors at a
synchronization, which undermines the training efficiency under RAR" — the
two factors must be all-reduced in *sequence* (P first, then Q against the
orthonormalized P), doubling the number of ring traversals; our RAR timing
model charges exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor, Payload, as_vector

__all__ = ["LowRankPayload", "PowerSGDCompressor"]


@dataclass(frozen=True)
class LowRankPayload(Payload):
    """Two FP32 factors; decodes to ``vec(P @ Q^T)`` truncated to dimension."""

    p: np.ndarray
    q: np.ndarray
    dimension: int

    @property
    def nbytes(self) -> int:
        return 4 * (int(self.p.size) + int(self.q.size))

    def decode(self) -> np.ndarray:
        flat = (self.p @ self.q.T).reshape(-1)
        return flat[: self.dimension].copy()


def _matrix_shape(dimension: int) -> tuple[int, int]:
    """Near-square factorization target used to reshape a flat gradient."""
    rows = int(math.isqrt(dimension))
    rows = max(rows, 1)
    cols = math.ceil(dimension / rows)
    return rows, cols


def _orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Gram-Schmidt via thin QR; zero matrices return identity-ish basis."""
    q, _ = np.linalg.qr(matrix)
    return q


class PowerSGDCompressor(Compressor):
    """Rank-``r`` compressor with warm-started subspace iteration.

    Stateful: ``q`` persists across calls for the same gradient dimension.
    """

    name = "powersgd"
    unbiased = False

    def __init__(self, rank: int = 2, seed: int = 0) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self._seed = seed
        self._q: np.ndarray | None = None
        self._dimension: int | None = None

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        vector = as_vector(vector)
        dimension = int(vector.size)
        rows, cols = _matrix_shape(dimension)
        rank = min(self.rank, rows, cols)
        padded = np.zeros(rows * cols)
        padded[:dimension] = vector
        grad = padded.reshape(rows, cols)
        if self._q is None or self._dimension != dimension:
            init_rng = np.random.default_rng(self._seed)
            self._q = init_rng.standard_normal((cols, rank))
            self._dimension = dimension
        p = grad @ self._q
        p = _orthonormalize(p)
        q = grad.T @ p
        self._q = q
        return LowRankPayload(p=p, q=q, dimension=dimension)

    def nominal_bits_per_element(self) -> float:
        if self._dimension is None:
            return 32.0
        rows, cols = _matrix_shape(self._dimension)
        rank = min(self.rank, rows, cols)
        return 32.0 * rank * (rows + cols) / self._dimension

    def reset(self) -> None:
        self._q = None
        self._dimension = None
