"""Deterministic signSGD and majority-vote aggregation.

signSGD (Bernstein et al., ICML 2018) transmits ``sign(g)`` — one bit per
element — and, in its fault-tolerant variant, the server aggregates worker
signs by **majority vote**: the global direction for coordinate ``j`` is the
sign most workers voted for.  The vote is biased (it is not an unbiased
estimate of the mean gradient), which is exactly the gap Marsit's stochastic
``sign-merge`` operator closes.
"""

from __future__ import annotations

import numpy as np

from repro.comm.bits import PackedBits
from repro.compression.base import (
    Compressor,
    DensePayload,
    Payload,
    ScaledSignPayload,
    SignPayload,
    as_vector,
)

__all__ = ["IdentityCompressor", "SignCompressor", "majority_vote"]


class IdentityCompressor(Compressor):
    """FP32 passthrough; the PSGD / non-compression baseline."""

    name = "fp32"
    unbiased = True

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        return DensePayload(values=as_vector(vector).astype(np.float32))

    def nominal_bits_per_element(self) -> float:
        return 32.0


class SignCompressor(Compressor):
    """Deterministic sign: ``sgn(v)`` with ``sgn(0) = +1``."""

    name = "signsgd"
    unbiased = False

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        return SignPayload(bits=PackedBits.from_signs(as_vector(vector)))

    def nominal_bits_per_element(self) -> float:
        return 1.0


class MeanAbsSignCompressor(Compressor):
    """Deterministic scaled sign: ``(||v||_1 / D) * sgn(v)``.

    The workhorse "1-bit" compressor of practical systems (1-bit SGD,
    EF-signSGD's contraction): biased but norm-controlled, so its per-hop
    recovery has the same per-coordinate magnitude as a real gradient.  This
    is the compressor the Table 1 cascading bench uses — the literal
    stochastic-l2 SSDM operator retains only O(1/sqrt(D)) directional signal
    per compression, which cannot reproduce the paper's observed
    converges-at-M=3 / diverges-at-M=8 contrast at any realistic D (see
    EXPERIMENTS.md).
    """

    name = "meanabs-sign"
    unbiased = False

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        vector = as_vector(vector)
        scale = float(np.abs(vector).mean()) if vector.size else 0.0
        signs = np.where(vector >= 0, 1.0, -1.0)
        return ScaledSignPayload(bits=PackedBits.from_signs(signs), scale=scale)

    def nominal_bits_per_element(self) -> float:
        return 1.0


def majority_vote(sign_vectors: list[np.ndarray]) -> np.ndarray:
    """Aggregate worker signs by majority; ties break to +1.

    Args:
        sign_vectors: per-worker ``{-1, +1}`` vectors of equal length.

    Returns:
        The coordinate-wise majority sign in ``{-1, +1}``.
    """
    if not sign_vectors:
        raise ValueError("majority_vote needs at least one vector")
    stacked = np.stack([as_vector(v) for v in sign_vectors])
    if not np.isin(stacked, (-1.0, 1.0)).all():
        raise ValueError("majority_vote expects vectors over {-1, +1}")
    totals = stacked.sum(axis=0)
    return np.where(totals >= 0, 1.0, -1.0)
