"""Gradient compressors: the paper's baselines and related-work schemes.

Every compressor maps a 1-D float vector to a :class:`Payload` that knows its
wire size in bytes and can decode back to a float vector.  Schemes:

- :class:`IdentityCompressor` — FP32 passthrough (PSGD baseline).
- :class:`SignCompressor` — deterministic signSGD (Bernstein et al.).
- :class:`SSDMCompressor` — stochastic sign with ``1/2 + v_j / (2 ||v||)``
  flip probability (Safaryan & Richtarik), the unbiased compressor whose
  cascading use Section 3.2 dissects.
- :class:`EFSignCompressor` — error-feedback signSGD (Karimireddy et al.),
  scaled sign plus per-worker residual memory.
- :class:`QSGDCompressor`, :class:`TernGradCompressor`,
  :class:`TopKCompressor`, :class:`PowerSGDCompressor` — related-work
  baselines (Section 2).
- :func:`majority_vote` — the signSGD-with-majority-vote aggregation rule.
"""

from repro.compression.base import (
    Compressor,
    DensePayload,
    Payload,
    ScaledSignPayload,
    SignPayload,
)
from repro.compression.ef import EFSignCompressor
from repro.compression.powersgd import LowRankPayload, PowerSGDCompressor
from repro.compression.qsgd import QSGDCompressor, QSGDPayload
from repro.compression.signsgd import (
    IdentityCompressor,
    MeanAbsSignCompressor,
    SignCompressor,
    majority_vote,
)
from repro.compression.ssdm import SSDMCompressor
from repro.compression.terngrad import TernGradCompressor, TernaryPayload
from repro.compression.topk import TopKCompressor, TopKPayload

__all__ = [
    "Compressor",
    "DensePayload",
    "EFSignCompressor",
    "IdentityCompressor",
    "LowRankPayload",
    "MeanAbsSignCompressor",
    "Payload",
    "PowerSGDCompressor",
    "QSGDCompressor",
    "QSGDPayload",
    "SSDMCompressor",
    "ScaledSignPayload",
    "SignCompressor",
    "SignPayload",
    "TernGradCompressor",
    "TernaryPayload",
    "TopKCompressor",
    "TopKPayload",
    "majority_vote",
]
