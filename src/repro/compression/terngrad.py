"""TernGrad: ternary stochastic quantization (Wen et al., NeurIPS 2017).

Each element is mapped to ``{-1, 0, +1} * max|v|`` with stochastic rounding
``P(nonzero) = |v_j| / max|v|``, giving an unbiased 2-bit-per-element code.
Related-work baseline (paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor, Payload, as_vector

__all__ = ["TernGradCompressor", "TernaryPayload"]


@dataclass(frozen=True)
class TernaryPayload(Payload):
    """scale + per-element ternary digits (2 bits each on the wire)."""

    scale: float
    digits: np.ndarray  # int8 over {-1, 0, +1}

    @property
    def nbytes(self) -> int:
        return 4 + (2 * int(self.digits.size) + 7) // 8

    def decode(self) -> np.ndarray:
        return self.scale * self.digits.astype(np.float64)


class TernGradCompressor(Compressor):
    """Unbiased ternary quantizer with max-norm scaling."""

    name = "terngrad"
    unbiased = True

    def compress(
        self, vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> Payload:
        if rng is None:
            raise ValueError("TernGradCompressor is stochastic; pass an rng")
        vector = as_vector(vector)
        scale = float(np.abs(vector).max()) if vector.size else 0.0
        if scale == 0.0:
            digits = np.zeros(vector.shape, dtype=np.int8)
        else:
            keep = rng.random(vector.shape) < np.abs(vector) / scale
            digits = (np.sign(vector) * keep).astype(np.int8)
        return TernaryPayload(scale=scale, digits=digits)

    def nominal_bits_per_element(self) -> float:
        return 2.0
