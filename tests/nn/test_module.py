"""Tests for Parameter/Module machinery."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_grad_initialized_zero(self):
        param = Parameter(np.ones((2, 3)))
        assert param.grad.shape == (2, 3)
        assert np.allclose(param.grad, 0.0)

    def test_zero_grad(self):
        param = Parameter(np.ones(4))
        param.grad += 5.0
        param.zero_grad()
        assert np.allclose(param.grad, 0.0)


class TestRegistration:
    def test_parameters_in_assignment_order(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.b = Parameter(np.zeros(2))
                self.a = Parameter(np.zeros(3))

        custom = Custom()
        params = custom.parameters()
        assert params[0].shape == (2,)
        assert params[1].shape == (3,)

    def test_children_recursion(self):
        model = Sequential(Linear(4, 3), ReLU(), Linear(3, 2))
        # Linear(4,3): weight+bias; Linear(3,2): weight+bias.
        assert len(model.parameters()) == 4
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_named_parameters_paths(self):
        model = Sequential(Linear(2, 2))
        names = [name for name, _ in model.named_parameters()]
        assert names == ["layer_0.weight", "layer_0.bias"]

    def test_modules_list(self):
        model = Sequential(Linear(2, 2), ReLU())
        assert len(model.modules()) == 3  # sequential + 2 layers


class TestFlatViews:
    def test_flatten_set_roundtrip(self, rng):
        model = Sequential(Linear(5, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        flat = model.flatten_params()
        model.set_flat_params(np.zeros_like(flat))
        assert np.allclose(model.flatten_params(), 0.0)
        model.set_flat_params(flat)
        assert np.allclose(model.flatten_params(), flat)

    def test_flatten_grads_layout_matches_params(self, rng):
        model = Sequential(Linear(3, 2, rng=rng))
        x = rng.standard_normal((4, 3))
        out = model(x)
        model.backward(np.ones_like(out))
        grads = model.flatten_grads()
        assert grads.size == model.num_parameters()
        # bias grad occupies the last 2 slots and equals column sums of ones
        assert np.allclose(grads[-2:], 4.0)

    def test_add_flat_update(self, rng):
        model = Sequential(Linear(3, 2, rng=rng))
        before = model.flatten_params()
        delta = rng.standard_normal(before.size)
        model.add_flat_update(delta, scale=-0.5)
        assert np.allclose(model.flatten_params(), before - 0.5 * delta)

    def test_set_flat_rejects_wrong_size(self):
        model = Sequential(Linear(2, 2))
        with pytest.raises(ValueError):
            model.set_flat_params(np.zeros(3))

    def test_zero_grad_recursive(self, rng):
        model = Sequential(Linear(3, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        x = rng.standard_normal((2, 3))
        model.backward(np.ones_like(model(x)))
        assert np.abs(model.flatten_grads()).max() > 0
        model.zero_grad()
        assert np.allclose(model.flatten_grads(), 0.0)


class TestModes:
    def test_train_eval_propagate(self):
        model = Sequential(Linear(2, 2), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateCopy:
    def test_copy_state_from(self, rng):
        a = Sequential(Linear(4, 3, rng=np.random.default_rng(1)))
        b = Sequential(Linear(4, 3, rng=np.random.default_rng(2)))
        assert not np.allclose(a.flatten_params(), b.flatten_params())
        b.copy_state_from(a)
        assert np.allclose(a.flatten_params(), b.flatten_params())

    def test_copy_rejects_mismatched_architecture(self):
        a = Sequential(Linear(4, 3))
        b = Sequential(Linear(4, 3), Linear(3, 2))
        with pytest.raises(ValueError):
            b.copy_state_from(a)
