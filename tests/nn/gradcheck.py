"""Shared finite-difference gradient checking helpers."""

import numpy as np


def relative_error(analytic: float, numeric: float) -> float:
    scale = max(1e-7, abs(analytic) + abs(numeric))
    return abs(analytic - numeric) / scale


def check_model_gradients(
    model,
    x,
    y,
    loss_fn,
    eps: float = 1e-5,
    num_probes: int = 20,
    tolerance: float = 1e-5,
    seed: int = 0,
) -> float:
    """Compare analytic parameter grads to central differences.

    Skips coordinates whose both-sided gradient magnitude is below 1e-9
    (analytically-zero directions drown in finite-difference noise).
    Returns the worst relative error among checked coordinates.
    """
    model.train()
    model.zero_grad()
    out = model(x)
    loss_fn(out, y)
    model.backward(loss_fn.backward())
    analytic = model.flatten_grads()
    flat = model.flatten_params()
    probe_rng = np.random.default_rng(seed)
    indices = probe_rng.choice(
        flat.size, size=min(num_probes, flat.size), replace=False
    )
    worst = 0.0
    for index in indices:
        original = flat[index]
        flat[index] = original + eps
        model.set_flat_params(flat)
        loss_plus = loss_fn(model(x), y)
        flat[index] = original - eps
        model.set_flat_params(flat)
        loss_minus = loss_fn(model(x), y)
        flat[index] = original
        model.set_flat_params(flat)
        numeric = (loss_plus - loss_minus) / (2 * eps)
        if abs(numeric) < 1e-9 and abs(analytic[index]) < 1e-9:
            continue
        worst = max(worst, relative_error(analytic[index], numeric))
    assert worst < tolerance, f"gradient check failed: {worst:.2e}"
    return worst


def check_input_gradient(
    layer, x, eps: float = 1e-6, num_probes: int = 10, tolerance: float = 1e-5,
    seed: int = 0,
):
    """Check dL/d(input) for a single layer with L = sum(output * W)."""
    weight_rng = np.random.default_rng(seed + 1)
    out = layer(x)
    weights = weight_rng.standard_normal(out.shape)
    grad_input = layer.backward(weights)
    probe_rng = np.random.default_rng(seed)
    flat_x = x.reshape(-1)
    indices = probe_rng.choice(
        flat_x.size, size=min(num_probes, flat_x.size), replace=False
    )
    for index in indices:
        original = flat_x[index]
        flat_x[index] = original + eps
        plus = float((layer(x) * weights).sum())
        flat_x[index] = original - eps
        minus = float((layer(x) * weights).sum())
        flat_x[index] = original
        layer(x)  # restore a fresh cache for any later backward
        numeric = (plus - minus) / (2 * eps)
        analytic = grad_input.reshape(-1)[index]
        assert relative_error(analytic, numeric) < tolerance
