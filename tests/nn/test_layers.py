"""Per-layer forward shape and gradient tests."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
)
from tests.nn.gradcheck import check_input_gradient


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(rng.standard_normal((3, 4))).shape == (3, 7)

    def test_forward_value(self):
        layer = Linear(2, 1)
        layer.weight.data[...] = [[2.0, 3.0]]
        layer.bias.data[...] = [1.0]
        out = layer(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_input_gradient(self, rng):
        check_input_gradient(Linear(5, 3, rng=rng), rng.standard_normal((4, 5)))

    def test_weight_gradient_accumulates(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((2, 3))
        layer.backward(np.ones_like(layer(x)))
        first = layer.weight.grad.copy()
        layer.backward(np.ones_like(layer(x)))
        assert np.allclose(layer.weight.grad, 2 * first)

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.standard_normal((2, 5, 4))
        out = layer(x)
        assert out.shape == (2, 5, 2)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert len(layer.parameters()) == 1

    def test_double_backward_raises(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer.backward(np.ones_like(layer(rng.standard_normal((1, 2)))))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestConv2d:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        assert layer(rng.standard_normal((2, 3, 6, 6))).shape == (2, 8, 6, 6)

    def test_stride_shape(self, rng):
        layer = Conv2d(2, 4, kernel_size=3, stride=2, padding=1, rng=rng)
        assert layer(rng.standard_normal((1, 2, 8, 8))).shape == (1, 4, 4, 4)

    def test_matches_manual_convolution(self):
        layer = Conv2d(1, 1, kernel_size=2, bias=False)
        layer.weight.data[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = layer(x)
        # top-left window [0,1;3,4] . [1,2;3,4] = 0+2+9+16 = 27
        assert out[0, 0, 0, 0] == pytest.approx(27.0)

    def test_input_gradient(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        check_input_gradient(layer, rng.standard_normal((2, 2, 5, 5)))

    def test_input_gradient_strided_no_padding(self, rng):
        layer = Conv2d(1, 2, kernel_size=2, stride=2, rng=rng)
        check_input_gradient(layer, rng.standard_normal((1, 1, 6, 6)))

    def test_flops_positive(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        assert layer.flops_per_example(16, 16) > 0


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert pool(x)[0, 0, 0, 0] == 4.0

    def test_maxpool_routes_gradient_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool(x)
        grad = pool.backward(np.array([[[[7.0]]]]))
        assert grad[0, 0, 1, 1] == 7.0
        assert grad.sum() == 7.0

    def test_maxpool_input_gradient(self, rng):
        # Use distinct values so argmax is stable under small perturbation.
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        check_input_gradient(MaxPool2d(2), x)

    def test_avgpool_forward(self):
        pool = AvgPool2d()
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        out = pool(x)
        assert out.shape == (1, 2)
        assert out[0, 0] == pytest.approx(1.5)

    def test_avgpool_backward_spreads_evenly(self):
        pool = AvgPool2d()
        x = np.zeros((1, 1, 2, 2))
        pool(x)
        grad = pool.backward(np.array([[4.0]]))
        assert np.allclose(grad, 1.0)


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, GELU])
    def test_input_gradient(self, cls, rng):
        check_input_gradient(cls(), rng.standard_normal((3, 5)) + 0.1)

    def test_relu_zeroes_negatives(self):
        relu = ReLU()
        assert np.array_equal(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_gelu_reference_values(self):
        gelu = GELU()
        # GELU(0) = 0; GELU(large) ~ identity; GELU(-large) ~ 0.
        out = gelu(np.array([0.0, 10.0, -10.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0, abs=1e-3)
        assert out[2] == pytest.approx(0.0, abs=1e-3)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = rng.standard_normal((4, 4))
        assert np.array_equal(layer(x), x)

    def test_train_mode_preserves_expectation(self):
        layer = Dropout(0.3, seed=0)
        x = np.ones((200, 200))
        out = layer(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_mask_applied_in_backward(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((10, 10))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad == 0, out == 0)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        layer = BatchNorm1d(4)
        x = rng.standard_normal((64, 4)) * 3 + 5
        out = layer(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_in_eval(self, rng):
        layer = BatchNorm1d(3, momentum=0.0)  # running = last batch stats
        x = rng.standard_normal((128, 3)) * 2 + 1
        layer(x)
        layer.eval()
        out = layer(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=0.05)

    def test_2d_shapes(self, rng):
        layer = BatchNorm2d(5)
        x = rng.standard_normal((2, 5, 4, 4))
        assert layer(x).shape == x.shape

    def test_input_gradient_1d(self, rng):
        check_input_gradient(
            BatchNorm1d(4), rng.standard_normal((8, 4)), tolerance=1e-4
        )

    def test_input_gradient_2d(self, rng):
        check_input_gradient(
            BatchNorm2d(2), rng.standard_normal((3, 2, 4, 4)), tolerance=1e-4
        )


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = LayerNorm(8)
        out = layer(rng.standard_normal((4, 8)) * 5 + 2)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)

    def test_input_gradient(self, rng):
        check_input_gradient(
            LayerNorm(6), rng.standard_normal((3, 4, 6)), tolerance=1e-4
        )


class TestEmbedding:
    def test_lookup(self, rng):
        layer = Embedding(10, 4, rng=rng)
        out = layer(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[0, 0], layer.weight.data[1])

    def test_gradient_accumulates_at_indices(self):
        layer = Embedding(5, 2)
        tokens = np.array([[0, 0, 1]])
        out = layer(tokens)
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.weight.grad[0], 2.0)  # token 0 twice
        assert np.allclose(layer.weight.grad[1], 1.0)
        assert np.allclose(layer.weight.grad[2], 0.0)

    def test_rejects_out_of_vocab(self):
        layer = Embedding(5, 2)
        with pytest.raises(ValueError):
            layer(np.array([[7]]))


class TestFlattenSequential:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4))
        out = layer(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_sequential_backward_order(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 1, rng=rng))
        x = rng.standard_normal((3, 4))
        out = model(x)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
