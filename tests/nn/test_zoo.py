"""Tests for the model zoo: shapes, parameter counts, full gradient checks."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss
from repro.nn.zoo import (
    alexnet_mini,
    distilbert_mini,
    mlp,
    resnet18_mini,
    resnet20,
    resnet50_mini,
)
from tests.nn.gradcheck import check_model_gradients


@pytest.fixture
def loss_fn():
    return CrossEntropyLoss()


class TestMLP:
    def test_forward_shape(self, rng):
        model = mlp(12, hidden=(8,), num_classes=3)
        assert model(rng.standard_normal((5, 12))).shape == (5, 3)

    def test_gradients(self, rng, loss_fn):
        model = mlp(12, hidden=(6,), num_classes=3, seed=1)
        x = rng.standard_normal((4, 12))
        y = rng.integers(0, 3, 4)
        check_model_gradients(model, x, y, loss_fn, tolerance=1e-5)

    def test_deterministic_init(self):
        a, b = mlp(8, seed=3), mlp(8, seed=3)
        assert np.allclose(a.flatten_params(), b.flatten_params())

    def test_flops_attached(self):
        assert mlp(8).flops_per_example > 0


class TestAlexNetMini:
    def test_forward_shape(self, rng):
        model = alexnet_mini(in_channels=3, image_size=16, num_classes=10, width=4)
        assert model(rng.standard_normal((2, 3, 16, 16))).shape == (2, 10)

    def test_gradients_without_dropout(self, rng, loss_fn):
        model = alexnet_mini(in_channels=2, image_size=8, num_classes=3, width=4)
        for module in model.modules():
            if module.__class__.__name__ == "Dropout":
                module.p = 0.0
        x = rng.standard_normal((3, 2, 8, 8))
        y = rng.integers(0, 3, 3)
        check_model_gradients(model, x, y, loss_fn, num_probes=15, tolerance=1e-5)

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            alexnet_mini(image_size=10)


class TestResNets:
    def test_resnet20_param_count_matches_paper(self):
        # The paper lists ResNet-20 at 0.27M parameters (Table 2).
        count = resnet20().num_parameters()
        assert 0.25e6 < count < 0.30e6

    def test_resnet20_forward(self, rng):
        model = resnet20(in_channels=3, image_size=12, num_classes=10)
        assert model(rng.standard_normal((2, 3, 12, 12))).shape == (2, 10)

    def test_resnet18_gradients(self, rng, loss_fn):
        model = resnet18_mini(in_channels=2, image_size=8, num_classes=3, seed=2)
        x = rng.standard_normal((4, 2, 8, 8))
        y = rng.integers(0, 3, 4)
        check_model_gradients(model, x, y, loss_fn, num_probes=15, tolerance=1e-4)

    def test_resnet50_gradients(self, rng, loss_fn):
        model = resnet50_mini(in_channels=2, image_size=8, num_classes=3, seed=2)
        x = rng.standard_normal((4, 2, 8, 8))
        y = rng.integers(0, 3, 4)
        check_model_gradients(model, x, y, loss_fn, num_probes=15, tolerance=1e-4)

    def test_bottleneck_expansion(self):
        from repro.nn.zoo.resnet import BottleneckBlock

        block = BottleneckBlock(8, 4, stride=1, rng=np.random.default_rng(0))
        assert block.out_channels == 16

    def test_projection_shortcut_on_stride(self, rng):
        from repro.nn.zoo.resnet import BasicBlock

        block = BasicBlock(4, 8, stride=2, rng=rng)
        assert block.has_projection
        out = block(rng.standard_normal((1, 4, 8, 8)))
        assert out.shape == (1, 8, 4, 4)


class TestDistilBert:
    def test_forward_shape(self, rng):
        model = distilbert_mini(vocab_size=30, max_len=8, dim=16, num_heads=2,
                                num_layers=1, ffn_dim=24, num_classes=2)
        tokens = rng.integers(0, 30, (3, 8))
        assert model(tokens).shape == (3, 2)

    def test_shorter_sequences_allowed(self, rng):
        model = distilbert_mini(vocab_size=30, max_len=8)
        tokens = rng.integers(0, 30, (2, 5))
        assert model(tokens).shape == (2, 2)

    def test_too_long_sequence_rejected(self, rng):
        model = distilbert_mini(vocab_size=30, max_len=4)
        with pytest.raises(ValueError):
            model(rng.integers(0, 30, (1, 6)))

    def test_gradients(self, rng, loss_fn):
        model = distilbert_mini(
            vocab_size=20, max_len=6, dim=8, num_heads=2, num_layers=1,
            ffn_dim=12, num_classes=2, seed=5,
        )
        tokens = rng.integers(0, 20, (3, 6))
        y = rng.integers(0, 2, 3)
        check_model_gradients(
            model, tokens, y, loss_fn, num_probes=25, tolerance=1e-4
        )

    def test_position_embedding_gets_gradient(self, rng, loss_fn):
        model = distilbert_mini(vocab_size=20, max_len=6, dim=8, num_heads=2,
                                num_layers=1, ffn_dim=12)
        tokens = rng.integers(0, 20, (2, 6))
        model.zero_grad()
        loss_fn(model(tokens), np.array([0, 1]))
        model.backward(loss_fn.backward())
        assert np.abs(model.position_embedding.grad).max() > 0
