"""Tests for attention blocks and loss functions."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderBlock
from repro.nn.losses import CrossEntropyLoss, MSELoss, log_softmax, softmax
from tests.nn.gradcheck import check_input_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((5, 7)))
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_log_softmax_consistent(self, rng):
        logits = rng.standard_normal((3, 4))
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)))


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_k(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        targets = np.arange(4) % 10
        assert loss_fn(logits, targets) == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss_fn = CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss_fn(logits, np.array([1, 2])) < 1e-6

    def test_gradient_matches_probs_minus_onehot(self, rng):
        loss_fn = CrossEntropyLoss()
        logits = rng.standard_normal((3, 4))
        targets = np.array([0, 2, 1])
        loss_fn(logits, targets)
        grad = loss_fn.backward()
        probs = softmax(logits)
        onehot = np.zeros_like(probs)
        onehot[np.arange(3), targets] = 1.0
        assert np.allclose(grad, (probs - onehot) / 3)

    def test_finite_difference(self, rng):
        loss_fn = CrossEntropyLoss()
        logits = rng.standard_normal((2, 3))
        targets = np.array([1, 0])
        loss_fn(logits, targets)
        grad = loss_fn.backward()
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                perturbed = logits.copy()
                perturbed[i, j] += eps
                plus = loss_fn(perturbed, targets)
                perturbed[i, j] -= 2 * eps
                minus = loss_fn(perturbed, targets)
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-6)

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(rng.standard_normal((2, 3)), np.array([0, 5]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestMSE:
    def test_value(self):
        loss_fn = MSELoss()
        assert loss_fn(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss_fn = MSELoss()
        pred = rng.standard_normal(6)
        target = rng.standard_normal(6)
        loss_fn(pred, target)
        assert np.allclose(loss_fn.backward(), 2 * (pred - target) / 6)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(3), np.zeros(4))


class TestMultiHeadAttention:
    def test_forward_shape(self, rng):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng)
        assert attn(rng.standard_normal((2, 5, 8))).shape == (2, 5, 8)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=7, num_heads=2)

    def test_input_gradient(self, rng):
        attn = MultiHeadSelfAttention(dim=6, num_heads=2, rng=rng)
        check_input_gradient(
            attn, rng.standard_normal((2, 4, 6)), tolerance=1e-4
        )

    def test_permutation_equivariance(self, rng):
        # Self-attention without positions is equivariant to token order.
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng)
        x = rng.standard_normal((1, 5, 8))
        perm = np.array([3, 1, 4, 0, 2])
        out = attn(x)
        out_perm = attn(x[:, perm])
        assert np.allclose(out[:, perm], out_perm, atol=1e-10)


class TestEncoderBlock:
    def test_forward_shape(self, rng):
        block = TransformerEncoderBlock(dim=8, num_heads=2, ffn_dim=16, rng=rng)
        assert block(rng.standard_normal((2, 4, 8))).shape == (2, 4, 8)

    def test_input_gradient(self, rng):
        block = TransformerEncoderBlock(dim=6, num_heads=2, ffn_dim=10, rng=rng)
        check_input_gradient(
            block, rng.standard_normal((1, 3, 6)), tolerance=1e-4
        )

    def test_residual_path_dominates_at_zero_weights(self, rng):
        block = TransformerEncoderBlock(dim=4, num_heads=1, ffn_dim=4, rng=rng)
        for param in block.parameters():
            param.data[...] = 0.0
        x = rng.standard_normal((1, 3, 4))
        assert np.allclose(block(x), x)  # both branches output zero
