"""Tests for the standalone single-model optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import MSELoss
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


class TestSGD:
    def test_plain_step(self):
        param = quadratic_param()
        optimizer = SGD([param], lr=0.1)
        param.grad[...] = 2.0
        optimizer.step()
        assert param.data[0] == pytest.approx(5.0 - 0.2)

    def test_momentum_accumulates(self):
        param = quadratic_param(0.0)
        optimizer = SGD([param], lr=1.0, momentum=0.5)
        for expected in (-1.0, -2.5, -4.25):
            param.grad[...] = 1.0
            optimizer.step()
            assert param.data[0] == pytest.approx(expected)

    def test_weight_decay_shrinks(self):
        param = quadratic_param(10.0)
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad[...] = 0.0
        optimizer.step()
        assert param.data[0] == pytest.approx(10.0 * 0.95)

    def test_minimizes_quadratic(self):
        param = quadratic_param(3.0)
        optimizer = SGD([param], lr=0.2, momentum=0.5)
        for _ in range(80):
            param.grad[...] = 2 * param.data  # d/dx x^2
            optimizer.step()
        assert abs(param.data[0]) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_magnitude(self):
        param = quadratic_param(0.0)
        optimizer = Adam([param], lr=0.01)
        param.grad[...] = 5.0
        optimizer.step()
        # Bias-corrected first step ~ lr regardless of gradient scale.
        assert param.data[0] == pytest.approx(-0.01, rel=1e-3)

    def test_minimizes_quadratic(self):
        param = quadratic_param(3.0)
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            param.grad[...] = 2 * param.data
            optimizer.step()
        assert abs(param.data[0]) < 1e-2

    def test_trains_a_small_network(self, rng):
        model = Sequential(Linear(3, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng))
        optimizer = Adam(model.parameters(), lr=0.01)
        loss_fn = MSELoss()
        x = rng.standard_normal((64, 3))
        target = (x.sum(axis=1, keepdims=True) > 0).astype(float)
        first_loss = None
        for _ in range(150):
            model.zero_grad()
            loss = loss_fn(model(x), target)
            if first_loss is None:
                first_loss = loss
            model.backward(loss_fn.backward())
            optimizer.step()
        assert loss < 0.3 * first_loss

    def test_zero_grad(self):
        param = quadratic_param()
        optimizer = Adam([param], lr=0.1)
        param.grad[...] = 3.0
        optimizer.zero_grad()
        assert param.grad[0] == 0.0


class TestResultSerialization:
    def test_to_json_roundtrip(self, tmp_path):
        import json

        from repro.train.metrics import RoundRecord, TrainResult

        result = TrainResult(strategy_name="demo")
        result.history = [RoundRecord(0, 0.1, 100, 2.0, 0.5, 1.9, 1.0)]
        result.final_accuracy = 0.5
        path = tmp_path / "run.json"
        result.to_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["strategy"] == "demo"
        assert loaded["history"][0]["test_accuracy"] == 0.5
        assert loaded["best_accuracy"] == 0.5
