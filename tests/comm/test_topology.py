"""Tests for topology constructors and invariants."""

import pytest

from repro.comm.topology import (
    fully_connected_topology,
    ring_topology,
    star_topology,
    torus_topology,
    tree_topology,
)


class TestRing:
    def test_successor_predecessor(self):
        topo = ring_topology(5)
        assert topo.successor(0) == 1
        assert topo.successor(4) == 0
        assert topo.predecessor(0) == 4

    def test_single_worker_has_no_edges(self):
        topo = ring_topology(1)
        assert topo.num_workers == 1
        assert topo.graph.number_of_edges() == 0

    def test_bidirectional_adds_reverse_links(self):
        topo = ring_topology(4, bidirectional=True)
        assert topo.has_edge(1, 0) and topo.has_edge(0, 1)

    def test_unidirectional_lacks_reverse(self):
        topo = ring_topology(4)
        assert topo.has_edge(0, 1) and not topo.has_edge(1, 0)

    def test_validate_passes(self):
        ring_topology(3).validate()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ring_topology(0)


class TestTorus:
    def test_shape_and_edges(self):
        topo = torus_topology(2, 3)
        assert topo.num_workers == 6
        # rank 0 = (0,0): row edge to (0,1)=1, col edge to (1,0)=3
        assert topo.has_edge(0, 1)
        assert topo.has_edge(0, 3)

    def test_row_wraparound(self):
        topo = torus_topology(2, 3)
        assert topo.has_edge(2, 0)  # (0,2) -> (0,0)

    def test_column_wraparound(self):
        topo = torus_topology(2, 3)
        assert topo.has_edge(3, 0)  # (1,0) -> (0,0)

    def test_degenerate_1xn(self):
        topo = torus_topology(1, 4)
        topo.validate()
        assert topo.num_workers == 4

    def test_meta_records_shape(self):
        topo = torus_topology(3, 2)
        assert topo.meta == {"rows": 3, "cols": 2}

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            torus_topology(0, 3)


class TestStar:
    def test_all_leaves_link_server(self):
        topo = star_topology(4, server=0)
        for rank in (1, 2, 3):
            assert topo.has_edge(rank, 0)
            assert topo.has_edge(0, rank)
        assert not topo.has_edge(1, 2)

    def test_server_rank_recorded(self):
        assert star_topology(3, server=2).meta["server"] == 2

    def test_rejects_out_of_range_server(self):
        with pytest.raises(ValueError):
            star_topology(3, server=5)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            star_topology(1)


class TestTree:
    def test_binary_tree_parents(self):
        topo = tree_topology(7, arity=2)
        assert topo.has_edge(1, 0) and topo.has_edge(2, 0)
        assert topo.has_edge(3, 1) and topo.has_edge(6, 2)

    def test_single_node(self):
        tree_topology(1).validate()

    def test_rejects_zero_arity(self):
        with pytest.raises(ValueError):
            tree_topology(3, arity=0)


class TestFullyConnected:
    def test_complete(self):
        topo = fully_connected_topology(4)
        assert topo.graph.number_of_edges() == 12

    def test_successor_raises_with_many_neighbors(self):
        with pytest.raises(ValueError):
            fully_connected_topology(3).successor(0)


class TestValidate:
    def test_rejects_noncontiguous_ranks(self):
        import networkx as nx

        from repro.comm.topology import Topology

        graph = nx.DiGraph()
        graph.add_nodes_from([0, 2])
        graph.add_edge(0, 2)
        with pytest.raises(ValueError):
            Topology(graph=graph, name="bad").validate()
