"""Unit and property tests for bit-level codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bits import (
    BitVector,
    elias_delta_decode,
    elias_delta_encode,
    elias_gamma_decode,
    elias_gamma_encode,
    pack_signs,
    signed_int_bit_width,
    unpack_signs,
)


class TestBitVector:
    def test_roundtrip_bits(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1, 0], dtype=np.uint8)
        vector = BitVector.from_bits(bits)
        assert np.array_equal(vector.to_bits(), bits)

    def test_roundtrip_signs(self):
        signs = np.array([1.0, -1.0, -1.0, 1.0, 1.0])
        vector = BitVector.from_signs(signs)
        assert np.array_equal(vector.to_signs(), signs)

    def test_zero_maps_to_plus_one(self):
        vector = BitVector.from_signs(np.array([0.0, -0.5, 2.0]))
        assert np.array_equal(vector.to_signs(), [1.0, -1.0, 1.0])

    def test_nbytes_is_ceil_div_8(self):
        for length, expected in [(1, 1), (8, 1), (9, 2), (16, 2), (17, 3)]:
            vector = BitVector.from_bits(np.zeros(length, dtype=np.uint8))
            assert vector.nbytes == expected

    def test_empty_vector(self):
        vector = BitVector.from_bits(np.zeros(0, dtype=np.uint8))
        assert vector.nbytes == 0
        assert vector.to_bits().size == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitVector.from_bits(np.array([0, 2, 1]))

    def test_rejects_wrong_byte_count(self):
        with pytest.raises(ValueError):
            BitVector(data=b"\x00\x00", length=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            BitVector.from_bits(np.zeros((2, 2), dtype=np.uint8))

    @given(
        st.lists(st.sampled_from([0, 1]), min_size=0, max_size=200)
    )
    def test_roundtrip_property(self, bits):
        array = np.array(bits, dtype=np.uint8)
        assert np.array_equal(BitVector.from_bits(array).to_bits(), array)


class TestPackSigns:
    def test_pack_unpack(self, rng):
        values = rng.standard_normal(37)
        expected = np.where(values >= 0, 1.0, -1.0)
        assert np.array_equal(unpack_signs(pack_signs(values)), expected)

    def test_one_bit_per_element(self, rng):
        vector = pack_signs(rng.standard_normal(1000))
        assert vector.nbytes == 125


class TestSignedIntBitWidth:
    def test_one_is_one_bit(self):
        assert signed_int_bit_width(1) == 1

    @pytest.mark.parametrize(
        "value,expected",
        [(2, 3), (3, 3), (4, 4), (7, 4), (8, 5), (15, 5), (16, 6)],
    )
    def test_growth(self, value, expected):
        assert signed_int_bit_width(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            signed_int_bit_width(0)

    def test_width_covers_range(self):
        # A width-w signed encoding must represent 2*v + 1 values.
        for v in range(2, 100):
            width = signed_int_bit_width(v)
            assert 2**width >= 2 * v + 1


class TestEliasCodes:
    def test_gamma_roundtrip(self):
        values = [1, 2, 3, 10, 100, 1000, 65535]
        payload, bit_count = elias_gamma_encode(values)
        assert bit_count <= len(payload) * 8
        assert np.array_equal(elias_gamma_decode(payload, len(values)), values)

    def test_delta_roundtrip(self):
        values = [1, 5, 17, 255, 4096]
        payload, _ = elias_delta_encode(values)
        assert np.array_equal(elias_delta_decode(payload, len(values)), values)

    def test_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            elias_gamma_encode([0])

    def test_delta_rejects_zero(self):
        with pytest.raises(ValueError):
            elias_delta_encode([0])

    def test_gamma_length_of_one_is_one_bit(self):
        _, bits = elias_gamma_encode([1, 1, 1])
        assert bits == 3

    def test_delta_shorter_than_gamma_for_large_ints(self):
        values = [100000] * 10
        _, gamma_bits = elias_gamma_encode(values)
        _, delta_bits = elias_delta_encode(values)
        assert delta_bits < gamma_bits

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_gamma_roundtrip_property(self, values):
        payload, _ = elias_gamma_encode(values)
        assert np.array_equal(elias_gamma_decode(payload, len(values)), values)

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_delta_roundtrip_property(self, values):
        payload, _ = elias_delta_encode(values)
        assert np.array_equal(elias_delta_decode(payload, len(values)), values)
