"""Property tests for :class:`PackedBits` and the vectorized Elias codecs.

The packed fast path must be *indistinguishable* from the seed's reference
implementations: identical bits, identical bytes on the wire, identical
exceptions on truncated streams.  Sizes deliberately straddle the 64-bit
word boundary (0, 1, 63, 64, 65, and non-multiples of 64).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bits import (
    BitVector,
    PackedBits,
    elias_delta_decode,
    elias_delta_decode_reference,
    elias_delta_encode,
    elias_delta_encode_reference,
    elias_gamma_decode,
    elias_gamma_decode_reference,
    elias_gamma_encode,
    elias_gamma_encode_reference,
    zigzag_encode,
)

BOUNDARY_SIZES = [0, 1, 7, 8, 9, 63, 64, 65, 100, 127, 128, 129, 1000]


def random_bits(size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(size) < 0.5).astype(np.uint8)


class TestPackedBitsRoundtrip:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_bits_roundtrip(self, size):
        bits = random_bits(size, size)
        assert np.array_equal(PackedBits.from_bits(bits).to_bits(), bits)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_signs_roundtrip(self, size):
        rng = np.random.default_rng(size + 1)
        signs = np.where(rng.random(size) < 0.5, 1.0, -1.0)
        assert np.array_equal(PackedBits.from_signs(signs).to_signs(), signs)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_bitvector_interop(self, size):
        bits = random_bits(size, size + 2)
        vector = BitVector.from_bits(bits)
        packed = PackedBits.from_bitvector(vector)
        assert np.array_equal(packed.to_bits(), bits)
        back = packed.to_bitvector()
        assert back.data == vector.data and back.length == vector.length

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_wire_bytes_match_bitvector(self, size):
        bits = random_bits(size, size + 3)
        assert PackedBits.from_bits(bits).nbytes == BitVector.from_bits(bits).nbytes

    def test_tail_bits_are_zero(self):
        packed = PackedBits.from_bits(np.ones(65, dtype=np.uint8))
        assert packed.words[-1] == 1  # only bit 64 set in the second word
        assert packed.popcount() == 65


class TestPackedBitsOps:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_word_ops_match_elementwise(self, size):
        a_bits = random_bits(size, size + 10)
        b_bits = random_bits(size, size + 11)
        a, b = PackedBits.from_bits(a_bits), PackedBits.from_bits(b_bits)
        assert np.array_equal((a & b).to_bits(), a_bits & b_bits)
        assert np.array_equal((a | b).to_bits(), a_bits | b_bits)
        assert np.array_equal((a ^ b).to_bits(), a_bits ^ b_bits)
        assert np.array_equal(a.invert().to_bits(), 1 - a_bits)
        assert a.popcount() == int(a_bits.sum())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PackedBits.from_bits(np.ones(3, dtype=np.uint8)) & PackedBits.from_bits(
                np.ones(4, dtype=np.uint8)
            )

    @pytest.mark.parametrize("size", [1, 63, 64, 65, 130])
    @pytest.mark.parametrize("num_parts", [1, 2, 3, 4])
    def test_split_concat_roundtrip(self, size, num_parts):
        bits = random_bits(size, size * 7 + num_parts)
        packed = PackedBits.from_bits(bits)
        parts = packed.split(num_parts)
        assert sum(len(p) for p in parts) == size
        assert np.array_equal(PackedBits.concat(parts).to_bits(), bits)

    @given(st.integers(0, 200), st.integers(0, 200), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_slice_matches_numpy(self, start, stop, seed):
        bits = random_bits(200, seed % 1000)
        packed = PackedBits.from_bits(bits)
        lo, hi = min(start, stop), max(start, stop)
        assert np.array_equal(packed.slice(lo, hi).to_bits(), bits[lo:hi])


class TestVectorizedEliasMatchesReference:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_gamma_byte_identical(self, size):
        rng = np.random.default_rng(size + 40)
        values = zigzag_encode(rng.integers(-8, 9, size))
        assert elias_gamma_encode(values) == elias_gamma_encode_reference(values)

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_delta_byte_identical(self, size):
        rng = np.random.default_rng(size + 41)
        values = zigzag_encode(rng.integers(-8, 9, size))
        assert elias_delta_encode(values) == elias_delta_encode_reference(values)

    @given(st.lists(st.integers(1, 2**62), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_gamma_roundtrip_wide_values(self, values):
        values = np.asarray(values, dtype=np.int64)
        payload, total_bits = elias_gamma_encode(values)
        ref_payload, ref_bits = elias_gamma_encode_reference(values)
        assert payload == ref_payload and total_bits == ref_bits
        assert np.array_equal(elias_gamma_decode(payload, values.size), values)

    @given(st.lists(st.integers(1, 2**62), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_delta_roundtrip_wide_values(self, values):
        values = np.asarray(values, dtype=np.int64)
        payload, total_bits = elias_delta_encode(values)
        ref_payload, ref_bits = elias_delta_encode_reference(values)
        assert payload == ref_payload and total_bits == ref_bits
        assert np.array_equal(elias_delta_decode(payload, values.size), values)

    @pytest.mark.parametrize(
        "encode", [elias_gamma_encode, elias_delta_encode]
    )
    def test_rejects_non_positive(self, encode):
        with pytest.raises(ValueError):
            encode(np.array([3, 0, 1]))


class TestVectorizedEliasEOFParity:
    """Truncated payloads raise EOFError exactly where the reference does."""

    @pytest.mark.parametrize(
        "encode,decode,decode_reference",
        [
            (elias_gamma_encode, elias_gamma_decode, elias_gamma_decode_reference),
            (elias_delta_encode, elias_delta_decode, elias_delta_decode_reference),
        ],
        ids=["gamma", "delta"],
    )
    def test_every_truncation_point(self, encode, decode, decode_reference):
        rng = np.random.default_rng(99)
        values = zigzag_encode(rng.integers(-8, 9, 150))
        payload, _ = encode(values)
        for cut in range(len(payload) + 1):
            truncated = payload[:cut]
            try:
                expected = decode_reference(truncated, values.size)
            except EOFError:
                expected = None
            if expected is None:
                with pytest.raises(EOFError):
                    decode(truncated, values.size)
            else:
                assert np.array_equal(decode(truncated, values.size), expected)

    @pytest.mark.parametrize(
        "decode", [elias_gamma_decode, elias_delta_decode], ids=["gamma", "delta"]
    )
    def test_overcount_and_empty(self, decode):
        values = np.array([1, 2, 3], dtype=np.int64)
        payload, _ = elias_gamma_encode(values)
        with pytest.raises(EOFError):
            elias_gamma_decode(payload, 4)
        for junk in (b"", b"\x00" * 64):
            with pytest.raises(EOFError):
                decode(junk, 2)
