"""Tests for the alpha-beta cost model and timeline."""

import pytest

from repro.comm.timing import CostModel, Phase, TimeLine


class TestCostModel:
    def test_transfer_time(self):
        model = CostModel(latency_s=1e-4, bandwidth_Bps=1e6)
        assert model.transfer_time(1000) == pytest.approx(1e-4 + 1e-3)

    def test_zero_bytes_costs_latency(self):
        model = CostModel(latency_s=5e-5)
        assert model.transfer_time(0) == pytest.approx(5e-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CostModel().transfer_time(-1)

    def test_compute_time(self):
        model = CostModel(flops_per_s=1e9)
        assert model.compute_time(2e9) == pytest.approx(2.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            CostModel().compute_time(-1.0)

    def test_codec_times_scale_linearly(self):
        model = CostModel(
            compress_elems_per_s=1e6,
            decompress_elems_per_s=2e6,
            rng_elems_per_s=4e6,
            bitop_elems_per_s=8e6,
        )
        assert model.compress_time(1_000_000) == pytest.approx(1.0)
        assert model.decompress_time(1_000_000) == pytest.approx(0.5)
        assert model.rng_time(1_000_000) == pytest.approx(0.25)
        assert model.bitop_time(1_000_000) == pytest.approx(0.125)


class TestTimeLine:
    def test_accumulates_per_phase(self):
        timeline = TimeLine()
        timeline.add(Phase.COMPUTATION, 1.0)
        timeline.add(Phase.COMPUTATION, 0.5)
        timeline.add(Phase.COMMUNICATION, 2.0)
        assert timeline.seconds[Phase.COMPUTATION] == 1.5
        assert timeline.total == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TimeLine().add(Phase.COMPRESSION, -0.1)

    def test_breakdown_keys(self):
        breakdown = TimeLine().breakdown()
        assert set(breakdown) == {"computation", "compression", "communication"}

    def test_merged_with(self):
        a, b = TimeLine(), TimeLine()
        a.add(Phase.COMPUTATION, 1.0)
        b.add(Phase.COMPUTATION, 2.0)
        b.add(Phase.COMPRESSION, 3.0)
        merged = a.merged_with(b)
        assert merged.seconds[Phase.COMPUTATION] == 3.0
        assert merged.seconds[Phase.COMPRESSION] == 3.0
        # originals untouched
        assert a.seconds[Phase.COMPUTATION] == 1.0

    def test_copy_is_independent(self):
        a = TimeLine()
        a.add(Phase.COMPUTATION, 1.0)
        b = a.copy()
        b.add(Phase.COMPUTATION, 1.0)
        assert a.seconds[Phase.COMPUTATION] == 1.0
        assert b.seconds[Phase.COMPUTATION] == 2.0
