"""Property tests for :class:`PackedBitsBatch`, the lane-stacked container.

Every batched operation must agree lane-by-lane with the per-lane
:class:`PackedBits` reference it replaces, and the per-row zero-padding
invariant must survive construction, ragged lengths, widening, and every
word-level operator.  Sizes straddle the 64-bit word boundary on purpose.
"""

import numpy as np
import pytest

from repro.comm.bits import PackedBits, PackedBitsBatch

BOUNDARY_SIZES = [0, 1, 7, 63, 64, 65, 127, 128, 129, 1000]


def random_bit_matrix(lanes: int, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((lanes, n)) < 0.5).astype(np.uint8)


def assert_padding_zero(batch: PackedBitsBatch) -> None:
    """Re-validate through __post_init__, which rejects dirty padding."""
    PackedBitsBatch(words=batch.words.copy(), lengths=batch.lengths.copy())


class TestConstruction:
    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_rows_match_scalar_packing(self, n):
        bits = random_bit_matrix(5, n, n)
        batch = PackedBitsBatch.from_bit_matrix(bits)
        assert batch.num_lanes == 5
        for lane in range(5):
            assert batch.row(lane).equals(PackedBits.from_bits(bits[lane]))
        assert_padding_zero(batch)

    def test_ragged_lengths_zero_trailing_columns(self):
        bits = np.ones((3, 70), dtype=np.uint8)
        lengths = np.array([70, 3, 0])
        batch = PackedBitsBatch.from_bit_matrix(bits, lengths=lengths)
        assert np.array_equal(batch.lengths, lengths)
        assert np.array_equal(batch.popcounts(), lengths)
        assert_padding_zero(batch)

    def test_width_pads_but_preserves_rows(self):
        bits = random_bit_matrix(4, 65, 9)
        wide = PackedBitsBatch.from_bit_matrix(bits, width=5)
        assert wide.width == 5
        for lane in range(4):
            assert wide.row(lane).equals(PackedBits.from_bits(bits[lane]))
        assert_padding_zero(wide)

    def test_sign_matrix_maps_nonnegative_to_one(self):
        signs = np.array([[1.0, -1.0, 0.0], [-2.5, 3.0, -0.1]])
        batch = PackedBitsBatch.from_sign_matrix(signs)
        assert np.array_equal(batch.row(0).to_bits(), [1, 0, 1])
        assert np.array_equal(batch.row(1).to_bits(), [0, 1, 0])

    def test_from_rows_stacks_ragged_packed_bits(self):
        parts = [
            PackedBits.from_bits(random_bit_matrix(1, n, n + 40)[0])
            for n in (3, 64, 129)
        ]
        batch = PackedBitsBatch.from_rows(parts)
        assert batch.width == 3
        for lane, part in enumerate(parts):
            assert batch.row(lane).equals(part)
        assert_padding_zero(batch)

    def test_row_view_is_zero_copy(self):
        batch = PackedBitsBatch.from_bit_matrix(random_bit_matrix(2, 100, 0))
        assert batch.row(1).words.base is not None
        assert np.shares_memory(batch.row(1).words, batch.words)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="2-D"):
            PackedBitsBatch.from_bit_matrix(np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError, match="0/1"):
            PackedBitsBatch.from_bit_matrix(np.full((2, 3), 2, dtype=np.int64))
        with pytest.raises(ValueError, match="one entry per lane"):
            PackedBitsBatch.from_bit_matrix(
                np.zeros((2, 3), dtype=np.uint8), lengths=np.array([3])
            )
        with pytest.raises(ValueError, match=r"\[0, columns\]"):
            PackedBitsBatch.from_bit_matrix(
                np.zeros((1, 3), dtype=np.uint8), lengths=np.array([4])
            )
        with pytest.raises(ValueError, match="cannot hold"):
            PackedBitsBatch.from_bit_matrix(
                np.zeros((1, 65), dtype=np.uint8), width=1
            )
        with pytest.raises(ValueError, match="padding"):
            PackedBitsBatch(
                words=np.full((1, 1), 2, dtype="<u8"), lengths=np.array([1])
            )


class TestOperators:
    @pytest.mark.parametrize("n", [1, 64, 129])
    def test_bitwise_ops_match_per_lane(self, n):
        a_bits = random_bit_matrix(6, n, n)
        b_bits = random_bit_matrix(6, n, n + 1)
        a = PackedBitsBatch.from_bit_matrix(a_bits)
        b = PackedBitsBatch.from_bit_matrix(b_bits)
        for batched, scalar_op in [
            (a & b, lambda x, y: x & y),
            (a | b, lambda x, y: x | y),
            (a ^ b, lambda x, y: x ^ y),
        ]:
            for lane in range(6):
                expected = scalar_op(a.row(lane), b.row(lane))
                assert batched.row(lane).equals(expected)
            assert_padding_zero(batched)

    def test_invert_matches_per_lane_and_keeps_padding(self):
        bits = np.ones((3, 70), dtype=np.uint8)
        lengths = np.array([70, 65, 1])
        batch = PackedBitsBatch.from_bit_matrix(bits, lengths=lengths)
        inverted = batch.invert()
        for lane in range(3):
            assert inverted.row(lane).equals(batch.row(lane).invert())
        assert_padding_zero(inverted)

    def test_popcounts_match_per_lane(self):
        bits = random_bit_matrix(7, 200, 3)
        batch = PackedBitsBatch.from_bit_matrix(bits)
        assert np.array_equal(batch.popcounts(), bits.sum(axis=1))

    def test_nbytes_per_lane_is_wire_sizing(self):
        lengths = np.array([0, 1, 8, 9, 64])
        batch = PackedBitsBatch.from_bit_matrix(
            np.zeros((5, 64), dtype=np.uint8), lengths=lengths
        )
        assert np.array_equal(batch.nbytes_per_lane, [0, 1, 1, 2, 8])

    def test_incompatible_operands_raise(self):
        a = PackedBitsBatch.from_bit_matrix(random_bit_matrix(2, 10, 0))
        b = PackedBitsBatch.from_bit_matrix(random_bit_matrix(3, 10, 1))
        with pytest.raises(ValueError, match="mismatch"):
            a & b
        with pytest.raises(TypeError, match="PackedBitsBatch"):
            a | object()


class TestConsensus:
    def test_all_lanes_equal(self):
        row = random_bit_matrix(1, 100, 4)
        same = PackedBitsBatch.from_bit_matrix(np.repeat(row, 4, axis=0))
        assert same.all_lanes_equal()
        differing = np.repeat(row, 4, axis=0)
        differing[2, 50] ^= 1
        assert not PackedBitsBatch.from_bit_matrix(differing).all_lanes_equal()

    def test_single_and_empty_batches_are_consensus(self):
        assert PackedBitsBatch.from_bit_matrix(
            random_bit_matrix(1, 10, 5)
        ).all_lanes_equal()
        assert PackedBitsBatch.from_bit_matrix(
            np.zeros((0, 10), dtype=np.uint8)
        ).all_lanes_equal()

    def test_equals_is_exact(self):
        bits = random_bit_matrix(3, 65, 6)
        a = PackedBitsBatch.from_bit_matrix(bits)
        assert a.equals(PackedBitsBatch.from_bit_matrix(bits.copy()))
        flipped = bits.copy()
        flipped[1, 64] ^= 1
        assert not a.equals(PackedBitsBatch.from_bit_matrix(flipped))
        assert not a.equals(object())
