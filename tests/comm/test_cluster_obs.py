"""Cluster observability wiring plus the accounting regression fixes."""

import typing

import pytest

from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology
from repro.obs import Observability
from repro.obs.tracer import NULL_OBS


class TestResetAccountingRegression:
    def test_reset_raises_inside_open_step(self):
        cluster = Cluster(ring_topology(3))
        cluster.begin_step()
        cluster.send(0, 1, b"xy", tag="t")
        with pytest.raises(RuntimeError, match="open step"):
            cluster.reset_accounting()
        # The step is still usable after the refused reset.
        assert cluster.end_step() > 0.0

    def test_reset_clears_step_state(self):
        cluster = Cluster(ring_topology(3))
        cluster.begin_step()
        cluster.send(0, 1, b"xy", tag="t")
        cluster.end_step()
        cluster.recv(1, 0, tag="t")
        # end_step leaves the last step's byte map behind; reset must not.
        assert cluster._step_bytes
        cluster.reset_accounting()
        assert cluster._step_bytes == {}
        assert cluster._step_messages == 0
        assert cluster.total_bytes == 0
        assert cluster.timeline.total == 0.0

    def test_reset_then_fresh_step_accounts_only_new_traffic(self):
        cluster = Cluster(ring_topology(3))
        cluster.begin_step()
        cluster.send(0, 1, b"before", tag="a")
        cluster.end_step()
        cluster.recv(1, 0, tag="a")
        cluster.reset_accounting()
        cluster.begin_step()
        cluster.send(1, 2, b"xy", tag="b")
        elapsed = cluster.end_step()
        cluster.recv(2, 1, tag="b")
        model = cluster.cost_model
        assert elapsed == model.latency_s + 2 / model.bandwidth_Bps


class TestExchangeAnnotationRegression:
    def test_get_type_hints_resolves(self):
        # "Sequence[...]" used to be an unresolvable string annotation.
        hints = typing.get_type_hints(Cluster.exchange)
        assert "transfers" in hints
        assert hints["return"] is float


class TestObservabilityAttachment:
    def test_default_is_shared_null_bundle(self):
        cluster = Cluster(ring_topology(2))
        assert cluster.obs is NULL_OBS
        assert cluster._obs_on is False

    def test_constructor_and_setter_attach(self):
        obs = Observability.tracing()
        cluster = Cluster(ring_topology(2), obs=obs)
        assert cluster.obs is obs and cluster._obs_on is True
        cluster.attach_observability(Observability.disabled())
        assert cluster._obs_on is False

    def test_charge_feeds_tracer(self):
        obs = Observability.tracing()
        cluster = Cluster(ring_topology(2), obs=obs)
        cluster.charge(Phase.COMPUTATION, 0.5)
        assert obs.tracer.now == 0.5
        assert obs.tracer.unattributed == {"computation": 0.5}

    def test_step_records_hop_span_and_wire_metrics(self):
        obs = Observability.tracing()
        cluster = Cluster(ring_topology(3), obs=obs)
        cluster.begin_step()
        cluster.send(0, 1, b"abcd", tag="t")
        cluster.send(1, 2, b"ab", tag="t")
        elapsed = cluster.end_step(tag="step:0")
        cluster.recv(1, 0, tag="t")
        cluster.recv(2, 1, tag="t")
        (hop,) = obs.tracer.spans
        assert hop.name == "hop"
        assert hop.args == {
            "tag": "step:0", "bytes": 6, "messages": 2, "links": 2,
        }
        assert hop.duration_s == elapsed
        metrics = obs.metrics
        assert metrics.get("wire.link_bytes", link="0->1").value == 4
        assert metrics.get("wire.link_bytes", link="1->2").value == 2
        assert metrics.get("wire.steps").value == 1
        assert metrics.get("wire.step_messages").value == 2
        assert metrics.get("wire.step_makespan_s").count == 1
        # Mailbox depth was sampled before the recvs drained it.
        assert metrics.get("cluster.mailbox_depth").value == 2

    def test_exchange_records_identical_metrics_as_stepped_path(self):
        def run(use_exchange: bool):
            obs = Observability.tracing()
            cluster = Cluster(ring_topology(3), obs=obs)
            if use_exchange:
                cluster.exchange([(0, 1, 4), (1, 2, 2)], tag="step:0")
            else:
                cluster.begin_step()
                cluster.send(0, 1, b"abcd", tag="t")
                cluster.send(1, 2, b"ab", tag="t")
                cluster.end_step(tag="step:0")
                cluster.recv(1, 0, tag="t")
                cluster.recv(2, 1, tag="t")
            snap = obs.metrics.snapshot()
            return {k: v for k, v in snap.items() if k.startswith("wire.")}

        assert run(True) == run(False)

    def test_empty_step_records_nothing(self):
        obs = Observability.tracing()
        cluster = Cluster(ring_topology(2), obs=obs)
        cluster.begin_step()
        assert cluster.end_step() == 0.0
        assert cluster.exchange([]) == 0.0
        assert obs.tracer.spans == []
