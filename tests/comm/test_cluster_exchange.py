"""Bulk :meth:`Cluster.exchange` accounting and bounded worker mailboxes.

``exchange`` must be indistinguishable from the per-message
``begin_step`` / ``send`` / ``recv`` / ``end_step`` path in every counter it
touches: per-link bytes and messages, cluster totals, and the step makespan
charged to the timeline.  ``Worker.take`` must keep the mailbox dict bounded
by in-flight messages even under per-step tags that never repeat.
"""

import numpy as np
import pytest

from repro.comm.cluster import Cluster, SizedPayload, Worker
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology


def ring_step_transfers(size: int, nbytes: int) -> list[tuple[int, int, int]]:
    return [(src, (src + 1) % size, nbytes) for src in range(size)]


class TestExchangeAccounting:
    def test_matches_per_message_step_exactly(self):
        reference = Cluster(ring_topology(5))
        payloads = {src: np.arange(src + 1, dtype=np.float64) for src in range(5)}
        reference.begin_step()
        for src, payload in payloads.items():
            reference.send(src, (src + 1) % 5, payload, tag="s")
        expected_elapsed = reference.end_step()
        for src in range(5):
            reference.recv((src + 1) % 5, src, tag="s")

        bulk = Cluster(ring_topology(5))
        elapsed = bulk.exchange(
            [(src, (src + 1) % 5, payload) for src, payload in payloads.items()],
            tag="s",
        )

        assert elapsed == expected_elapsed
        assert bulk.total_bytes == reference.total_bytes
        assert bulk.total_messages == reference.total_messages
        for key, link in reference.links.items():
            assert bulk.links[key].bytes_sent == link.bytes_sent
            assert bulk.links[key].messages_sent == link.messages_sent
        assert bulk.timeline.seconds == reference.timeline.seconds

    def test_int_payload_is_precomputed_wire_size(self):
        cluster = Cluster(ring_topology(4))
        cluster.exchange(ring_step_transfers(4, 13))
        assert cluster.total_bytes == 4 * 13
        assert cluster.total_messages == 4
        assert all(link.bytes_sent == 13 for link in cluster.links.values())

    def test_non_int_payloads_are_sized(self):
        cluster = Cluster(ring_topology(3))
        cluster.exchange(
            [
                (0, 1, np.zeros(4, dtype=np.float64)),
                (1, 2, SizedPayload(value="irrelevant", nbytes=5)),
                (2, 0, None),
            ]
        )
        assert cluster.links[(0, 1)].bytes_sent == 32
        assert cluster.links[(1, 2)].bytes_sent == 5
        assert cluster.links[(2, 0)].bytes_sent == 0
        assert cluster.total_bytes == 37

    def test_makespan_is_slowest_link(self):
        cluster = Cluster(
            ring_topology(3), link_speed_factors={(2, 0): 0.5}
        )
        elapsed = cluster.exchange(ring_step_transfers(3, 1000))
        assert elapsed == cluster._link_transfer_time((2, 0), 1000)
        assert cluster.timeline.seconds[Phase.COMMUNICATION] == elapsed

    def test_empty_exchange_is_free(self):
        cluster = Cluster(ring_topology(3))
        assert cluster.exchange([]) == 0.0
        assert cluster.total_messages == 0
        assert cluster.timeline.total == 0.0

    def test_mailboxes_untouched(self):
        cluster = Cluster(ring_topology(3))
        cluster.exchange(ring_step_transfers(3, 8))
        assert all(worker.pending() == 0 for worker in cluster.workers)
        cluster.assert_drained()

    def test_rejects_off_topology_and_negative_and_open_step(self):
        cluster = Cluster(ring_topology(4))
        with pytest.raises(ValueError, match="no link"):
            cluster.exchange([(0, 2, 1)])
        with pytest.raises(ValueError, match="non-negative"):
            cluster.exchange([(0, 1, -1)])
        cluster.begin_step()
        with pytest.raises(RuntimeError, match="inside an open step"):
            cluster.exchange([(0, 1, 1)])


class TestMailboxBounded:
    def test_take_prunes_drained_queues(self):
        cluster = Cluster(ring_topology(2))
        for step in range(100):
            cluster.send(0, 1, step, tag=f"step:{step}")
            assert cluster.recv(1, 0, tag=f"step:{step}") == step
        # Per-step tags never repeat; without pruning this dict holds one
        # dead entry per step forever.
        assert len(cluster.workers[1].mailbox) == 0

    def test_mailbox_bounded_by_in_flight_messages(self):
        cluster = Cluster(ring_topology(2))
        for step in range(50):
            cluster.send(0, 1, step, tag=f"a:{step}")
            cluster.send(0, 1, step, tag=f"b:{step}")
            cluster.recv(1, 0, tag=f"a:{step}")
        assert len(cluster.workers[1].mailbox) == 50
        assert cluster.workers[1].pending() == 50

    def test_fifo_order_preserved_within_key(self):
        worker = Worker(rank=0)
        cluster = Cluster(ring_topology(2))
        for value in (1, 2, 3):
            cluster.send(0, 1, value, tag="t")
        assert [cluster.recv(1, 0, tag="t") for _ in range(3)] == [1, 2, 3]
        assert len(cluster.workers[1].mailbox) == 0
        assert worker.pending() == 0

    def test_miss_does_not_insert_queue(self):
        worker = Worker(rank=3)
        with pytest.raises(LookupError, match="no pending message"):
            worker.take(0, tag="ghost")
        assert len(worker.mailbox) == 0
