"""Tests for the simulated cluster: messaging, accounting, stepping."""

import numpy as np
import pytest

from repro.comm.bits import BitVector
from repro.comm.cluster import Cluster, SizedPayload, payload_nbytes
from repro.comm.timing import CostModel, Phase
from repro.comm.topology import ring_topology


@pytest.fixture
def cluster():
    return Cluster(ring_topology(3))


class TestPayloadNbytes:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float32)) == 40

    def test_bitvector(self):
        assert payload_nbytes(BitVector.from_bits(np.zeros(9, dtype=np.uint8))) == 2

    def test_scalar(self):
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(7) == 8

    def test_containers(self):
        assert payload_nbytes([np.zeros(2, dtype=np.float64), 1.0]) == 24
        assert payload_nbytes({"a": 1.0, "b": 2.0}) == 16

    def test_sized_payload(self):
        sized = SizedPayload(value=np.zeros(100, dtype=np.int64), nbytes=13)
        assert payload_nbytes(sized) == 13

    def test_sized_payload_rejects_negative(self):
        with pytest.raises(ValueError):
            SizedPayload(value=None, nbytes=-1)

    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_compression_payload_duck_typing(self):
        from repro.compression.base import DensePayload

        payload = DensePayload(values=np.zeros(5, dtype=np.float32))
        assert payload_nbytes(payload) == 20

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestMessaging:
    def test_send_recv_roundtrip(self, cluster):
        cluster.send(0, 1, np.arange(3.0))
        received = cluster.recv(1, 0)
        assert np.array_equal(received, [0.0, 1.0, 2.0])

    def test_fifo_per_src_tag(self, cluster):
        cluster.send(0, 1, "first" if False else 1.0)
        cluster.send(0, 1, 2.0)
        assert cluster.recv(1, 0) == 1.0
        assert cluster.recv(1, 0) == 2.0

    def test_tags_isolate_queues(self, cluster):
        cluster.send(0, 1, 1.0, tag="a")
        cluster.send(0, 1, 2.0, tag="b")
        assert cluster.recv(1, 0, tag="b") == 2.0
        assert cluster.recv(1, 0, tag="a") == 1.0

    def test_off_topology_send_raises(self, cluster):
        with pytest.raises(ValueError):
            cluster.send(0, 2, 1.0)  # ring 3: 0 -> 2 is not an edge

    def test_missing_recv_raises_in_strict_mode(self, cluster):
        with pytest.raises(LookupError):
            cluster.recv(1, 0)

    def test_lenient_mode_returns_none(self):
        cluster = Cluster(ring_topology(3), strict=False)
        assert cluster.recv(1, 0) is None

    def test_assert_drained(self, cluster):
        cluster.send(0, 1, 1.0)
        with pytest.raises(AssertionError):
            cluster.assert_drained()
        cluster.recv(1, 0)
        cluster.assert_drained()


class TestAccounting:
    def test_total_bytes_and_messages(self, cluster):
        cluster.send(0, 1, np.zeros(4, dtype=np.float32))
        cluster.send(1, 2, np.zeros(2, dtype=np.float64))
        assert cluster.total_bytes == 32
        assert cluster.total_messages == 2

    def test_per_link_accounting(self, cluster):
        cluster.send(0, 1, np.zeros(4, dtype=np.float32))
        assert cluster.links[(0, 1)].bytes_sent == 16
        assert cluster.links[(0, 1)].messages_sent == 1
        assert cluster.links[(1, 2)].bytes_sent == 0

    def test_reset_accounting_keeps_mailboxes(self, cluster):
        cluster.send(0, 1, 1.0)
        cluster.reset_accounting()
        assert cluster.total_bytes == 0
        assert cluster.recv(1, 0) == 1.0  # message survived the reset


class TestStepping:
    def test_step_time_is_makespan(self):
        model = CostModel(latency_s=1e-3, bandwidth_Bps=1e3)
        cluster = Cluster(ring_topology(3), cost_model=model)
        cluster.begin_step()
        cluster.send(0, 1, np.zeros(100, dtype=np.uint8))  # 100 B
        cluster.send(1, 2, np.zeros(300, dtype=np.uint8))  # 300 B <- slowest
        elapsed = cluster.end_step()
        assert elapsed == pytest.approx(1e-3 + 0.3)
        assert cluster.timeline.seconds[Phase.COMMUNICATION] == pytest.approx(elapsed)
        cluster.recv(1, 0)
        cluster.recv(2, 1)

    def test_empty_step_is_free(self, cluster):
        cluster.begin_step()
        assert cluster.end_step() == 0.0

    def test_nested_step_raises(self, cluster):
        cluster.begin_step()
        with pytest.raises(RuntimeError):
            cluster.begin_step()

    def test_end_without_begin_raises(self, cluster):
        with pytest.raises(RuntimeError):
            cluster.end_step()

    def test_charge_other_phases(self, cluster):
        cluster.charge(Phase.COMPUTATION, 0.5)
        cluster.charge(Phase.COMPRESSION, 0.25)
        assert cluster.timeline.seconds[Phase.COMPUTATION] == 0.5
        assert cluster.timeline.seconds[Phase.COMPRESSION] == 0.25
        assert cluster.timeline.total == 0.75
