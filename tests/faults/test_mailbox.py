"""Mailbox hygiene under lost messages: take, discard, abort, reconfigure.

Regression suite for the leak fixed alongside the fault subsystem: a failed
``Worker.take`` probe used to *create* an empty ``(src, tag)`` queue via the
defaultdict, and queues drained to empty stayed in the dict — so every
timed-out round grew the mailbox and tripped ``assert_drained`` (or worse,
leaked into the next round's totals).
"""

import pytest

from repro.comm.cluster import Cluster, Message, Worker
from repro.comm.topology import ring_topology
from repro.faults import FaultInjector, FaultPlan, MessageDrop


class TestWorkerTake:
    def test_failed_take_does_not_create_a_queue(self):
        worker = Worker(rank=0)
        with pytest.raises(LookupError):
            worker.take(3, "rs:0")
        assert len(worker.mailbox) == 0

    def test_drained_queue_is_deleted(self):
        cluster = Cluster(ring_topology(2))
        cluster.send(0, 1, b"xy", tag="t")
        cluster.send(0, 1, b"zw", tag="t")
        worker = cluster.workers[1]
        assert len(worker.mailbox) == 1
        assert cluster.recv(1, 0, tag="t") == b"xy"
        assert cluster.recv(1, 0, tag="t") == b"zw"
        assert len(worker.mailbox) == 0
        cluster.assert_drained()

    def test_discard_filters_by_tag_and_src(self):
        worker = Worker(rank=1)
        for src, tag, payload in [
            (0, "keep", b"a"), (0, "drop", b"b"), (2, "drop", b"c"),
        ]:
            worker.deliver(
                Message(src=src, dst=1, payload=payload, nbytes=1, tag=tag)
            )
        assert worker.discard(tag="drop", src=2) == 1
        assert worker.discard(tag="drop") == 1
        assert worker.pending() == 1
        assert worker.take(0, "keep").payload == b"a"


class TestTimeoutRecovery:
    def _lossy_cluster(self):
        cluster = Cluster(ring_topology(3))
        plan = FaultPlan(
            seed=0,
            events=(
                MessageDrop(
                    prob=1.0, links=((0, 1),), mode="timeout", last_round=0
                ),
            ),
        )
        injector = FaultInjector(plan)
        cluster.attach_faults(injector)
        injector.begin_round(0)
        return cluster, injector

    def test_aborted_round_leaves_no_residue(self):
        cluster, injector = self._lossy_cluster()
        cluster.begin_step()
        cluster.send(0, 1, b"lost", tag="rs:0")
        cluster.send(1, 2, b"fine", tag="rs:0")
        with pytest.raises(LookupError):
            cluster.recv(1, 0, tag="rs:0")
        # The round is void: close without charging, drop the companions.
        aborted = cluster.abort_step(tag="rs:0")
        assert aborted == {(0, 1): 4, (1, 2): 4}
        assert cluster.discard_pending(tag="rs:0") == 1
        cluster.assert_drained()
        assert cluster.timeline.total == 0.0
        # Attempted bytes did travel the wire and stay counted.
        assert cluster.total_bytes == 8
        assert injector.counters["timeouts"] == 1
        # The next round (drop window closed) completes normally and its
        # makespan reflects only its own bytes — nothing leaked across.
        injector.begin_round(1)
        cluster.begin_step()
        cluster.send(0, 1, b"ok", tag="rs:1")
        assert cluster.end_step(tag="rs:1") > 0.0
        assert cluster.recv(1, 0, tag="rs:1") == b"ok"
        cluster.assert_drained()

    def test_abort_step_requires_an_open_step(self):
        cluster = Cluster(ring_topology(2))
        with pytest.raises(RuntimeError, match="no step open"):
            cluster.abort_step()

    def test_end_step_after_abort_does_not_double_charge(self):
        cluster, _ = self._lossy_cluster()
        cluster.begin_step()
        cluster.send(1, 2, b"partial", tag="t")
        cluster.abort_step(tag="t")
        cluster.begin_step()
        elapsed = cluster.end_step(tag="t")
        assert elapsed == 0.0


class TestReconfigure:
    def test_refuses_with_pending_messages(self):
        cluster = Cluster(ring_topology(3))
        cluster.send(0, 1, b"stranded", tag="t")
        with pytest.raises(RuntimeError, match="undelivered"):
            cluster.reconfigure(ring_topology(2))

    def test_drop_pending_preserves_cumulative_accounting(self):
        cluster = Cluster(ring_topology(3))
        cluster.send(0, 1, b"stranded", tag="t")
        before_bytes = cluster.total_bytes
        cluster.reconfigure(ring_topology(2), drop_pending=True)
        assert cluster.num_workers == 2
        assert cluster.total_bytes == before_bytes
        assert cluster.total_messages == 1
        cluster.assert_drained()
        assert set(cluster.links) == {(0, 1), (1, 0)}

    def test_refuses_inside_an_open_step(self):
        cluster = Cluster(ring_topology(3))
        cluster.begin_step()
        with pytest.raises(RuntimeError, match="open step"):
            cluster.reconfigure(ring_topology(2))
