"""FaultInjector determinism, remapping, and accounting unit tests.

The injector's contract is *content keying*: every decision is a pure
function of (plan seed, round, kind, tag, original link, occurrence), never
of call order.  That property is what makes the scalar and lane-stacked
engines — which interleave their fault queries completely differently —
agree bit-for-bit; these tests pin it directly.
"""

import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.faults import (
    BitFlip,
    FaultInjector,
    FaultPlan,
    LinkJitter,
    LinkPartition,
    MessageDrop,
    Straggler,
    WorkerCrash,
    WorkerCrashedError,
)


def _bound(plan: FaultPlan, num_workers: int = 4) -> FaultInjector:
    cluster = Cluster(ring_topology(num_workers))
    injector = FaultInjector(plan)
    cluster.attach_faults(injector)
    return injector


class TestContentKeying:
    PLAN = FaultPlan(seed=5, events=(MessageDrop(prob=0.5),))

    def _decisions(self, order):
        injector = _bound(self.PLAN)
        injector.begin_round(0)
        injector.begin_step()
        results = {}
        for src, dst in order:
            for occ in range(3):
                results[(src, dst, occ)] = injector.on_message(
                    "rs:0", src, dst, 100
                )
        return results

    def test_decisions_are_independent_of_query_order(self):
        forward = self._decisions([(0, 1), (1, 2), (2, 3)])
        backward = self._decisions([(2, 3), (1, 2), (0, 1)])
        assert forward == backward

    def test_decisions_differ_across_rounds_and_seeds(self):
        def sample(seed, round_idx):
            injector = _bound(FaultPlan(seed=seed, events=(MessageDrop(prob=0.5),)))
            injector.begin_round(round_idx)
            injector.begin_step()
            return [
                injector.on_message("rs:0", 0, 1, 100)[0] for _ in range(64)
            ]

        assert sample(5, 0) == sample(5, 0)
        assert sample(5, 0) != sample(5, 1)
        assert sample(5, 0) != sample(6, 0)

    def test_begin_round_resets_occurrence_counters(self):
        injector = _bound(self.PLAN)
        injector.begin_round(0)
        injector.begin_step()
        first = [injector.on_message("rs:0", 0, 1, 100) for _ in range(8)]
        # Re-entering the *same* round is idempotent: counters keep running.
        injector.begin_round(0)
        cont = injector.on_message("rs:0", 0, 1, 100)
        assert first[0] != cont or len(set(first)) == 1
        # A new round restarts the per-(kind, tag, link) occurrence count,
        # and its draws are keyed by the new round index.
        injector.begin_round(1)
        injector.begin_step()
        second = [injector.on_message("rs:0", 0, 1, 100) for _ in range(8)]
        injector2 = _bound(self.PLAN)
        injector2.begin_round(1)
        injector2.begin_step()
        replay = [injector2.on_message("rs:0", 0, 1, 100) for _ in range(8)]
        assert second == replay


class TestDropsAndPartitions:
    def test_retry_mode_always_delivers_within_budget(self):
        plan = FaultPlan(seed=1, events=(MessageDrop(prob=0.9),), max_attempts=3)
        injector = _bound(plan)
        injector.begin_round(0)
        injector.begin_step()
        for _ in range(200):
            extra, deliver = injector.on_message("t", 0, 1, 50)
            assert deliver
            assert extra % 50 == 0
            assert 0 <= extra <= 3 * 50
        assert injector.counters["drops"] == injector.counters["retries"]
        assert injector.counters["retry_bytes"] == 50 * injector.counters["retries"]

    def test_timeout_mode_loses_terminally(self):
        plan = FaultPlan(seed=1, events=(MessageDrop(prob=1.0, mode="timeout"),))
        injector = _bound(plan)
        injector.begin_round(0)
        injector.begin_step()
        extra, deliver = injector.on_message("t", 0, 1, 50)
        assert (extra, deliver) == (0, False)
        assert injector.counters["timeouts"] == 1

    def test_partition_pays_the_full_retry_budget(self):
        plan = FaultPlan(
            seed=1,
            events=(LinkPartition(src=0, dst=1, last_round=0),),
            max_attempts=4,
        )
        injector = _bound(plan)
        injector.begin_round(0)
        injector.begin_step()
        extra, deliver = injector.on_message("t", 0, 1, 10)
        assert (extra, deliver) == (40, True)
        assert injector.counters["partition_hits"] == 1
        # Reverse direction and other links are untouched.
        assert injector.on_message("t", 1, 0, 10) == (0, True)
        # The window closes: round 1 is clean.
        injector.begin_round(1)
        injector.begin_step()
        assert injector.on_message("t", 0, 1, 10) == (0, True)


class TestTimingFaults:
    def test_straggler_scales_the_slowest_link(self):
        cluster = Cluster(ring_topology(4))
        plan = FaultPlan(seed=0, events=(Straggler(worker=2, factor=3.0),))
        injector = FaultInjector(plan)
        cluster.attach_faults(injector)
        injector.begin_round(0)
        injector.begin_step()
        base = cluster._link_transfer_time((0, 1), 1000)
        # A step over a clean link is unchanged; one touching worker 2 pays 3x.
        assert injector.finish_step("t", {(0, 1): 1000}) == pytest.approx(base)
        assert injector.finish_step("t", {(1, 2): 1000}) == pytest.approx(3 * base)

    def test_jitter_is_reproducible_and_multiplicative(self):
        def makespan(seed):
            cluster = Cluster(ring_topology(4))
            injector = FaultInjector(
                FaultPlan(seed=seed, events=(LinkJitter(sigma=0.5),))
            )
            cluster.attach_faults(injector)
            injector.begin_round(0)
            injector.begin_step()
            return [injector.finish_step("t", {(0, 1): 1000}) for _ in range(5)]

        base = Cluster(ring_topology(4))._link_transfer_time((0, 1), 1000)
        first = makespan(3)
        assert first == makespan(3)
        assert first != makespan(4)
        assert all(m > 0 for m in first)
        # Successive steps draw fresh noise (occurrence-keyed).
        assert len(set(first)) > 1
        assert all(m != pytest.approx(base) for m in first)


class TestBitFlips:
    PLAN = FaultPlan(seed=9, events=(BitFlip(prob=0.2, links=((1, 2),)),))

    def test_masks_only_on_matching_links(self):
        injector = _bound(self.PLAN)
        injector.begin_round(0)
        assert injector.flips_active
        assert injector.flip_mask("t", 0, 1, 256) is None
        mask = injector.flip_mask("t", 1, 2, 256)
        assert mask is not None and len(mask) == 256
        assert injector.counters["flipped_bits"] == mask.popcount()
        assert injector.counters["flipped_messages"] == 1

    def test_masks_are_content_keyed(self):
        a = _bound(self.PLAN)
        a.begin_round(0)
        b = _bound(self.PLAN)
        b.begin_round(0)
        # Interleave queries differently; same coordinates, same masks.
        masks_a = [a.flip_mask("t", 1, 2, 64) for _ in range(3)]
        b.flip_mask("other-tag", 1, 2, 64)
        masks_b = [b.flip_mask("t", 1, 2, 64) for _ in range(3)]
        for left, right in zip(masks_a, masks_b):
            assert (left is None) == (right is None)
            if left is not None:
                assert left.equals(right)


class TestCrashesAndRemapping:
    def test_traffic_to_a_crashed_worker_raises(self):
        plan = FaultPlan(seed=0, events=(WorkerCrash(worker=2, round_idx=1),))
        injector = _bound(plan)
        injector.begin_round(0)
        injector.begin_step()
        assert injector.on_message("t", 1, 2, 10) == (0, True)
        injector.begin_round(1)
        injector.begin_step()
        assert injector.take_new_crashes() == (2,)
        assert injector.take_new_crashes() == ()
        assert injector.dead_workers == frozenset({2})
        with pytest.raises(WorkerCrashedError):
            injector.on_message("t", 1, 2, 10)
        with pytest.raises(WorkerCrashedError):
            injector.on_message("t", 2, 3, 10)

    def test_faults_follow_original_ranks_after_rerank(self):
        # Straggle original worker 3; after worker 1 dies and survivors
        # [0, 2, 3] re-rank, original 3 is current rank 2 — its links must
        # still be slow, and original-rank keying must survive the remap.
        plan = FaultPlan(
            seed=0,
            events=(
                Straggler(worker=3, factor=2.0),
                WorkerCrash(worker=1, round_idx=0),
            ),
        )
        cluster = Cluster(ring_topology(4))
        injector = FaultInjector(plan)
        cluster.attach_faults(injector)
        injector.begin_round(0)
        assert injector.take_new_crashes() == (1,)
        cluster.reconfigure(ring_topology(3))
        injector.set_active([0, 2, 3])
        assert injector.dead_workers == frozenset({1})
        # The ring is directed (successor edges): current rank 2 touches
        # exactly (1, 2) and (2, 0).
        slow_links = set(injector._slow)
        assert slow_links == {(1, 2), (2, 0)}
        summary = injector.summary()
        assert summary["dead_workers"] == [1]
        assert summary["active_workers"] == [0, 2, 3]
