"""FaultPlan construction, validation, and JSON round-trip tests."""

import json

import pytest

from repro.faults import (
    BitFlip,
    FaultPlan,
    LinkJitter,
    LinkPartition,
    MessageDrop,
    Straggler,
    WorkerCrash,
    load_fault_plan,
)


def _full_plan() -> FaultPlan:
    return FaultPlan(
        seed=7,
        events=(
            LinkJitter(sigma=0.2, links=((0, 1),), first_round=2, last_round=9),
            Straggler(worker=3, factor=2.5, first_round=1),
            MessageDrop(prob=0.05),
            MessageDrop(prob=0.5, links=((1, 2),), mode="timeout"),
            BitFlip(prob=0.01, links=((2, 3), (3, 2))),
            WorkerCrash(worker=2, round_idx=4),
            LinkPartition(src=0, dst=3, first_round=3, last_round=5),
        ),
        retry_timeout_s=1e-4,
        max_attempts=3,
        quorum=0.6,
    )


class TestEventValidation:
    def test_jitter_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            LinkJitter(sigma=0.0)

    def test_straggler_rejects_speedup(self):
        with pytest.raises(ValueError, match="factor"):
            Straggler(worker=0, factor=0.5)

    def test_drop_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="prob"):
            MessageDrop(prob=0.0)
        with pytest.raises(ValueError, match="prob"):
            MessageDrop(prob=1.5)

    def test_drop_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            MessageDrop(prob=0.1, mode="udp")

    def test_flip_rejects_majority_corruption(self):
        # Flipping more than half the bits is an inverter, not noise.
        with pytest.raises(ValueError, match="prob"):
            BitFlip(prob=0.6)

    def test_window_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="last_round"):
            LinkJitter(sigma=0.1, first_round=5, last_round=4)

    def test_links_reject_self_loops(self):
        with pytest.raises(ValueError, match="pairs"):
            MessageDrop(prob=0.1, links=((1, 1),))

    def test_partition_rejects_self_loop(self):
        with pytest.raises(ValueError, match="distinct"):
            LinkPartition(src=2, dst=2)

    def test_windowed_activity(self):
        event = LinkJitter(sigma=0.1, first_round=2, last_round=4)
        assert [event.active(r) for r in range(6)] == [
            False, False, True, True, True, False,
        ]
        forever = Straggler(worker=0, factor=2.0, first_round=1)
        assert not forever.active(0)
        assert forever.active(10**6)


class TestPlanValidation:
    def test_plan_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="retry_timeout_s"):
            FaultPlan(retry_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            FaultPlan(max_attempts=0)
        with pytest.raises(ValueError, match="quorum"):
            FaultPlan(quorum=1.5)

    def test_plan_rejects_foreign_events(self):
        with pytest.raises(TypeError, match="unknown fault event"):
            FaultPlan(events=("not-an-event",))

    def test_validate_checks_ranks_against_worker_count(self):
        plan = _full_plan()
        plan.validate(8)
        with pytest.raises(ValueError, match="rank 3"):
            plan.validate(3)

    def test_validate_without_worker_count_is_a_noop(self):
        _full_plan().validate(None)

    def test_crashes_filter(self):
        assert _full_plan().crashes() == (WorkerCrash(worker=2, round_idx=4),)
        assert FaultPlan().crashes() == ()


class TestJsonRoundTrip:
    def test_round_trip_preserves_every_event(self):
        plan = _full_plan()
        restored = FaultPlan.from_json_dict(plan.to_json_dict())
        assert restored == plan

    def test_to_json_is_plain_sorted_json(self):
        payload = json.loads(_full_plan().to_json())
        assert payload["seed"] == 7
        assert len(payload["events"]) == 7
        assert all("kind" in entry for entry in payload["events"])

    def test_load_fault_plan_reads_the_cli_file(self, tmp_path):
        plan = _full_plan()
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        assert load_fault_plan(str(path)) == plan

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultPlan.from_json_dict({"events": [{"kind": "solar_flare"}]})

    def test_minimal_document_uses_defaults(self):
        plan = FaultPlan.from_json_dict({})
        assert plan == FaultPlan()
