"""Statistical unbiasedness of the ⊙ merge under wire bit-flips.

The Eq. (2) induction says one merge preserves the weighted +1 probability:
``E[v ⊙ v*] = (a p + b q) / (a + b)`` where ``p``/``q`` are the incoming and
local +1 probabilities.  A symmetric wire flip with rate ``f`` transforms the
incoming probability to ``p' = p + f (1 - 2p)`` *before* the merge, so the
merged expectation is still exactly the Eq. (2) form evaluated at ``p'`` —
corruption inflates the variance of the consensus sign but introduces no
directional bias (flips toward +1 and toward -1 balance).  These chi-square
tests pin both halves of that statement, once on the raw bit ops and once
through the real ``FaultInjector`` masks.

All draws are seeded, so the chi-square statistics are deterministic — no
flaky-threshold retries.
"""

import numpy as np
import pytest
from scipy import stats

from repro.comm.bits import PackedBits
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.core.sign_ops import (
    expected_merge_probability,
    merge_sign_bits,
    transient_vector,
)
from repro.faults import BitFlip, FaultInjector, FaultPlan

N = 200_000
ALPHA = 1e-3


def _chi_square_pvalue(ones: int, total: int, prob: float) -> float:
    observed = np.array([ones, total - ones], dtype=np.float64)
    expected = np.array([prob * total, (1.0 - prob) * total])
    return float(stats.chisquare(observed, expected).pvalue)


def _merge_with_flips(p, q, a, b, flip_prob, seed):
    """One flipped-wire merge over N coordinates; returns the merged bits."""
    rng = np.random.default_rng(seed)
    received = (rng.random(N) < p).astype(np.uint8)
    local = (rng.random(N) < q).astype(np.uint8)
    if flip_prob:
        received = received ^ (rng.random(N) < flip_prob).astype(np.uint8)
    transient = transient_vector(local, a, b, rng)
    return merge_sign_bits(received, local, transient)


class TestMergeUnderFlips:
    @pytest.mark.parametrize(
        "p,q,a,b,flip",
        [
            (0.5, 0.5, 1, 1, 0.0),
            (0.3, 0.8, 1, 1, 0.05),
            (0.3, 0.8, 3, 1, 0.05),
            (0.9, 0.1, 2, 2, 0.2),
            (0.5, 0.5, 4, 1, 0.5),
        ],
    )
    def test_merged_mean_matches_flip_adjusted_eq2(self, p, q, a, b, flip):
        flipped_p = p + flip * (1.0 - 2.0 * p)
        expected = float(expected_merge_probability(flipped_p, q, a, b))
        merged = _merge_with_flips(p, q, a, b, flip, seed=17)
        pvalue = _chi_square_pvalue(int(merged.sum()), N, expected)
        assert pvalue > ALPHA

    def test_symmetric_flips_leave_a_balanced_consensus_unbiased(self):
        # p = q = 1/2 is the fixed point: whatever the flip rate, the merged
        # probability stays exactly 1/2 — flips cannot push the consensus.
        for flip in (0.05, 0.2, 0.5):
            merged = _merge_with_flips(0.5, 0.5, 1, 1, flip, seed=23)
            assert _chi_square_pvalue(int(merged.sum()), N, 0.5) > ALPHA

    def test_flips_shrink_the_signal_not_the_center(self):
        # With p = 0.9, q = 0.9 the clean merge centers at 0.9; a 20% flip
        # rate drags the *incoming* arm toward 1/2 (0.74) so the merged mean
        # lands between — attenuated signal, no sign reversal.  That is the
        # "variance inflation without bias" claim in operational form.
        clean = _merge_with_flips(0.9, 0.9, 1, 1, 0.0, seed=31).mean()
        noisy = _merge_with_flips(0.9, 0.9, 1, 1, 0.2, seed=31).mean()
        expected = float(expected_merge_probability(0.74, 0.9, 1, 1))
        assert noisy < clean
        assert noisy > 0.5
        assert noisy == pytest.approx(expected, abs=0.01)


class TestInjectorMasksAreFair:
    def test_flip_masks_hit_at_the_configured_rate(self):
        # Aggregate many injector masks and chi-square the flip count: the
        # content-keyed Philox draws must realize the plan's Bernoulli rate.
        prob = 0.05
        cluster = Cluster(ring_topology(4))
        injector = FaultInjector(
            FaultPlan(seed=41, events=(BitFlip(prob=prob),))
        )
        cluster.attach_faults(injector)
        injector.begin_round(0)
        length, draws = 4096, 50
        flipped = 0
        for _ in range(draws):
            mask = injector.flip_mask("t", 0, 1, length)
            if mask is not None:
                flipped += mask.popcount()
        pvalue = _chi_square_pvalue(flipped, length * draws, prob)
        assert pvalue > ALPHA

    def test_mask_application_matches_the_reference_merge(self):
        # End to end: XOR-ing an injector mask into a packed payload, then
        # merging, equals the unpacked reference fed the same flipped bits.
        rng = np.random.default_rng(5)
        length = 2048
        received_bits = (rng.random(length) < 0.3).astype(np.uint8)
        local_bits = (rng.random(length) < 0.8).astype(np.uint8)
        cluster = Cluster(ring_topology(4))
        injector = FaultInjector(
            FaultPlan(seed=2, events=(BitFlip(prob=0.1),))
        )
        cluster.attach_faults(injector)
        injector.begin_round(0)
        mask = injector.flip_mask("t", 0, 1, length)
        assert mask is not None
        corrupted_packed = PackedBits.from_bits(received_bits) ^ mask
        corrupted_ref = received_bits ^ mask.to_bits().astype(np.uint8)
        transient = transient_vector(local_bits, 1, 1, np.random.default_rng(8))
        reference = merge_sign_bits(corrupted_ref, local_bits, transient)
        packed_view = corrupted_packed.to_bits().astype(np.uint8)
        assert np.array_equal(packed_view, corrupted_ref)
        assert reference.mean() != pytest.approx(
            merge_sign_bits(received_bits, local_bits, transient).mean()
        )
