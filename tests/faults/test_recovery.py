"""Crash-recovery policy: quorum, topology degradation, plan recompilation."""

import pytest

from repro.comm.topology import (
    halving_doubling_topology,
    ring_topology,
    torus_topology,
    tree_topology,
)
from repro.faults import FaultPlan, QuorumLostError
from repro.faults.recovery import (
    check_quorum,
    compile_degraded_plan,
    degraded_topology,
)
from repro.sched.plan import CompileContext


class TestQuorum:
    def test_majority_quorum(self):
        plan = FaultPlan(quorum=0.5)
        check_quorum(plan, 6, [0, 1, 2])
        with pytest.raises(QuorumLostError, match="quorum"):
            check_quorum(plan, 6, [0, 1])

    def test_consensus_needs_two_even_with_zero_quorum(self):
        plan = FaultPlan(quorum=0.0)
        check_quorum(plan, 8, [3, 7])
        with pytest.raises(QuorumLostError):
            check_quorum(plan, 8, [3])

    def test_strict_quorum(self):
        plan = FaultPlan(quorum=1.0)
        with pytest.raises(QuorumLostError):
            check_quorum(plan, 4, [0, 1, 2])


class TestDegradedTopology:
    def test_ring_stays_a_ring(self):
        degraded = degraded_topology(ring_topology(6), 5)
        assert degraded.name == "ring"
        assert degraded.num_workers == 5

    def test_tree_keeps_its_arity(self):
        degraded = degraded_topology(tree_topology(13, arity=3), 9)
        assert degraded.name == "tree"
        assert degraded.meta["arity"] == 3
        assert degraded.num_workers == 9

    def test_halving_doubling_shrinks_to_powers_of_two_only(self):
        still_pow2 = degraded_topology(halving_doubling_topology(8), 4)
        assert still_pow2.name == "halving_doubling"
        fallback = degraded_topology(halving_doubling_topology(8), 6)
        assert fallback.name == "ring"
        assert fallback.num_workers == 6

    def test_torus_falls_back_to_a_ring(self):
        degraded = degraded_topology(torus_topology(2, 3), 5)
        assert degraded.name == "ring"
        assert degraded.num_workers == 5

    def test_rejects_lone_survivor(self):
        with pytest.raises(ValueError, match="at least 2"):
            degraded_topology(ring_topology(4), 1)


class TestCompileDegradedPlan:
    def test_provenance_records_the_crash_lineage(self):
        plan, rebuilt = compile_degraded_plan(
            ring_topology(6), [0, 1, 3, 4, 5], dimension=103
        )
        assert rebuilt.num_workers == 5
        assert plan.num_workers == 5
        assert dict(plan.provenance) == {
            "degraded_from": "ring",
            "survivors": "0,1,3,4,5",
        }
        plan.validate()

    def test_degraded_plan_digest_differs_from_a_fresh_plan(self):
        # "Ring of 5" and "ring of 6 that lost rank 2" run the same schedule
        # but are different artifacts: provenance feeds the digest, so golden
        # snapshots and reports can tell them apart.
        from repro.allreduce import get_topology

        degraded, _ = compile_degraded_plan(
            ring_topology(6), [0, 1, 3, 4, 5], dimension=103
        )
        fresh = get_topology("ring").compile_one_bit(
            CompileContext(num_workers=5, dimension=103, meta={})
        )
        assert degraded.digest() != fresh.digest()
        assert degraded.steps == fresh.steps

    def test_provenance_survives_json_round_trip(self):
        import json

        plan, _ = compile_degraded_plan(
            torus_topology(2, 3), [0, 1, 2, 3, 5], dimension=64
        )
        document = json.loads(json.dumps(plan.to_json_dict()))
        assert document["provenance"] == [
            ["degraded_from", "torus"],
            ["survivors", "0,1,2,3,5"],
        ]

    def test_fresh_plans_omit_provenance_entirely(self):
        # The field is serialized only when non-empty, so every pre-existing
        # plan digest and golden snapshot is untouched by its introduction.
        from repro.allreduce import get_topology

        plan = get_topology("ring").compile_one_bit(
            CompileContext(num_workers=4, dimension=32, meta={})
        )
        assert plan.provenance == ()
        assert "provenance" not in plan.to_json_dict()

    def test_segment_elems_pass_through(self):
        plan, rebuilt = compile_degraded_plan(
            ring_topology(6), [0, 1, 2, 3, 4], dimension=90, segment_elems=40
        )
        assert rebuilt.name == "ring"
        assert plan.kind == "one_bit"
        plan.validate()
