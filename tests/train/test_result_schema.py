"""TrainResult serialization round-trip and schema-stability tests."""

import dataclasses
import json

from repro.comm.timing import Phase
from repro.train.metrics import RoundRecord, TrainResult


def _sample_result() -> TrainResult:
    result = TrainResult(
        strategy_name="marsit",
        final_accuracy=0.75,
        total_sim_time_s=1.5,
        total_comm_bytes=4096,
        time_breakdown_s={phase.value: 0.5 for phase in Phase},
        rounds_run=20,
        diverged=False,
        avg_bits_per_element=1.25,
    )
    for round_idx in (0, 10, 19):
        result.history.append(
            RoundRecord(
                round_idx=round_idx,
                sim_time_s=0.05 * (round_idx + 1),
                comm_bytes=128 * (round_idx + 1),
                train_loss=2.0 / (round_idx + 1),
                test_accuracy=0.03 * round_idx,
                test_loss=1.9 / (round_idx + 1),
                bits_per_element=1.0,
            )
        )
    return result


class TestRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        original = _sample_result()
        restored = TrainResult.from_dict(original.to_dict())
        assert restored == original

    def test_json_round_trip(self, tmp_path):
        original = _sample_result()
        path = tmp_path / "run.json"
        original.to_json(str(path))
        restored = TrainResult.from_dict(json.loads(path.read_text()))
        assert restored == original
        assert restored.best_accuracy() == original.best_accuracy()

    def test_from_dict_tolerates_minimal_document(self):
        restored = TrainResult.from_dict({"strategy": "psgd"})
        assert restored.strategy_name == "psgd"
        assert restored.history == []
        assert restored.avg_bits_per_element == 32.0


class TestSchemaStability:
    """Downstream tooling (the report CLI, experiment tracking) reads these
    documents by key; renaming a field is a breaking change this test makes
    deliberate."""

    def test_top_level_keys(self):
        assert set(_sample_result().to_dict()) == {
            "strategy",
            "final_accuracy",
            "best_accuracy",
            "rounds_run",
            "diverged",
            "total_sim_time_s",
            "total_comm_bytes",
            "avg_bits_per_element",
            "time_breakdown_s",
            "history",
            "plan_digest",
            "num_plan_steps",
            "fault_summary",
        }

    def test_time_breakdown_keys_match_phase_values(self):
        document = _sample_result().to_dict()
        assert set(document["time_breakdown_s"]) == {p.value for p in Phase}

    def test_history_record_keys(self):
        record = _sample_result().to_dict()["history"][0]
        assert set(record) == {
            "round",
            "sim_time_s",
            "comm_bytes",
            "train_loss",
            "test_accuracy",
            "test_loss",
            "bits_per_element",
        }

    def test_round_record_fields(self):
        assert [f.name for f in dataclasses.fields(RoundRecord)] == [
            "round_idx",
            "sim_time_s",
            "comm_bytes",
            "train_loss",
            "test_accuracy",
            "test_loss",
            "bits_per_element",
        ]

    def test_to_json_is_plain_json(self):
        text = _sample_result().to_json()
        assert json.loads(text)["strategy"] == "marsit"
