"""Tests for the six synchronization strategies."""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology, star_topology, torus_topology
from repro.train.strategies import (
    CascadingSSDMStrategy,
    EFSignSGDStrategy,
    MarsitStrategy,
    PSGDStrategy,
    SSDMStrategy,
    SignSGDMajorityStrategy,
    _allgather_scalars,
)

M, D = 4, 60


def grads(rng, m=M, d=D):
    return [rng.standard_normal(d) for _ in range(m)]


def ring():
    return Cluster(ring_topology(M))


ALL_STRATEGIES = [
    lambda: PSGDStrategy(lr=0.1, num_workers=M),
    lambda: PSGDStrategy(lr=0.1, num_workers=M, base_optimizer="adam"),
    lambda: PSGDStrategy(lr=0.1, num_workers=M, base_optimizer="sgd"),
    lambda: SignSGDMajorityStrategy(lr=0.01, num_workers=M),
    lambda: EFSignSGDStrategy(lr=0.1, num_workers=M),
    lambda: SSDMStrategy(lr=0.01, num_workers=M),
    lambda: CascadingSSDMStrategy(lr=0.1, num_workers=M),
    lambda: MarsitStrategy(local_lr=0.1, global_lr=0.01, num_workers=M, dimension=D),
    lambda: MarsitStrategy(
        local_lr=0.1, global_lr=0.01, num_workers=M, dimension=D,
        full_precision_every=3,
    ),
]


class TestConsensus:
    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_updates_identical_across_workers(self, factory, rng):
        strategy = factory()
        result = strategy.step(ring(), grads(rng), round_idx=1)
        assert len(result.updates) == M
        for update in result.updates[1:]:
            assert np.array_equal(update, result.updates[0])

    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_stateful_across_rounds(self, factory, rng):
        strategy = factory()
        for round_idx in range(4):
            result = strategy.step(ring(), grads(rng), round_idx)
            assert np.isfinite(result.updates[0]).all()


class TestPSGD:
    def test_sgd_update_is_lr_times_mean(self, rng):
        strategy = PSGDStrategy(lr=0.5, num_workers=M, base_optimizer="sgd")
        vectors = grads(rng)
        result = strategy.step(ring(), vectors, 0)
        assert np.allclose(result.updates[0], 0.5 * np.mean(vectors, axis=0),
                           atol=1e-5)

    def test_momentum_accumulates(self, rng):
        strategy = PSGDStrategy(lr=1.0, num_workers=M, momentum=0.5)
        vectors = grads(rng)
        first = strategy.step(ring(), vectors, 0).updates[0]
        second = strategy.step(ring(), vectors, 1).updates[0]
        assert np.allclose(second, 1.5 * first, atol=1e-4)

    def test_works_on_torus(self, rng):
        strategy = PSGDStrategy(lr=0.5, num_workers=4, base_optimizer="sgd")
        cluster = Cluster(torus_topology(2, 2))
        vectors = grads(rng)
        result = strategy.step(cluster, vectors, 0)
        assert np.allclose(result.updates[0], 0.5 * np.mean(vectors, axis=0),
                           atol=1e-5)

    def test_works_on_star(self, rng):
        strategy = PSGDStrategy(lr=0.5, num_workers=4, base_optimizer="sgd")
        cluster = Cluster(star_topology(4, server=0))
        vectors = grads(rng)
        result = strategy.step(cluster, vectors, 0)
        assert np.allclose(result.updates[0], 0.5 * np.mean(vectors, axis=0),
                           atol=1e-4)

    def test_rejects_unknown_optimizer(self):
        with pytest.raises(ValueError):
            PSGDStrategy(lr=0.1, num_workers=2, base_optimizer="lamb")


class TestSignSGDMajority:
    def test_update_is_pm_lr(self, rng):
        strategy = SignSGDMajorityStrategy(lr=0.02, num_workers=M, momentum=0.0)
        result = strategy.step(ring(), grads(rng), 0)
        assert np.isin(result.updates[0], (-0.02, 0.02)).all()

    def test_majority_direction(self):
        strategy = SignSGDMajorityStrategy(lr=1.0, num_workers=3, momentum=0.0)
        cluster = Cluster(ring_topology(3))
        vectors = [np.array([1.0, -1.0]), np.array([1.0, 1.0]), np.array([-1.0, -1.0])]
        result = strategy.step(cluster, vectors, 0)
        assert np.array_equal(result.updates[0], [1.0, -1.0])

    def test_bits_reflect_expansion(self, rng):
        strategy = SignSGDMajorityStrategy(lr=0.01, num_workers=M)
        result = strategy.step(ring(), grads(rng), 0)
        assert result.bits_per_element > 1.0


class TestEFSignSGD:
    def test_error_feedback_tracks_gradient_sum(self, rng):
        strategy = EFSignSGDStrategy(lr=1.0, num_workers=M, momentum=0.0)
        total_grad = np.zeros(D)
        total_update = np.zeros(D)
        for round_idx in range(60):
            vectors = grads(rng)
            total_grad += np.mean(vectors, axis=0)
            total_update += strategy.step(ring(), vectors, round_idx).updates[0]
        # Memories stay bounded, so cumulative update ~ cumulative gradient.
        drift = np.abs(total_update - total_grad).mean()
        assert drift < 0.2 * np.abs(total_grad).mean() + 2.0


class TestSSDM:
    def test_norm_scaled_update_unbiased(self, rng):
        vectors = grads(rng)
        expected = np.mean(vectors, axis=0)
        total = np.zeros(D)
        trials = 300
        for trial in range(trials):
            strategy = SSDMStrategy(
                lr=1.0, num_workers=M, seed=trial,
                base_optimizer="sgd", norm_scaled=True,
            )
            total += strategy.step(ring(), [v.copy() for v in vectors], 0).updates[0]
        estimate = total / trials
        # Per-element std ~ norm/sqrt(trials): generous but directional.
        assert np.abs(estimate - expected).mean() < 1.5

    def test_sign_descent_update_bounded_by_lr(self, rng):
        strategy = SSDMStrategy(lr=0.01, num_workers=M, base_optimizer="sgd")
        result = strategy.step(ring(), grads(rng), 0)
        assert np.abs(result.updates[0]).max() <= 0.01 + 1e-12

    def test_sign_descent_direction_unbiased(self, rng):
        # E[mean of stochastic signs] = mean of g_m / ||g_m||.
        vectors = grads(rng)
        expected = np.mean([v / np.linalg.norm(v) for v in vectors], axis=0)
        total = np.zeros(D)
        trials = 400
        for trial in range(trials):
            strategy = SSDMStrategy(
                lr=1.0, num_workers=M, seed=trial, base_optimizer="sgd"
            )
            total += strategy.step(ring(), [v.copy() for v in vectors], 0).updates[0]
        estimate = total / trials
        assert np.corrcoef(estimate, expected)[0, 1] > 0.5

    def test_adam_base_runs(self, rng):
        strategy = SSDMStrategy(lr=0.001, num_workers=M, base_optimizer="adam")
        for round_idx in range(3):
            result = strategy.step(ring(), grads(rng), round_idx)
        assert np.isfinite(result.updates[0]).all()


class TestCascading:
    def test_normalized_update_has_gradient_scale(self, rng):
        strategy = CascadingSSDMStrategy(lr=1.0, num_workers=M, normalize=True)
        vectors = grads(rng)
        result = strategy.step(ring(), vectors, 0)
        target = np.mean([np.linalg.norm(v) for v in vectors])
        assert np.linalg.norm(result.updates[0]) == pytest.approx(target, rel=1e-6)

    def test_unnormalized_explodes_with_ssdm(self, rng):
        strategy = CascadingSSDMStrategy(lr=1.0, num_workers=M, normalize=False)
        vectors = grads(rng)
        result = strategy.step(ring(), vectors, 0)
        # Theorem 3: the decoded norm is >> any worker's gradient norm.
        assert np.linalg.norm(result.updates[0]) > 10 * np.linalg.norm(vectors[0])

    def test_momentum_option(self, rng):
        strategy = CascadingSSDMStrategy(lr=0.1, num_workers=M, momentum=0.9)
        for round_idx in range(3):
            result = strategy.step(ring(), grads(rng), round_idx)
        assert np.isfinite(result.updates[0]).all()


class TestMarsitStrategy:
    def test_one_bit_bits(self, rng):
        strategy = MarsitStrategy(
            local_lr=0.1, global_lr=0.01, num_workers=M, dimension=D
        )
        result = strategy.step(ring(), grads(rng), 1)
        assert result.bits_per_element == 1.0

    def test_k_schedule_bits(self, rng):
        strategy = MarsitStrategy(
            local_lr=0.1, global_lr=0.01, num_workers=M, dimension=D,
            full_precision_every=2,
        )
        bits = [
            strategy.step(ring(), grads(rng), t).bits_per_element for t in range(4)
        ]
        assert bits == [32.0, 1.0, 32.0, 1.0]

    def test_local_lr_decay_applied_at_full_precision(self, rng):
        strategy = MarsitStrategy(
            local_lr=1.0, global_lr=0.01, num_workers=M, dimension=D,
            full_precision_every=2, local_lr_decay=0.1,
        )
        strategy.step(ring(), grads(rng), 0)  # t=0 FP but round 0: no decay
        assert strategy._optimizer.local_lr == pytest.approx(1.0)
        strategy.step(ring(), grads(rng), 1)
        strategy.step(ring(), grads(rng), 2)  # FP round: decay
        assert strategy._optimizer.local_lr == pytest.approx(0.1)

    def test_name_reflects_k(self):
        plain = MarsitStrategy(local_lr=0.1, global_lr=0.01, num_workers=2,
                               dimension=4)
        periodic = MarsitStrategy(local_lr=0.1, global_lr=0.01, num_workers=2,
                                  dimension=4, full_precision_every=100)
        assert plain.name == "marsit"
        assert periodic.name == "marsit-100"

    def test_rejects_unknown_base(self):
        with pytest.raises(ValueError):
            MarsitStrategy(local_lr=0.1, global_lr=0.01, num_workers=2,
                           dimension=4, base_optimizer="rmsprop")


class TestAllgatherScalars:
    def test_ring_allgather(self):
        cluster = Cluster(ring_topology(5))
        values = [float(i) * 1.5 for i in range(5)]
        gathered = _allgather_scalars(cluster, values)
        assert np.allclose(gathered, values)

    def test_star_allgather_restores_rank_order(self):
        cluster = Cluster(star_topology(4, server=1))
        values = [10.0, 11.0, 12.0, 13.0]
        gathered = _allgather_scalars(cluster, values)
        assert np.allclose(gathered, values)

    def test_single_worker(self):
        cluster = Cluster(ring_topology(1))
        assert np.allclose(_allgather_scalars(cluster, [3.0]), [3.0])
