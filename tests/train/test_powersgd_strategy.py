"""Tests for the PowerSGD synchronization strategy (related-work baseline)."""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology
from repro.train.strategies import MarsitStrategy, PowerSGDStrategy

M, D = 4, 256


def grads(rng, m=M, d=D):
    return [rng.standard_normal(d) for _ in range(m)]


def ring():
    return Cluster(ring_topology(M))


class TestPowerSGD:
    def test_consensus(self, rng):
        strategy = PowerSGDStrategy(lr=0.1, num_workers=M, rank=2)
        result = strategy.step(ring(), grads(rng), 0)
        for update in result.updates[1:]:
            assert np.array_equal(update, result.updates[0])

    def test_low_rank_structure(self, rng):
        strategy = PowerSGDStrategy(lr=1.0, num_workers=M, rank=1,
                                    base_optimizer="sgd")
        result = strategy.step(ring(), grads(rng), 0)
        matrix = result.updates[0].reshape(16, 16)
        singular_values = np.linalg.svd(matrix, compute_uv=False)
        # Rank-1 output: second singular value numerically zero.
        assert singular_values[1] < 1e-9 * singular_values[0]

    def test_error_feedback_accumulates(self, rng):
        # The compressed total tracks the true total over rounds.
        strategy = PowerSGDStrategy(lr=1.0, num_workers=1, rank=2,
                                    base_optimizer="sgd")
        cluster = Cluster(ring_topology(1))
        total_in = np.zeros(D)
        total_out = np.zeros(D)
        fixed = rng.standard_normal(D)  # persistent direction
        for round_idx in range(30):
            total_in += fixed
            result = strategy.step(cluster, [fixed.copy()], round_idx)
            total_out += result.updates[0]
        # With warm-started subspace iteration on a rank-1 signal, error
        # feedback recovers nearly all of the persistent direction.
        assert np.linalg.norm(total_out - total_in) < 0.15 * np.linalg.norm(total_in)

    def test_two_sequential_ring_passes(self, rng):
        # The Section 2 criticism: 2x the ring latency of a single pass.
        powersgd_cluster = ring()
        PowerSGDStrategy(lr=0.1, num_workers=M, rank=1).step(
            powersgd_cluster, grads(rng), 0
        )
        marsit_cluster = ring()
        strategy = MarsitStrategy(local_lr=0.1, global_lr=0.01,
                                  num_workers=M, dimension=D)
        strategy.step(marsit_cluster, grads(rng), 1)
        # Count synchronous steps through the latency contribution.
        latency = powersgd_cluster.cost_model.latency_s
        powersgd_steps = round(
            powersgd_cluster.timeline.seconds[Phase.COMMUNICATION] / latency
        )
        marsit_steps = round(
            marsit_cluster.timeline.seconds[Phase.COMMUNICATION] / latency
        )
        # PowerSGD: 2 sequential all-reduces = 4 (M-1) hops; Marsit 2 (M-1).
        assert powersgd_steps == pytest.approx(4 * (M - 1), abs=1)
        assert marsit_steps == pytest.approx(2 * (M - 1), abs=1)

    def test_small_wire_volume(self, rng):
        cluster = ring()
        PowerSGDStrategy(lr=0.1, num_workers=M, rank=2).step(
            cluster, grads(rng), 0
        )
        dense = 2 * (M - 1) * D * 4  # one fp32 ring pass
        assert cluster.total_bytes < dense

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            PowerSGDStrategy(lr=0.0, num_workers=2)
        with pytest.raises(ValueError):
            PowerSGDStrategy(lr=0.1, num_workers=2, rank=0)
