"""Tests for the distributed trainer and metrics."""

import numpy as np
import pytest

from repro.data import mnist_like, train_test_split
from repro.nn.zoo import mlp
from repro.train import (
    DistributedTrainer,
    MarsitStrategy,
    PSGDStrategy,
    TrainConfig,
    make_cluster,
)
from repro.train.metrics import RoundRecord, TrainResult, evaluate


@pytest.fixture(scope="module")
def tiny_data():
    data = mnist_like(num_samples=400, size=8, noise=0.5, seed=0)
    return train_test_split(data, 0.25, seed=1)


def factory():
    return mlp(64, hidden=(16,), num_classes=10, seed=7)


class TestTrainConfig:
    def test_torus_requires_shape(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=4, rounds=10, topology="torus")

    def test_torus_shape_must_multiply(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=4, rounds=10, topology="torus",
                        torus_shape=(2, 3))

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=2, rounds=10, topology="mesh")

    def test_make_cluster_topologies(self):
        ring = make_cluster(TrainConfig(num_workers=3, rounds=1))
        assert ring.topology.name == "ring" and ring.num_workers == 3
        torus = make_cluster(
            TrainConfig(num_workers=4, rounds=1, topology="torus",
                        torus_shape=(2, 2))
        )
        assert torus.topology.name == "torus"
        star = make_cluster(TrainConfig(num_workers=4, rounds=1, topology="star"))
        assert star.topology.name == "star" and star.num_workers == 4


class TestTraining:
    def test_psgd_learns(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=3, rounds=60, batch_size=16,
                             eval_every=20, seed=0)
        strategy = PSGDStrategy(lr=0.05, num_workers=3)
        result = DistributedTrainer(factory, train, test, strategy, config).run()
        assert not result.diverged
        assert result.final_accuracy > 0.5
        assert result.rounds_run == 60

    def test_history_recorded(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=2, rounds=21, batch_size=16,
                             eval_every=10, seed=0)
        result = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.05, num_workers=2), config
        ).run()
        rounds = [record.round_idx for record in result.history]
        assert rounds == [0, 10, 20]
        # monotone accounting
        times = [record.sim_time_s for record in result.history]
        bytes_ = [record.comm_bytes for record in result.history]
        assert times == sorted(times)
        assert bytes_ == sorted(bytes_)

    def test_divergence_detection(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=2, rounds=200, batch_size=16,
                             eval_every=50, seed=0, divergence_loss=1e3)
        strategy = PSGDStrategy(lr=50.0, num_workers=2)  # absurd LR
        result = DistributedTrainer(factory, train, test, strategy, config).run()
        assert result.diverged
        assert result.rounds_run < 200

    def test_marsit_trains_end_to_end(self, tiny_data):
        train, test = tiny_data
        dimension = factory().num_parameters()
        config = TrainConfig(num_workers=4, rounds=80, batch_size=16,
                             eval_every=20, seed=0)
        strategy = MarsitStrategy(local_lr=0.05, global_lr=4e-3, num_workers=4,
                                  dimension=dimension)
        result = DistributedTrainer(factory, train, test, strategy, config).run()
        assert not result.diverged
        assert result.best_accuracy() > 0.5
        assert result.avg_bits_per_element == pytest.approx(1.0)

    def test_time_breakdown_has_three_phases(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=2, rounds=5, batch_size=16, seed=0)
        result = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.05, num_workers=2), config
        ).run()
        assert set(result.time_breakdown_s) == {
            "computation", "compression", "communication"
        }
        assert result.time_breakdown_s["computation"] > 0
        assert result.time_breakdown_s["communication"] > 0

    def test_deterministic_given_seed(self, tiny_data):
        train, test = tiny_data
        def run():
            config = TrainConfig(num_workers=2, rounds=15, batch_size=16,
                                 eval_every=5, seed=3)
            return DistributedTrainer(
                factory, train, test,
                PSGDStrategy(lr=0.05, num_workers=2), config,
            ).run()

        a, b = run(), run()
        assert a.final_accuracy == b.final_accuracy
        assert a.total_comm_bytes == b.total_comm_bytes


class TestMetrics:
    def test_evaluate_restores_train_mode(self, tiny_data):
        train, test = tiny_data
        model = factory()
        accuracy, loss = evaluate(model, test)
        assert 0.0 <= accuracy <= 1.0
        assert np.isfinite(loss)
        assert model.training

    def test_evaluate_max_batches(self, tiny_data):
        _, test = tiny_data
        model = factory()
        accuracy, _ = evaluate(model, test, batch_size=10, max_batches=2)
        assert 0.0 <= accuracy <= 1.0

    def test_result_round_queries(self):
        result = TrainResult(strategy_name="x")
        result.history = [
            RoundRecord(0, 1.0, 100, 2.0, 0.3, 2.0, 32.0),
            RoundRecord(10, 2.0, 200, 1.0, 0.6, 1.0, 32.0),
            RoundRecord(20, 3.0, 300, 0.5, 0.9, 0.5, 32.0),
        ]
        assert result.rounds_to_accuracy(0.5) == 10
        assert result.time_to_accuracy(0.5) == 2.0
        assert result.bytes_to_accuracy(0.85) == 300
        assert result.rounds_to_accuracy(0.99) is None
        assert result.best_accuracy() == 0.9


class TestSharding:
    def test_dirichlet_sharding_runs(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=3, rounds=5, batch_size=8,
                             eval_every=5, seed=0, sharding="dirichlet",
                             dirichlet_alpha=0.5)
        result = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.05, num_workers=3), config
        ).run()
        assert result.rounds_run == 5

    def test_rejects_unknown_sharding(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=2, rounds=5, sharding="sorted")

    def test_tree_topology_trains(self, tiny_data):
        train, test = tiny_data
        dimension = factory().num_parameters()
        config = TrainConfig(num_workers=5, rounds=5, batch_size=8,
                             eval_every=5, seed=0, topology="tree")
        strategy = MarsitStrategy(local_lr=0.05, global_lr=4e-3,
                                  num_workers=5, dimension=dimension)
        result = DistributedTrainer(factory, train, test, strategy, config).run()
        assert result.rounds_run == 5


class TestByzantineWorkers:
    def test_sign_flips_applied(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=3, rounds=1, batch_size=16, seed=0,
                             byzantine_workers=1)
        trainer = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.05, num_workers=3), config
        )
        honest = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.05, num_workers=3),
            TrainConfig(num_workers=3, rounds=1, batch_size=16, seed=0),
        )
        bad, _ = trainer._worker_gradients()
        good, _ = honest._worker_gradients()
        assert np.allclose(bad[0], -10.0 * good[0])
        assert np.allclose(bad[1], good[1])

    def test_majority_vote_tolerates_minority(self, tiny_data):
        from repro.train import SignSGDMajorityStrategy

        train, test = tiny_data
        config = TrainConfig(num_workers=5, rounds=60, batch_size=16,
                             eval_every=20, seed=0, byzantine_workers=1)
        strategy = SignSGDMajorityStrategy(lr=0.002, num_workers=5)
        result = DistributedTrainer(factory, train, test, strategy, config).run()
        assert result.best_accuracy() > 0.6  # still learns under attack

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=3, rounds=1, byzantine_workers=4)


class TestLocalSteps:
    def test_local_steps_reduce_sync_frequency(self, tiny_data):
        # At equal total compute (rounds x local_steps), the multi-step run
        # communicates fewer bytes.
        train, test = tiny_data

        def run(rounds, local_steps):
            config = TrainConfig(num_workers=3, rounds=rounds, batch_size=16,
                                 eval_every=rounds, seed=0,
                                 local_steps=local_steps, local_step_lr=0.05)
            return DistributedTrainer(
                factory, train, test,
                PSGDStrategy(lr=0.05, num_workers=3), config,
            ).run()

        single = run(rounds=20, local_steps=1)
        multi = run(rounds=5, local_steps=4)
        assert multi.total_comm_bytes == single.total_comm_bytes / 4
        assert multi.best_accuracy() > 0.2  # still learns

    def test_parameters_restored_between_workers(self, tiny_data):
        train, test = tiny_data
        config = TrainConfig(num_workers=2, rounds=1, batch_size=16, seed=0,
                             local_steps=3, local_step_lr=0.05)
        trainer = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.05, num_workers=2), config
        )
        before = trainer.model.flatten_params()
        trainer._worker_gradients()
        assert np.array_equal(trainer.model.flatten_params(), before)

    def test_computation_charged_per_step(self, tiny_data):
        train, test = tiny_data

        def comp_time(local_steps):
            config = TrainConfig(num_workers=2, rounds=2, batch_size=16,
                                 seed=0, local_steps=local_steps,
                                 eval_every=2)
            result = DistributedTrainer(
                factory, train, test,
                PSGDStrategy(lr=0.05, num_workers=2), config,
            ).run()
            return result.time_breakdown_s["computation"]

        assert comp_time(4) == pytest.approx(4 * comp_time(1))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=2, rounds=1, local_steps=0)
        with pytest.raises(ValueError):
            TrainConfig(num_workers=2, rounds=1, local_step_lr=0.0)
