"""All strategies under the torus topology (the Figure 5 TAR path)."""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import torus_topology
from repro.train.strategies import (
    CascadingSSDMStrategy,
    EFSignSGDStrategy,
    MarsitStrategy,
    PSGDStrategy,
    SSDMStrategy,
    SignSGDMajorityStrategy,
)

M, D = 4, 48


def torus():
    return Cluster(torus_topology(2, 2))


def grads(rng):
    return [rng.standard_normal(D) for _ in range(M)]


TORUS_STRATEGIES = [
    lambda: PSGDStrategy(lr=0.1, num_workers=M),
    lambda: SignSGDMajorityStrategy(lr=0.01, num_workers=M),
    lambda: EFSignSGDStrategy(lr=0.1, num_workers=M),
    lambda: SSDMStrategy(lr=0.01, num_workers=M),
    lambda: MarsitStrategy(local_lr=0.1, global_lr=0.01, num_workers=M,
                           dimension=D),
    lambda: MarsitStrategy(local_lr=0.1, global_lr=0.01, num_workers=M,
                           dimension=D, full_precision_every=2),
]


class TestStrategiesOnTorus:
    @pytest.mark.parametrize("factory", TORUS_STRATEGIES)
    def test_consensus_and_multiple_rounds(self, factory, rng):
        strategy = factory()
        for round_idx in range(3):
            cluster = torus()
            result = strategy.step(cluster, grads(rng), round_idx)
            for update in result.updates[1:]:
                assert np.array_equal(update, result.updates[0])
            assert np.isfinite(result.updates[0]).all()
            cluster.assert_drained()

    def test_signsgd_torus_matches_ring_result(self, rng):
        # Majority vote is deterministic given the same momentum state, so
        # ring and torus must agree exactly.
        from repro.comm.topology import ring_topology

        vectors = grads(rng)
        ring_strategy = SignSGDMajorityStrategy(lr=0.01, num_workers=M)
        torus_strategy = SignSGDMajorityStrategy(lr=0.01, num_workers=M)
        ring_result = ring_strategy.step(
            Cluster(ring_topology(M)), [v.copy() for v in vectors], 0
        )
        torus_result = torus_strategy.step(
            torus(), [v.copy() for v in vectors], 0
        )
        assert np.array_equal(ring_result.updates[0], torus_result.updates[0])

    def test_cascading_rejected_on_torus(self, rng):
        # Cascading is defined on a ring chain; the torus has no single
        # Hamiltonian successor function in our schedule.
        strategy = CascadingSSDMStrategy(lr=0.1, num_workers=M)
        with pytest.raises(ValueError):
            strategy.step(torus(), grads(rng), 0)
