"""Tests for LR schedules, checkpointing, grad clipping, and the CLI."""

import numpy as np
import pytest

from repro.train.schedules import constant, cosine_decay, step_decay, warmup


class TestSchedules:
    def test_constant(self):
        schedule = constant()
        assert schedule(0) == schedule(1000) == 1.0

    def test_step_decay(self):
        schedule = step_decay(period=10, factor=0.1)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        schedule = cosine_decay(total_rounds=100, floor=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(50) == pytest.approx(0.55)

    def test_cosine_clamps_past_end(self):
        schedule = cosine_decay(total_rounds=10)
        assert schedule(1000) == pytest.approx(0.0)

    def test_warmup_ramp(self):
        schedule = warmup(warmup_rounds=4)
        assert schedule(0) == pytest.approx(0.25)
        assert schedule(3) == pytest.approx(1.0)
        assert schedule(10) == 1.0

    def test_warmup_then_decay(self):
        schedule = warmup(4, after=step_decay(10, 0.5))
        assert schedule(4) == 1.0  # decay clock restarts post-warmup
        assert schedule(14) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            step_decay(0)
        with pytest.raises(ValueError):
            cosine_decay(0)
        with pytest.raises(ValueError):
            warmup(0)

    def test_drives_marsit_config(self):
        from repro.core.marsit import MarsitConfig

        config = MarsitConfig(global_lr=0.1,
                              global_lr_schedule=step_decay(5, 0.1))
        assert config.effective_global_lr(0) == pytest.approx(0.1)
        assert config.effective_global_lr(5) == pytest.approx(0.01)


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path, rng):
        from repro.nn.zoo import resnet18_mini
        from repro.train.checkpoint import load_model, save_checkpoint

        model = resnet18_mini(in_channels=1, image_size=8, num_classes=3, seed=1)
        x = rng.standard_normal((2, 1, 8, 8))
        model(x)  # populate BN running stats
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, round_idx=42)

        fresh = resnet18_mini(in_channels=1, image_size=8, num_classes=3, seed=9)
        assert not np.allclose(fresh.flatten_params(), model.flatten_params())
        round_idx = load_model(path, fresh)
        assert round_idx == 42
        assert np.allclose(fresh.flatten_params(), model.flatten_params())
        fresh.eval()
        model.eval()
        assert np.allclose(fresh(x), model(x))

    def test_synchronizer_state_roundtrip(self, tmp_path, rng):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology
        from repro.core.marsit import MarsitConfig, MarsitSynchronizer
        from repro.nn.zoo import mlp
        from repro.train.checkpoint import (
            load_synchronizer_state,
            save_checkpoint,
        )

        model = mlp(8, hidden=(4,), num_classes=2, seed=0)
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.1), 3, 10)
        sync.synchronize(
            Cluster(ring_topology(3)),
            [rng.standard_normal(10) for _ in range(3)], 1,
        )
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, synchronizer=sync)

        fresh = MarsitSynchronizer(MarsitConfig(global_lr=0.1), 3, 10)
        load_synchronizer_state(path, fresh)
        for a, b in zip(fresh.state.compensation, sync.state.compensation):
            assert np.array_equal(a, b)

    def test_architecture_mismatch_rejected(self, tmp_path):
        from repro.nn.zoo import mlp
        from repro.train.checkpoint import load_model, save_checkpoint

        model = mlp(8, hidden=(4,), num_classes=2, seed=0)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        other = mlp(8, hidden=(5,), num_classes=2, seed=0)
        with pytest.raises(ValueError):
            load_model(path, other)


class TestGradClipping:
    def test_clip_bounds_gradient_norm(self):
        from repro.data import mnist_like, train_test_split
        from repro.nn.zoo import mlp
        from repro.train import DistributedTrainer, PSGDStrategy, TrainConfig

        data = mnist_like(num_samples=200, size=8, seed=0)
        train, test = train_test_split(data, 0.25, seed=1)

        def factory():
            return mlp(64, hidden=(8,), num_classes=10, seed=7)

        config = TrainConfig(num_workers=2, rounds=1, batch_size=16, seed=0,
                             clip_grad_norm=0.01)
        trainer = DistributedTrainer(
            factory, train, test, PSGDStrategy(lr=0.1, num_workers=2), config
        )
        grads, _ = trainer._worker_gradients()
        for grad in grads:
            assert np.linalg.norm(grad) <= 0.01 + 1e-9

    def test_rejects_nonpositive_clip(self):
        from repro.train import TrainConfig

        with pytest.raises(ValueError):
            TrainConfig(num_workers=2, rounds=1, clip_grad_norm=0.0)


class TestCLI:
    def test_main_runs(self, capsys):
        from repro.__main__ import main

        code = main(["--strategy", "psgd", "--workers", "2", "--rounds", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "final accuracy" in out

    def test_parser_rejects_unknown_strategy(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--strategy", "fedavg"])


class TestStragglerLinks:
    def test_slow_link_stalls_step(self):
        from repro.comm.cluster import Cluster
        from repro.comm.timing import CostModel
        from repro.comm.topology import ring_topology

        model = CostModel(latency_s=0.0, bandwidth_Bps=1e3)
        fast = Cluster(ring_topology(3), cost_model=model)
        slow = Cluster(
            ring_topology(3), cost_model=model,
            link_speed_factors={(0, 1): 0.1},
        )
        for cluster in (fast, slow):
            cluster.begin_step()
            cluster.send(0, 1, np.zeros(100, dtype=np.uint8))
            cluster.send(1, 2, np.zeros(100, dtype=np.uint8))
            cluster.end_step()
            cluster.recv(1, 0)
            cluster.recv(2, 1)
        fast_time = fast.timeline.total
        slow_time = slow.timeline.total
        assert slow_time == pytest.approx(10 * fast_time)

    def test_rejects_factor_for_missing_link(self):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology

        with pytest.raises(ValueError):
            Cluster(ring_topology(3), link_speed_factors={(0, 2): 0.5})

    def test_rejects_nonpositive_factor(self):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology

        with pytest.raises(ValueError):
            Cluster(ring_topology(3), link_speed_factors={(0, 1): 0.0})


class TestAsciiPlot:
    def test_renders_grid(self):
        from repro.bench.reporting import ascii_plot

        text = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20, height=8,
        )
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_y_range_override(self):
        from repro.bench.reporting import ascii_plot

        text = ascii_plot({"a": [(0, 0.5)]}, y_range=(0.0, 1.0), width=10,
                          height=5)
        assert text.splitlines()[0].strip().startswith("1")

    def test_rejects_empty(self):
        from repro.bench.reporting import ascii_plot

        with pytest.raises(ValueError):
            ascii_plot({})
