"""Cross-module integration tests.

These exercise the full stack — data -> model -> strategy -> cluster ->
metrics — the way the benchmarks do, with tiny budgets.
"""

import numpy as np
import pytest

from repro import quick_train
from repro.bench import WORKLOADS, build_strategy, strategy_names
from repro.train import DistributedTrainer, TrainConfig


class TestQuickTrain:
    @pytest.mark.parametrize(
        "strategy",
        ["psgd", "signsgd", "ef-signsgd", "ssdm", "cascading", "marsit",
         "marsit-k"],
    )
    def test_runs_and_records(self, strategy):
        result = quick_train(strategy=strategy, num_workers=3, rounds=12)
        assert result.rounds_run >= 1
        assert result.history
        assert result.total_comm_bytes > 0

    def test_torus_topology(self):
        result = quick_train(strategy="marsit", num_workers=4, rounds=10,
                             topology="torus")
        assert result.history

    def test_torus_requires_square(self):
        with pytest.raises(ValueError):
            quick_train(strategy="marsit", num_workers=6, topology="torus")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            quick_train(strategy="carrier-pigeon")

    def test_learning_happens(self):
        result = quick_train(strategy="psgd", num_workers=3, rounds=80)
        assert result.best_accuracy() > 0.6

    def test_marsit_byte_savings(self):
        psgd = quick_train(strategy="psgd", num_workers=4, rounds=20)
        marsit = quick_train(strategy="marsit", num_workers=4, rounds=20)
        signsgd = quick_train(strategy="signsgd", num_workers=4, rounds=20)
        # The Figure 4b ordering: marsit < expanded-sign < fp32.
        assert marsit.total_comm_bytes < signsgd.total_comm_bytes
        assert signsgd.total_comm_bytes < psgd.total_comm_bytes
        # ~97% saving at 1 bit vs 32 bits (header/norm overheads aside).
        assert marsit.total_comm_bytes < 0.1 * psgd.total_comm_bytes


class TestWorkloadSpecs:
    def test_all_specs_build_models_and_data(self):
        for key, spec in WORKLOADS.items():
            model = spec.model_factory()
            assert model.num_parameters() > 0, key
            train_set, test_set = spec.make_data()
            assert len(train_set) > len(test_set) > 0, key

    def test_model_factories_are_deterministic(self):
        for key, spec in WORKLOADS.items():
            a = spec.model_factory().flatten_params()
            b = spec.model_factory().flatten_params()
            assert np.array_equal(a, b), key

    @pytest.mark.parametrize("name", [*strategy_names(), "cascading"])
    def test_build_strategy_all_names(self, name):
        spec = WORKLOADS["mnist-alexnet"]
        train_set, _ = spec.make_data()
        strategy = build_strategy(name, spec, 3, train_set)
        assert strategy is not None

    def test_build_strategy_rejects_unknown(self):
        spec = WORKLOADS["mnist-alexnet"]
        train_set, _ = spec.make_data()
        with pytest.raises(ValueError):
            build_strategy("fedavg", spec, 3, train_set)

    def test_one_round_of_each_workload(self):
        # Every model trains one distributed round without error.
        for key, spec in WORKLOADS.items():
            train_set, test_set = spec.make_data()
            strategy = build_strategy("marsit", spec, 2, train_set)
            config = TrainConfig(
                num_workers=2, rounds=1, batch_size=min(spec.batch_size, 8),
                eval_every=1, seed=0,
            )
            result = DistributedTrainer(
                spec.model_factory, train_set, test_set, strategy, config
            ).run()
            assert result.rounds_run == 1, key


class TestConsensusUnderTraining:
    def test_marsit_workers_would_agree(self):
        # Track that the per-worker updates returned during an actual
        # training run stay bitwise identical (the consensus invariant the
        # single-model trainer relies on).
        from repro.data import mnist_like, train_test_split
        from repro.nn.zoo import mlp
        from repro.train import MarsitStrategy
        from repro.train.trainer import DistributedTrainer as Trainer

        data = mnist_like(num_samples=300, size=8, noise=0.5, seed=0)
        train_set, test_set = train_test_split(data, 0.25, seed=1)

        def factory():
            return mlp(64, hidden=(8,), num_classes=10, seed=7)

        dim = factory().num_parameters()
        strategy = MarsitStrategy(local_lr=0.05, global_lr=4e-3,
                                  num_workers=3, dimension=dim,
                                  full_precision_every=4)
        config = TrainConfig(num_workers=3, rounds=8, batch_size=16, seed=0)
        trainer = Trainer(factory, train_set, test_set, strategy, config)
        for round_idx in range(8):
            grads, _ = trainer._worker_gradients()
            step = strategy.step(trainer.cluster, grads, round_idx)
            for update in step.updates[1:]:
                assert np.array_equal(update, step.updates[0])
            trainer.model.add_flat_update(step.updates[0], scale=-1.0)
