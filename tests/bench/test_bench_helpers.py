"""Tests for the bench harness: reporting and calibration."""

import numpy as np
import pytest

from repro.bench import WORKLOADS, calibrate_global_lr, format_table
from repro.bench.reporting import print_series, save_report


class TestFormatTable:
    def test_structure(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        # the rule line spans both padded columns: width 4 + sep 2 + width 3
        assert lines[1] == "----  ---"
        # second column starts at a fixed offset on every row
        assert lines[2][:6] == "x     "
        assert lines[3][:6] == "yyyy  "

    def test_handles_numbers_and_strings(self):
        text = format_table(["k", "v"], [[1, 2.5], ["x", None]])
        assert "None" in text

    def test_empty_rows(self):
        text = format_table(["only", "header"], [])
        assert "only" in text


class TestSaveReport:
    def test_writes_file(self, tmp_path):
        save_report("unit", "hello table", directory=str(tmp_path))
        assert (tmp_path / "unit.txt").read_text() == "hello table\n"

    def test_print_series_runs(self, capsys):
        print_series("t", "x", {"s": [(1.0, 2.0), (3.0, 4.0)]})
        out = capsys.readouterr().out
        assert "(1,2)" in out and "(3,4)" in out


class TestCalibration:
    def test_positive_and_scales_with_lr(self):
        spec = WORKLOADS["mnist-alexnet"]
        train_set, _ = spec.make_data()
        small = calibrate_global_lr(
            spec.model_factory, train_set, 16, 0.01, pilot_steps=8,
            measure_last=4,
        )
        large = calibrate_global_lr(
            spec.model_factory, train_set, 16, 0.1, pilot_steps=8,
            measure_last=4,
        )
        assert 0 < small < large

    def test_momentum_increases_scale(self):
        spec = WORKLOADS["mnist-alexnet"]
        train_set, _ = spec.make_data()
        plain = calibrate_global_lr(
            spec.model_factory, train_set, 16, 0.03, momentum=0.0,
            pilot_steps=10, measure_last=5,
        )
        heavy = calibrate_global_lr(
            spec.model_factory, train_set, 16, 0.03, momentum=0.9,
            pilot_steps=10, measure_last=5,
        )
        assert heavy > plain

    def test_far_below_initial_gradient_scale(self):
        # The reason for the warmed pilot: the t=0 gradient RMS is an order
        # of magnitude above steady state.
        from repro.data.sharding import WorkerBatchIterator
        from repro.nn.losses import CrossEntropyLoss

        spec = WORKLOADS["cifar10-alexnet"]
        train_set, _ = spec.make_data()
        model = spec.model_factory()
        loss_fn = CrossEntropyLoss()
        x, y = WorkerBatchIterator(train_set, 16, seed=0).next_batch()
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        init_scale = spec.local_lr * np.sqrt(
            (model.flatten_grads() ** 2).mean()
        ) * 10
        calibrated = calibrate_global_lr(
            spec.model_factory, train_set, 16, spec.local_lr
        )
        assert calibrated < 0.5 * init_scale
