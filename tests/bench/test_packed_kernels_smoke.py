"""Smoke-run the packed-kernel microbenchmark's ``--check`` mode in tier 1.

Exercises the full old-vs-new verification path (bit-identity asserts inside
``run_kernels``) on a small input so a regression in either pipeline fails
the ordinary test run, not just the long benchmark.  Timings at this size
are noise, so no speedup floors are asserted here.
"""

from benchmarks.bench_packed_kernels import CHECK_ELEMS, run_mode


def test_check_mode_runs_and_reports(capsys):
    kernels = run_mode("check")
    assert set(kernels) == {
        "hop_merge",
        "pack_unpack",
        "elias_gamma",
        "elias_delta",
    }
    for entry in kernels.values():
        assert entry["old_s"] > 0 and entry["new_s"] > 0
    out = capsys.readouterr().out
    assert f"{CHECK_ELEMS} elements" in out
