"""Smoke-run the observability overhead benchmark's ``--check`` mode.

Exercises the bare-vs-instrumented-off-vs-tracing comparison machinery on a
small input so an API break in the bench fails tier 1.  Timings at this
size are noise, so no overhead ceiling is asserted here — the < 3% gate
lives in the slow full-mode test.
"""

from benchmarks.bench_obs_overhead import (
    CHECK_DIMENSION,
    CHECK_WORKERS,
    run_mode,
)


def test_check_mode_runs_and_reports(capsys):
    results = run_mode("check")
    assert set(results) == {str(m) for m in CHECK_WORKERS}
    for entry in results.values():
        assert entry["bare_s"] > 0
        assert entry["off_s"] > 0
        assert entry["traced_s"] > 0
    out = capsys.readouterr().out
    assert f"D={CHECK_DIMENSION}" in out
