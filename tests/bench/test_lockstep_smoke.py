"""Smoke-run the lockstep benchmark's ``--check`` mode in tier 1.

Exercises the full scalar-vs-batched verification path (output, byte,
message, and plan-digest identity asserts inside ``run_rounds``) plus the
plan-executor guard (bit-identity and charge-identity against the frozen
hand-coded round inside ``run_plan_guard``) on a small input, so an engine
or executor divergence fails the ordinary test run, not just the long
benchmark.  Timings at this size are noise, so no speedup floors or
overhead ceilings are asserted here.
"""

from benchmarks.bench_lockstep import CHECK_DIMENSION, CHECK_WORKERS, run_mode


def test_check_mode_runs_and_reports(capsys):
    results = run_mode("check")
    workers = results["workers"]
    assert set(workers) == {str(m) for m in CHECK_WORKERS}
    for entry in workers.values():
        assert entry["old_s"] > 0 and entry["new_s"] > 0
        assert entry["speedup"] > 0
        assert entry["plan_digest"]
    guard = results["plan_guard"]
    assert guard["hand_coded_s"] > 0 and guard["plan_executor_s"] > 0
    assert guard["overhead"] > 0
    assert guard["plan_digest"]
    out = capsys.readouterr().out
    assert f"D={CHECK_DIMENSION}" in out
    assert "plan-executor guard" in out
