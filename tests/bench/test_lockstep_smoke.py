"""Smoke-run the lockstep benchmark's ``--check`` mode in tier 1.

Exercises the full scalar-vs-batched verification path (output, byte, and
message identity asserts inside ``run_rounds``) on a small input so an
engine divergence fails the ordinary test run, not just the long benchmark.
Timings at this size are noise, so no speedup floors are asserted here.
"""

from benchmarks.bench_lockstep import CHECK_DIMENSION, CHECK_WORKERS, run_mode


def test_check_mode_runs_and_reports(capsys):
    results = run_mode("check")
    assert set(results) == {str(m) for m in CHECK_WORKERS}
    for entry in results.values():
        assert entry["old_s"] > 0 and entry["new_s"] > 0
        assert entry["speedup"] > 0
    out = capsys.readouterr().out
    assert f"D={CHECK_DIMENSION}" in out
