"""Tests for synthetic datasets and sharding."""

import numpy as np
import pytest

from repro.data.sharding import WorkerBatchIterator, shard_iid, train_test_split
from repro.data.synthetic import (
    ArrayDataset,
    cifar10_like,
    imagenet_like,
    make_image_dataset,
    mnist_like,
)
from repro.data.text import imdb_like


class TestArrayDataset:
    def test_length_and_subset(self, rng):
        data = ArrayDataset(x=rng.standard_normal((10, 2)), y=np.zeros(10, dtype=int),
                            num_classes=2)
        sub = data.subset(np.array([1, 3, 5]))
        assert len(sub) == 3

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(x=rng.standard_normal((3, 2)), y=np.zeros(2, dtype=int),
                         num_classes=2)

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(x=rng.standard_normal((2, 2)), y=np.array([0, 5]),
                         num_classes=2)


class TestImageDatasets:
    def test_shapes(self):
        data = mnist_like(num_samples=100, size=8)
        assert data.x.shape == (100, 1, 8, 8)
        assert data.num_classes == 10

    def test_cifar_channels(self):
        data = cifar10_like(num_samples=50, size=16)
        assert data.x.shape == (50, 3, 16, 16)

    def test_imagenet_classes(self):
        data = imagenet_like(num_samples=60, num_classes=20)
        assert data.num_classes == 20
        assert set(np.unique(data.y)).issubset(range(20))

    def test_deterministic_per_seed(self):
        a = mnist_like(num_samples=20, seed=5)
        b = mnist_like(num_samples=20, seed=5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = mnist_like(num_samples=20, seed=5)
        b = mnist_like(num_samples=20, seed=6)
        assert not np.array_equal(a.x, b.x)

    def test_classes_are_separable(self):
        # A nearest-class-prototype classifier should beat chance easily —
        # the datasets must carry learnable signal.
        data = make_image_dataset(
            num_samples=400, num_classes=4, channels=1, size=8, noise=0.5, seed=0
        )
        flat = data.x.reshape(len(data), -1)
        centroids = np.stack(
            [flat[data.y == c].mean(axis=0) for c in range(4)]
        )
        distances = ((flat[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == data.y).mean()
        assert accuracy > 0.8

    def test_noise_reduces_separability(self):
        def centroid_accuracy(noise):
            data = make_image_dataset(
                num_samples=400, num_classes=4, channels=1, size=8,
                noise=noise, seed=0,
            )
            flat = data.x.reshape(len(data), -1)
            centroids = np.stack(
                [flat[data.y == c].mean(axis=0) for c in range(4)]
            )
            distances = ((flat[:, None, :] - centroids[None]) ** 2).sum(axis=2)
            return (distances.argmin(axis=1) == data.y).mean()

        assert centroid_accuracy(3.0) < centroid_accuracy(0.3)


class TestTextDataset:
    def test_shapes_and_ranges(self):
        data = imdb_like(num_samples=100, seq_len=12, vocab_size=64)
        assert data.x.shape == (100, 12)
        assert data.x.min() >= 0 and data.x.max() < 64
        assert set(np.unique(data.y)).issubset({0, 1})

    def test_sentiment_words_correlate_with_labels(self):
        data = imdb_like(num_samples=500, sentiment_words=10, label_noise=0.0,
                         crosstalk=0.0, seed=1)
        positive = set(range(2, 12))
        pos_counts = np.array([
            len(positive.intersection(row)) for row in data.x
        ])
        assert pos_counts[data.y == 1].mean() > pos_counts[data.y == 0].mean()

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            imdb_like(vocab_size=10, sentiment_words=10)

    def test_label_noise_flips_some(self):
        clean = imdb_like(num_samples=300, label_noise=0.0, seed=2)
        noisy = imdb_like(num_samples=300, label_noise=0.3, seed=2)
        assert (clean.y != noisy.y).mean() == pytest.approx(0.3, abs=0.07)


class TestSharding:
    def test_split_fractions(self):
        data = mnist_like(num_samples=100)
        train, test = train_test_split(data, 0.2, seed=0)
        assert len(train) == 80 and len(test) == 20

    def test_split_disjoint(self):
        data = mnist_like(num_samples=50)
        data_ids = data.x[:, 0, 0, 0]  # unique-ish floats as identifiers
        train, test = train_test_split(data, 0.5, seed=0)
        assert not set(train.x[:, 0, 0, 0]).intersection(test.x[:, 0, 0, 0])

    def test_shards_equal_size(self):
        data = mnist_like(num_samples=103)
        shards = shard_iid(data, 4, seed=0)
        assert all(len(s) == 25 for s in shards)

    def test_shards_disjoint(self):
        data = mnist_like(num_samples=40)
        shards = shard_iid(data, 4, seed=0)
        ids = [frozenset(s.x[:, 0, 0, 0]) for s in shards]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not ids[i].intersection(ids[j])

    def test_rejects_oversharding(self):
        with pytest.raises(ValueError):
            shard_iid(mnist_like(num_samples=3), 10)


class TestBatchIterator:
    def test_batch_shapes(self):
        data = mnist_like(num_samples=64)
        iterator = WorkerBatchIterator(data, batch_size=16, seed=0)
        x, y = iterator.next_batch()
        assert x.shape[0] == 16 and y.shape == (16,)

    def test_epoch_covers_all_samples(self):
        data = mnist_like(num_samples=32)
        iterator = WorkerBatchIterator(data, batch_size=8, seed=0)
        seen = []
        for _ in range(4):
            x, _ = iterator.next_batch()
            seen.extend(x[:, 0, 0, 0].tolist())
        assert len(set(seen)) == 32

    def test_epoch_counter(self):
        data = mnist_like(num_samples=32)
        iterator = WorkerBatchIterator(data, batch_size=8, seed=0)
        for _ in range(5):
            iterator.next_batch()
        assert iterator.epochs_completed == 1

    def test_seeded_determinism(self):
        data = mnist_like(num_samples=32)
        a = WorkerBatchIterator(data, 8, seed=3)
        b = WorkerBatchIterator(data, 8, seed=3)
        xa, _ = a.next_batch()
        xb, _ = b.next_batch()
        assert np.array_equal(xa, xb)

    def test_rejects_oversized_batch(self):
        data = mnist_like(num_samples=8)
        with pytest.raises(ValueError):
            WorkerBatchIterator(data, 16, seed=0)


class TestDirichletSharding:
    def test_covers_all_samples_once(self):
        from repro.data import shard_dirichlet

        data = mnist_like(num_samples=400)
        shards = shard_dirichlet(data, 4, alpha=0.5, seed=0)
        total = sum(len(s) for s in shards)
        assert total == 400
        ids = np.concatenate([s.x[:, 0, 0, 0] for s in shards])
        assert len(np.unique(ids)) == len(np.unique(data.x[:, 0, 0, 0]))

    def test_small_alpha_skews_labels(self):
        from repro.data import shard_dirichlet, shard_iid

        data = mnist_like(num_samples=1000)

        def label_skew(shards):
            skews = []
            for shard in shards:
                counts = np.bincount(shard.y, minlength=10) / len(shard)
                skews.append(counts.max())
            return float(np.mean(skews))

        skewed = label_skew(shard_dirichlet(data, 4, alpha=0.1, seed=0))
        iid = label_skew(shard_iid(data, 4, seed=0))
        assert skewed > iid + 0.15

    def test_min_per_worker_enforced(self):
        from repro.data import shard_dirichlet

        data = mnist_like(num_samples=400)
        shards = shard_dirichlet(data, 4, alpha=0.3, seed=1, min_per_worker=20)
        assert all(len(s) >= 20 for s in shards)

    def test_rejects_bad_alpha(self):
        from repro.data import shard_dirichlet

        with pytest.raises(ValueError):
            shard_dirichlet(mnist_like(num_samples=100), 2, alpha=0.0)


class TestAugmentation:
    def test_augment_preserves_shapes_and_labels(self):
        data = mnist_like(num_samples=64)
        iterator = WorkerBatchIterator(data, batch_size=16, seed=0, augment=True)
        x, y = iterator.next_batch()
        assert x.shape == (16, 1, 8, 8)
        assert y.shape == (16,)

    def test_augment_changes_some_images(self):
        data = mnist_like(num_samples=64)
        plain = WorkerBatchIterator(data, 16, seed=0)
        augmented = WorkerBatchIterator(data, 16, seed=0, augment=True)
        xp, _ = plain.next_batch()
        xa, _ = augmented.next_batch()
        assert not np.array_equal(xp, xa)

    def test_augment_preserves_pixel_multiset(self):
        # flips and rolls permute pixels; values survive exactly
        data = mnist_like(num_samples=32)
        iterator = WorkerBatchIterator(data, 32, seed=1, augment=True)
        x, _ = iterator.next_batch()
        original = data.x[iterator._order[:32]]
        assert np.allclose(np.sort(x.reshape(32, -1), axis=1),
                           np.sort(original.reshape(32, -1), axis=1))

    def test_augment_rejected_for_text(self):
        data = imdb_like(num_samples=50)
        with pytest.raises(ValueError):
            WorkerBatchIterator(data, 16, seed=0, augment=True)
