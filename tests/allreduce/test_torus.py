"""Tests for 2D-torus all-reduce."""

import numpy as np
import pytest

from repro.allreduce.ring import ring_allreduce_sum
from repro.allreduce.torus import torus_allreduce_mean, torus_allreduce_sum
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology, torus_topology


class TestTorusAllreduce:
    @pytest.mark.parametrize("rows,cols,d", [(2, 2, 16), (2, 3, 30), (3, 3, 27), (2, 4, 19)])
    def test_sum_matches_numpy(self, rows, cols, d, rng):
        m = rows * cols
        vectors = [rng.standard_normal(d) for _ in range(m)]
        cluster = Cluster(torus_topology(rows, cols))
        results = torus_allreduce_sum(cluster, vectors)
        expected = np.sum(vectors, axis=0)
        for result in results:
            assert np.allclose(result, expected, atol=1e-4)
        cluster.assert_drained()

    def test_mean(self, rng):
        vectors = [rng.standard_normal(12) for _ in range(4)]
        cluster = Cluster(torus_topology(2, 2))
        results = torus_allreduce_mean(cluster, vectors)
        assert np.allclose(results[2], np.mean(vectors, axis=0), atol=1e-5)

    def test_degenerate_single_row(self, rng):
        vectors = [rng.standard_normal(10) for _ in range(4)]
        cluster = Cluster(torus_topology(1, 4))
        results = torus_allreduce_sum(cluster, vectors)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-4)

    def test_degenerate_single_column(self, rng):
        vectors = [rng.standard_normal(10) for _ in range(4)]
        cluster = Cluster(torus_topology(4, 1))
        results = torus_allreduce_sum(cluster, vectors)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-4)

    def test_allreduce_optimal_traffic(self, rng):
        # TAR moves the same 2 D (M-1) / M volume as RAR — the all-reduce
        # lower bound; its advantage is steps/latency, not bytes.
        d = 240
        vectors = [rng.standard_normal(d) for _ in range(9)]
        torus_cluster = Cluster(torus_topology(3, 3))
        torus_allreduce_sum(torus_cluster, vectors)
        ring_cluster = Cluster(ring_topology(9))
        ring_allreduce_sum(ring_cluster, vectors)
        assert torus_cluster.total_bytes == ring_cluster.total_bytes

    def test_fewer_steps_than_flat_ring(self, rng):
        # Latency term: 2(r + c - 2) hops < 2(M - 1) hops.
        d = 90
        vectors = [rng.standard_normal(d) for _ in range(9)]
        torus_cluster = Cluster(torus_topology(3, 3))
        torus_allreduce_sum(torus_cluster, vectors)
        ring_cluster = Cluster(ring_topology(9))
        ring_allreduce_sum(ring_cluster, vectors)
        # Step count is visible through the latency contribution: each step
        # adds one latency to the communication phase.
        from repro.comm.timing import Phase

        torus_comm = torus_cluster.timeline.seconds[Phase.COMMUNICATION]
        ring_comm = ring_cluster.timeline.seconds[Phase.COMMUNICATION]
        assert torus_comm < ring_comm

    def test_requires_torus_topology(self, rng):
        cluster = Cluster(ring_topology(4))
        with pytest.raises(ValueError):
            torus_allreduce_sum(cluster, [rng.standard_normal(4)] * 4)

    def test_rejects_mismatched_dimensions(self, rng):
        cluster = Cluster(torus_topology(2, 2))
        vectors = [rng.standard_normal(4)] * 3 + [rng.standard_normal(5)]
        with pytest.raises(ValueError):
            torus_allreduce_sum(cluster, vectors)

    def test_rejects_wrong_count(self, rng):
        cluster = Cluster(torus_topology(2, 2))
        with pytest.raises(ValueError):
            torus_allreduce_sum(cluster, [rng.standard_normal(4)] * 3)
