"""Tests for gossip averaging."""

import numpy as np
import pytest

from repro.allreduce.gossip import gossip_average_round, gossip_mixing_matrix
from repro.comm.cluster import Cluster
from repro.comm.topology import fully_connected_topology, ring_topology


class TestMixingMatrix:
    def test_doubly_stochastic(self):
        cluster = Cluster(ring_topology(6, bidirectional=True))
        weights = gossip_mixing_matrix(cluster)
        assert np.allclose(weights.sum(axis=0), 1.0)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert (weights >= 0).all()

    def test_symmetric(self):
        cluster = Cluster(fully_connected_topology(5))
        weights = gossip_mixing_matrix(cluster)
        assert np.allclose(weights, weights.T)

    def test_rejects_asymmetric_topology(self):
        with pytest.raises(ValueError):
            gossip_mixing_matrix(Cluster(ring_topology(4)))


class TestGossipRound:
    def test_preserves_mean(self, rng):
        cluster = Cluster(ring_topology(5, bidirectional=True))
        vectors = [rng.standard_normal(8) for _ in range(5)]
        mixed = gossip_average_round(cluster, vectors)
        assert np.allclose(
            np.mean(mixed, axis=0), np.mean(vectors, axis=0), atol=1e-7
        )
        cluster.assert_drained()

    def test_converges_to_consensus(self, rng):
        cluster = Cluster(ring_topology(4, bidirectional=True))
        vectors = [rng.standard_normal(6) for _ in range(4)]
        target = np.mean(vectors, axis=0)
        mixing = gossip_mixing_matrix(cluster)
        current = vectors
        for _ in range(100):
            current = gossip_average_round(cluster, current, mixing=mixing)
        for vector in current:
            assert np.allclose(vector, target, atol=1e-5)

    def test_fully_connected_converges_in_one_round(self, rng):
        cluster = Cluster(fully_connected_topology(4))
        vectors = [rng.standard_normal(5) for _ in range(4)]
        mixed = gossip_average_round(cluster, vectors)
        # Metropolis weights on K_4 are exactly uniform 1/4.
        for vector in mixed:
            assert np.allclose(vector, np.mean(vectors, axis=0), atol=1e-6)

    def test_sparse_ring_slower_than_dense(self, rng):
        # The intro's point: gossip convergence rate depends on connectivity.
        vectors = [rng.standard_normal(4) for _ in range(8)]
        target = np.mean(vectors, axis=0)

        def disagreement_after(topology, rounds):
            cluster = Cluster(topology)
            current = [v.copy() for v in vectors]
            for _ in range(rounds):
                current = gossip_average_round(cluster, current)
            return max(np.abs(v - target).max() for v in current)

        ring_err = disagreement_after(ring_topology(8, bidirectional=True), 10)
        full_err = disagreement_after(fully_connected_topology(8), 10)
        assert full_err < ring_err

    def test_rejects_wrong_count(self, rng):
        cluster = Cluster(ring_topology(3, bidirectional=True))
        with pytest.raises(ValueError):
            gossip_average_round(cluster, [rng.standard_normal(2)] * 2)
