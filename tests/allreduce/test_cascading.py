"""Tests for cascading compression (the Section 3.2 anti-pattern)."""

import numpy as np
import pytest

from repro.allreduce.cascading import cascading_ring_allreduce
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology
from repro.compression.signsgd import MeanAbsSignCompressor
from repro.compression.ssdm import SSDMCompressor


def run(m, d, compressor, seed=0, charge_time=True):
    rng = np.random.default_rng(seed)
    vectors = [rng.standard_normal(d) for _ in range(m)]
    cluster = Cluster(ring_topology(m))
    rngs = [np.random.default_rng(seed + 1 + i) for i in range(m)]
    results = cascading_ring_allreduce(
        cluster, vectors, compressor, rngs, charge_time=charge_time
    )
    return vectors, cluster, results


class TestCascading:
    def test_all_workers_agree(self):
        _, cluster, results = run(4, 40, SSDMCompressor())
        for result in results[1:]:
            assert np.allclose(result, results[0])
        cluster.assert_drained()

    def test_single_worker_identity(self, rng):
        cluster = Cluster(ring_topology(1))
        vector = rng.standard_normal(5)
        results = cascading_ring_allreduce(
            cluster, [vector], SSDMCompressor(), [rng]
        )
        assert np.allclose(results[0], vector)

    def test_one_bit_traffic(self):
        # Every hop ships sign bits + one norm: ~1 bit per element.
        m, d = 4, 800
        _, cluster, _ = run(m, d, SSDMCompressor())
        seg_bytes = (d // m) // 8 + 4  # bits + fp32 scale
        expected = 2 * (m - 1) * m * seg_bytes
        assert cluster.total_bytes == expected

    def test_charges_serialized_codec_time(self):
        _, cluster, _ = run(3, 60, SSDMCompressor(), charge_time=True)
        assert cluster.timeline.seconds[Phase.COMPRESSION] > 0

    def test_no_charge_when_disabled(self):
        _, cluster, _ = run(3, 60, SSDMCompressor(), charge_time=False)
        assert cluster.timeline.seconds[Phase.COMPRESSION] == 0

    def test_unbiased_for_two_workers_in_expectation(self):
        # With M=2 and tiny D the SSDM cascade is unbiased: average many
        # independent runs and compare against the exact mean.
        m, d = 2, 4
        base_rng = np.random.default_rng(42)
        vectors = [base_rng.standard_normal(d) for _ in range(m)]
        exact = np.mean(vectors, axis=0)
        total = np.zeros(d)
        trials = 4000
        for trial in range(trials):
            cluster = Cluster(ring_topology(m))
            rngs = [np.random.default_rng(10_000 + 2 * trial + i) for i in range(m)]
            total += cascading_ring_allreduce(
                cluster, [v.copy() for v in vectors], SSDMCompressor(), rngs,
                charge_time=False,
            )[0]
        mean_estimate = total / trials
        # Variance per trial is large; tolerance is generous but directional.
        assert np.abs(mean_estimate - exact).max() < 0.5

    def test_signal_degrades_with_workers(self):
        # Theorem 3's message: more hops, less directional fidelity.
        from repro.theory.matching import sign_cosine

        def mean_cosine(m):
            rng = np.random.default_rng(7)
            d = 256
            vectors = [rng.standard_normal(d) + 0.5 for _ in range(m)]
            exact = np.mean(vectors, axis=0)
            values = []
            for t in range(20):
                cluster = Cluster(ring_topology(m))
                rngs = [np.random.default_rng(100 * t + i) for i in range(m)]
                out = cascading_ring_allreduce(
                    cluster, [v.copy() for v in vectors],
                    MeanAbsSignCompressor(), rngs, charge_time=False,
                )[0]
                values.append(sign_cosine(out, exact))
            return float(np.mean(values))

        assert mean_cosine(8) < mean_cosine(2)

    def test_rejects_mismatched_inputs(self, rng):
        cluster = Cluster(ring_topology(3))
        with pytest.raises(ValueError):
            cascading_ring_allreduce(
                cluster, [rng.standard_normal(4)] * 2, SSDMCompressor(), [rng] * 3
            )
