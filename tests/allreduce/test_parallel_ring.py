"""Direct tests for the lockstep multi-cycle ring primitives."""

import numpy as np
import pytest

from repro.allreduce.ring import (
    parallel_ring_all_gather,
    parallel_ring_reduce_scatter,
    split_segments,
)
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import torus_topology


def _add(received, local, step):
    return np.asarray(received) + local


class TestParallelRing:
    def test_two_rows_reduce_in_lockstep(self, rng):
        cluster = Cluster(torus_topology(2, 3))
        cycles = [[0, 1, 2], [3, 4, 5]]
        vectors = {rank: rng.standard_normal(9) for rank in range(6)}
        segments = [
            [split_segments(vectors[rank], 3) for rank in cycle]
            for cycle in cycles
        ]
        owned = parallel_ring_reduce_scatter(cluster, cycles, segments, _add)
        parallel_ring_all_gather(cluster, cycles, segments)
        for cycle_idx, cycle in enumerate(cycles):
            expected = np.sum([vectors[r] for r in cycle], axis=0)
            for pos in range(3):
                got = np.concatenate(segments[cycle_idx][pos])
                assert np.allclose(got, expected, atol=1e-9)
        assert owned == [[1, 2, 0], [1, 2, 0]]
        cluster.assert_drained()

    def test_lockstep_charges_one_latency_per_step(self, rng):
        # Two concurrent 3-cycles: still only (3-1) reduce steps of latency.
        cluster = Cluster(torus_topology(2, 3))
        cycles = [[0, 1, 2], [3, 4, 5]]
        segments = [
            [split_segments(np.zeros(3), 3) for _ in cycle] for cycle in cycles
        ]
        parallel_ring_reduce_scatter(cluster, cycles, segments, _add)
        latency = cluster.cost_model.latency_s
        comm = cluster.timeline.seconds[Phase.COMMUNICATION]
        assert comm == pytest.approx(2 * latency, rel=0.05)

    def test_rejects_unequal_cycle_lengths(self, rng):
        cluster = Cluster(torus_topology(2, 3))
        cycles = [[0, 1, 2], [3, 4]]
        segments = [
            [split_segments(np.zeros(3), len(c)) for _ in c] for c in cycles
        ]
        with pytest.raises(ValueError):
            parallel_ring_reduce_scatter(cluster, cycles, segments, _add)

    def test_rejects_wrong_segment_count(self, rng):
        cluster = Cluster(torus_topology(2, 3))
        cycles = [[0, 1, 2]]
        segments = [[split_segments(np.zeros(4), 2) for _ in range(3)]]
        with pytest.raises(ValueError):
            parallel_ring_reduce_scatter(cluster, cycles, segments, _add)

    def test_empty_cycles_noop(self):
        cluster = Cluster(torus_topology(2, 3))
        assert parallel_ring_reduce_scatter(cluster, [], [], _add) == []
        parallel_ring_all_gather(cluster, [], [])  # no raise


class TestTorusScalarAllgather:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3), (1, 4), (4, 1)])
    def test_all_shapes(self, rows, cols):
        from repro.allreduce.torus import torus_allgather_scalars

        cluster = Cluster(torus_topology(rows, cols))
        values = [float(r) * 2.5 + 1 for r in range(rows * cols)]
        gathered = torus_allgather_scalars(cluster, values)
        assert np.allclose(gathered, values)
        cluster.assert_drained()

    def test_rejects_wrong_count(self):
        from repro.allreduce.torus import torus_allgather_scalars

        cluster = Cluster(torus_topology(2, 2))
        with pytest.raises(ValueError):
            torus_allgather_scalars(cluster, [1.0, 2.0])


class TestSignsumTorus:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 4), (3, 3)])
    def test_matches_numpy(self, rows, cols, rng):
        from repro.allreduce.torus import signsum_torus_allreduce

        m = rows * cols
        signs = [
            np.where(rng.standard_normal(40) >= 0, 1.0, -1.0) for _ in range(m)
        ]
        cluster = Cluster(torus_topology(rows, cols))
        results = signsum_torus_allreduce(cluster, signs)
        expected = np.sum(signs, axis=0).astype(np.int64)
        for result in results:
            assert np.array_equal(result, expected)
        cluster.assert_drained()

    def test_expansion_cheaper_than_fp32(self, rng):
        from repro.allreduce.torus import (
            signsum_torus_allreduce,
            torus_allreduce_sum,
        )

        m, d = 8, 800
        signs = [
            np.where(rng.standard_normal(d) >= 0, 1.0, -1.0) for _ in range(m)
        ]
        sign_cluster = Cluster(torus_topology(2, 4))
        signsum_torus_allreduce(sign_cluster, signs, charge_compression=False)
        fp_cluster = Cluster(torus_topology(2, 4))
        torus_allreduce_sum(fp_cluster, signs)
        assert sign_cluster.total_bytes < fp_cluster.total_bytes

    def test_rejects_non_signs(self, rng):
        from repro.allreduce.torus import signsum_torus_allreduce

        cluster = Cluster(torus_topology(2, 2))
        with pytest.raises(ValueError):
            signsum_torus_allreduce(cluster, [np.array([0.5, 1.0])] * 4)
