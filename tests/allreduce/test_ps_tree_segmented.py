"""Tests for parameter-server, tree, and segmented-ring collectives."""

import numpy as np
import pytest

from repro.allreduce.ps import ps_allreduce
from repro.allreduce.ring import ring_allreduce_sum
from repro.allreduce.segmented import segmented_ring_allreduce
from repro.allreduce.tree import tree_allreduce
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology, star_topology, tree_topology


class TestPSAllreduce:
    def test_mean_aggregation(self, rng):
        m = 4
        vectors = [rng.standard_normal(10).astype(np.float32) for _ in range(m)]
        cluster = Cluster(star_topology(m, server=0))
        results = ps_allreduce(cluster, vectors, aggregate=lambda xs: np.mean(xs, axis=0))
        expected = np.mean(vectors, axis=0)
        for result in results:
            assert np.allclose(result, expected, atol=1e-5)
        cluster.assert_drained()

    def test_nonzero_server_rank(self, rng):
        m = 3
        vectors = [rng.standard_normal(6).astype(np.float32) for _ in range(m)]
        cluster = Cluster(star_topology(m, server=1))
        results = ps_allreduce(cluster, vectors, aggregate=lambda xs: np.sum(xs, axis=0))
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-4)

    def test_uploads_charged_serially(self, rng):
        # M-1 uploads + 1 broadcast = M steps -> M latencies of comm time.
        m = 5
        vectors = [np.zeros(0, dtype=np.float32) for _ in range(m)]
        cluster = Cluster(star_topology(m, server=0))
        ps_allreduce(cluster, vectors, aggregate=lambda xs: xs[0])
        latency = cluster.cost_model.latency_s
        assert cluster.timeline.seconds[Phase.COMMUNICATION] == pytest.approx(
            m * latency
        )

    def test_more_bytes_than_ring_with_dedicated_server(self, rng):
        # Section 3.1: with a dedicated server, PS moves 2 M D weights vs
        # ring's 2 (M-1) D.
        m, d = 4, 100
        vectors32 = [rng.standard_normal(d).astype(np.float32) for _ in range(m)]
        ps_cluster = Cluster(star_topology(m + 1, server=0))
        payloads = [np.zeros(0, dtype=np.float32)] + vectors32
        ps_allreduce(
            ps_cluster,
            payloads,
            aggregate=lambda xs: np.mean([x for x in xs if x.size], axis=0),
        )
        assert ps_cluster.total_bytes == 2 * m * d * 4
        ring_cluster = Cluster(ring_topology(m))
        ring_allreduce_sum(ring_cluster, [np.asarray(v) for v in vectors32])
        assert ring_cluster.total_bytes == 2 * (m - 1) * d * 4
        assert ps_cluster.total_bytes > ring_cluster.total_bytes

    def test_decode_hook(self, rng):
        m = 3
        vectors = [rng.standard_normal(4).astype(np.float32) for _ in range(m)]
        cluster = Cluster(star_topology(m, server=0))
        results = ps_allreduce(
            cluster,
            vectors,
            aggregate=lambda xs: np.mean(xs, axis=0),
            decode=lambda v: 2.0 * np.asarray(v),
        )
        assert np.allclose(results[0], 2.0 * np.mean(vectors, axis=0), atol=1e-5)

    def test_requires_star(self, rng):
        cluster = Cluster(ring_topology(3))
        with pytest.raises(ValueError):
            ps_allreduce(cluster, [rng.standard_normal(3)] * 3, aggregate=sum)


class TestTreeAllreduce:
    @pytest.mark.parametrize("m", [1, 2, 3, 7, 10])
    def test_sum(self, m, rng):
        vectors = [rng.standard_normal(8) for _ in range(m)]
        cluster = Cluster(tree_topology(m, arity=2))
        results = tree_allreduce(cluster, vectors)
        expected = np.sum(vectors, axis=0)
        for result in results:
            assert np.allclose(result, expected, atol=1e-9)
        cluster.assert_drained()

    def test_finalize_mean(self, rng):
        m = 5
        vectors = [rng.standard_normal(4) for _ in range(m)]
        cluster = Cluster(tree_topology(m))
        results = tree_allreduce(cluster, vectors, finalize=lambda x: x / m)
        assert np.allclose(results[3], np.mean(vectors, axis=0))

    def test_custom_reduce(self, rng):
        m = 4
        vectors = [rng.standard_normal(6) for _ in range(m)]
        cluster = Cluster(tree_topology(m))
        results = tree_allreduce(cluster, vectors, reduce_pair=np.maximum)
        assert np.allclose(results[0], np.max(vectors, axis=0))

    def test_wide_arity(self, rng):
        m = 6
        vectors = [rng.standard_normal(3) for _ in range(m)]
        cluster = Cluster(tree_topology(m, arity=5))
        results = tree_allreduce(cluster, vectors)
        assert np.allclose(results[0], np.sum(vectors, axis=0))

    def test_requires_tree(self, rng):
        with pytest.raises(ValueError):
            tree_allreduce(Cluster(ring_topology(3)), [rng.standard_normal(2)] * 3)


class TestSegmentedRing:
    def test_matches_plain_ring(self, rng):
        m, d = 4, 50
        vectors = [rng.standard_normal(d) for _ in range(m)]
        cluster = Cluster(ring_topology(m))
        results = segmented_ring_allreduce(cluster, vectors, segment_elems=16)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-4)
        cluster.assert_drained()

    def test_segment_larger_than_vector(self, rng):
        m, d = 3, 10
        vectors = [rng.standard_normal(d) for _ in range(m)]
        cluster = Cluster(ring_topology(m))
        results = segmented_ring_allreduce(cluster, vectors, segment_elems=1000)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-4)

    def test_same_traffic_as_plain_ring(self, rng):
        m, d = 4, 64
        vectors = [rng.standard_normal(d) for _ in range(m)]
        seg_cluster = Cluster(ring_topology(m))
        segmented_ring_allreduce(seg_cluster, vectors, segment_elems=16)
        ring_cluster = Cluster(ring_topology(m))
        ring_allreduce_sum(ring_cluster, vectors)
        assert seg_cluster.total_bytes == ring_cluster.total_bytes

    def test_rejects_bad_segment(self, rng):
        with pytest.raises(ValueError):
            segmented_ring_allreduce(
                Cluster(ring_topology(2)), [rng.standard_normal(4)] * 2, 0
            )
