"""Tests for ring all-reduce and the sign-sum variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allreduce.ring import (
    ring_allreduce_mean,
    ring_allreduce_sum,
    signsum_ring_allreduce,
    split_segments,
)
from repro.comm.bits import signed_int_bit_width
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology, torus_topology


def make_cluster(m):
    return Cluster(ring_topology(m))


class TestSplitSegments:
    def test_even_split(self):
        segments = split_segments(np.arange(12.0), 3)
        assert [s.size for s in segments] == [4, 4, 4]
        assert np.array_equal(np.concatenate(segments), np.arange(12.0))

    def test_uneven_split(self):
        segments = split_segments(np.arange(10.0), 3)
        assert [s.size for s in segments] == [4, 3, 3]

    def test_fewer_elements_than_segments(self):
        segments = split_segments(np.arange(2.0), 4)
        assert sum(s.size for s in segments) == 2
        assert len(segments) == 4

    def test_segments_are_copies(self):
        vector = np.arange(6.0)
        segments = split_segments(vector, 2)
        segments[0][0] = 99.0
        assert vector[0] == 0.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            split_segments(np.zeros((2, 3)), 2)


class TestRingAllreduce:
    @pytest.mark.parametrize("m,d", [(2, 8), (3, 10), (4, 37), (5, 5), (8, 100)])
    def test_sum_matches_numpy(self, m, d, rng):
        vectors = [rng.standard_normal(d) for _ in range(m)]
        cluster = make_cluster(m)
        results = ring_allreduce_sum(cluster, vectors)
        expected = np.sum(vectors, axis=0)
        for result in results:
            assert np.allclose(result, expected, atol=1e-4)
        cluster.assert_drained()

    def test_all_workers_bitwise_identical(self, rng):
        vectors = [rng.standard_normal(20) for _ in range(4)]
        results = ring_allreduce_sum(make_cluster(4), vectors)
        for result in results[1:]:
            assert np.array_equal(result, results[0])

    def test_mean(self, rng):
        vectors = [rng.standard_normal(12) for _ in range(3)]
        results = ring_allreduce_mean(make_cluster(3), vectors)
        assert np.allclose(results[0], np.mean(vectors, axis=0), atol=1e-5)

    def test_single_worker_identity(self, rng):
        vector = rng.standard_normal(7)
        results = ring_allreduce_sum(make_cluster(1), [vector])
        assert np.allclose(results[0], vector)

    def test_traffic_volume(self, rng):
        # FP32 ring: total bytes = 2 (M-1) * D * 4 summed over all workers.
        m, d = 4, 40
        cluster = make_cluster(m)
        ring_allreduce_sum(cluster, [rng.standard_normal(d) for _ in range(m)])
        assert cluster.total_bytes == 2 * (m - 1) * d * 4

    def test_rejects_wrong_vector_count(self, rng):
        with pytest.raises(ValueError):
            ring_allreduce_sum(make_cluster(3), [rng.standard_normal(4)] * 2)

    def test_dimension_smaller_than_workers(self, rng):
        vectors = [rng.standard_normal(2) for _ in range(5)]
        results = ring_allreduce_sum(make_cluster(5), vectors)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-5)

    def test_subgroup_ring_on_torus(self, rng):
        # Reduce only along the first row of a 2x3 torus.
        cluster = Cluster(torus_topology(2, 3))
        row = [0, 1, 2]
        vectors = [rng.standard_normal(9) for _ in range(3)]
        results = ring_allreduce_sum(cluster, vectors, ranks=row)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-5)

    @given(
        m=st.integers(min_value=2, max_value=6),
        d=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_property(self, m, d, seed):
        rng = np.random.default_rng(seed)
        vectors = [rng.standard_normal(d) for _ in range(m)]
        results = ring_allreduce_sum(make_cluster(m), vectors)
        assert np.allclose(results[0], np.sum(vectors, axis=0), atol=1e-3)


class TestSignSumAllreduce:
    def test_matches_numpy_sum(self, rng):
        m, d = 5, 33
        signs = [np.where(rng.standard_normal(d) >= 0, 1.0, -1.0) for _ in range(m)]
        cluster = make_cluster(m)
        results = signsum_ring_allreduce(cluster, signs)
        expected = np.sum(signs, axis=0).astype(np.int64)
        for result in results:
            assert np.array_equal(result, expected)

    def test_rejects_non_sign_input(self, rng):
        with pytest.raises(ValueError):
            signsum_ring_allreduce(make_cluster(2), [np.array([1.0, 0.5])] * 2)

    def test_bit_expansion_traffic(self, rng):
        # Reduce-phase hop s carries width(s+2) bits/elem; the gather phase
        # carries width(M) bits/elem; strictly more than 1 bit after hop 1.
        m, d = 4, 80
        signs = [np.where(rng.standard_normal(d) >= 0, 1.0, -1.0) for _ in range(m)]
        cluster = make_cluster(m)
        signsum_ring_allreduce(cluster, signs, charge_compression=False)
        seg = d // m
        # Reduce step s (0-indexed) forwards partial sums over s+1 workers;
        # the gather phase circulates full sums over all m workers.
        reduce_bytes = sum(
            m * ((signed_int_bit_width(s + 1) * seg + 7) // 8)
            for s in range(m - 1)
        )
        gather_bytes = (m - 1) * m * ((signed_int_bit_width(m) * seg + 7) // 8)
        assert cluster.total_bytes == reduce_bytes + gather_bytes

    def test_cheaper_than_fp32_but_pricier_than_one_bit(self, rng):
        m, d = 8, 800
        signs = [np.where(rng.standard_normal(d) >= 0, 1.0, -1.0) for _ in range(m)]
        sign_cluster = make_cluster(m)
        signsum_ring_allreduce(sign_cluster, signs, charge_compression=False)
        fp_cluster = make_cluster(m)
        ring_allreduce_sum(fp_cluster, signs)
        one_bit_total = 2 * (m - 1) * (d // m // 8) * m  # 1 bit/elem ring
        assert one_bit_total < sign_cluster.total_bytes < fp_cluster.total_bytes

    def test_single_worker(self):
        result = signsum_ring_allreduce(make_cluster(1), [np.array([1.0, -1.0])])
        assert np.array_equal(result[0], [1, -1])
