"""Tests for QSGD, TernGrad, top-k and PowerSGD baselines."""

import numpy as np
import pytest

from repro.compression.powersgd import PowerSGDCompressor
from repro.compression.qsgd import QSGDCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.topk import TopKCompressor


class TestQSGD:
    def test_unbiased(self):
        rng = np.random.default_rng(0)
        vector = rng.standard_normal(24)
        compressor = QSGDCompressor(num_levels=4)
        total = np.zeros(24)
        trials = 20_000
        for _ in range(trials):
            total += compressor.compress(vector, rng=rng).decode()
        assert np.abs(total / trials - vector).max() < 0.1

    def test_levels_in_range(self, rng):
        payload = QSGDCompressor(num_levels=4).compress(
            rng.standard_normal(100), rng=rng
        )
        assert payload.levels.min() >= 0
        assert payload.levels.max() <= 4

    def test_zero_vector(self, rng):
        payload = QSGDCompressor().compress(np.zeros(10), rng=rng)
        assert np.allclose(payload.decode(), 0.0)

    def test_requires_rng(self, rng):
        with pytest.raises(ValueError):
            QSGDCompressor().compress(rng.standard_normal(4))

    def test_smaller_than_fp32(self, rng):
        vector = rng.standard_normal(1000)
        payload = QSGDCompressor(num_levels=4).compress(vector, rng=rng)
        assert payload.nbytes < 4000

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            QSGDCompressor(num_levels=0)


class TestTernGrad:
    def test_digits_ternary(self, rng):
        payload = TernGradCompressor().compress(rng.standard_normal(50), rng=rng)
        assert np.isin(payload.digits, (-1, 0, 1)).all()

    def test_unbiased(self):
        rng = np.random.default_rng(1)
        vector = rng.standard_normal(20)
        compressor = TernGradCompressor()
        total = np.zeros(20)
        trials = 20_000
        for _ in range(trials):
            total += compressor.compress(vector, rng=rng).decode()
        assert np.abs(total / trials - vector).max() < 0.1

    def test_max_element_always_kept(self, rng):
        vector = np.array([0.1, -3.0, 0.2])
        for _ in range(20):
            payload = TernGradCompressor().compress(vector, rng=rng)
            assert payload.digits[1] == -1

    def test_two_bits_per_element(self, rng):
        payload = TernGradCompressor().compress(rng.standard_normal(100), rng=rng)
        assert payload.nbytes == 4 + 25


class TestTopK:
    def test_keeps_largest(self):
        vector = np.array([0.1, -5.0, 0.3, 2.0, -0.2])
        payload = TopKCompressor(k=2).compress(vector)
        decoded = payload.decode()
        assert decoded[1] == -5.0 and decoded[3] == 2.0
        assert np.count_nonzero(decoded) == 2

    def test_k_larger_than_vector(self, rng):
        vector = rng.standard_normal(3)
        decoded = TopKCompressor(k=10).compress(vector).decode()
        assert np.allclose(decoded, vector)

    def test_wire_size_scales_with_k(self, rng):
        vector = rng.standard_normal(1000)
        small = TopKCompressor(k=10).compress(vector)
        large = TopKCompressor(k=100).compress(vector)
        assert small.nbytes < large.nbytes

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKCompressor(k=0)


class TestPowerSGD:
    def test_low_rank_approximation_improves_with_rank(self, rng):
        # A rank-2 matrix should be captured much better by rank 2 than 1.
        u = rng.standard_normal((32, 2))
        v = rng.standard_normal((2, 32))
        vector = (u @ v).reshape(-1)

        def error(rank):
            compressor = PowerSGDCompressor(rank=rank)
            decoded = vector
            for _ in range(4):  # warm-start iterations
                decoded = compressor.compress(vector).decode()
            return np.linalg.norm(decoded - vector) / np.linalg.norm(vector)

        assert error(2) < 0.05
        assert error(2) < error(1)

    def test_wire_size_much_smaller_than_dense(self, rng):
        vector = rng.standard_normal(4096)
        payload = PowerSGDCompressor(rank=2).compress(vector)
        assert payload.nbytes < 4096 * 4 / 8

    def test_dimension_change_resets_state(self, rng):
        compressor = PowerSGDCompressor(rank=1)
        compressor.compress(rng.standard_normal(64))
        decoded = compressor.compress(rng.standard_normal(100)).decode()
        assert decoded.shape == (100,)

    def test_reset(self, rng):
        compressor = PowerSGDCompressor(rank=1)
        compressor.compress(rng.standard_normal(64))
        compressor.reset()
        assert compressor.nominal_bits_per_element() == 32.0

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            PowerSGDCompressor(rank=0)
