"""Tests for sign-family compressors: identity, sign, mean-abs, majority."""

import numpy as np
import pytest

from repro.compression.base import as_vector
from repro.compression.signsgd import (
    IdentityCompressor,
    MeanAbsSignCompressor,
    SignCompressor,
    majority_vote,
)


class TestAsVector:
    def test_accepts_1d(self):
        out = as_vector([1, 2, 3])
        assert out.dtype == np.float64

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            as_vector(np.zeros((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_vector(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_vector(np.array([np.inf]))


class TestIdentity:
    def test_roundtrip(self, rng):
        vector = rng.standard_normal(20)
        payload = IdentityCompressor().compress(vector)
        assert np.allclose(payload.decode(), vector, atol=1e-6)

    def test_fp32_wire_size(self, rng):
        payload = IdentityCompressor().compress(rng.standard_normal(10))
        assert payload.nbytes == 40


class TestSign:
    def test_decodes_to_signs(self, rng):
        vector = rng.standard_normal(33)
        payload = SignCompressor().compress(vector)
        assert np.array_equal(payload.decode(), np.where(vector >= 0, 1.0, -1.0))

    def test_one_bit_per_element(self):
        payload = SignCompressor().compress(np.zeros(64))
        assert payload.nbytes == 8

    def test_nominal_bits(self):
        assert SignCompressor().nominal_bits_per_element() == 1.0


class TestMeanAbsSign:
    def test_scale_is_l1_mean(self, rng):
        vector = rng.standard_normal(50)
        payload = MeanAbsSignCompressor().compress(vector)
        assert payload.scale == pytest.approx(np.abs(vector).mean())

    def test_decode(self, rng):
        vector = rng.standard_normal(16)
        decoded = MeanAbsSignCompressor().compress(vector).decode()
        expected = np.abs(vector).mean() * np.where(vector >= 0, 1.0, -1.0)
        assert np.allclose(decoded, expected)

    def test_norm_control(self, rng):
        # The property that makes it cascade-safe: decoded norm ~ input norm.
        vector = rng.standard_normal(400)
        decoded = MeanAbsSignCompressor().compress(vector).decode()
        ratio = np.linalg.norm(decoded) / np.linalg.norm(vector)
        assert 0.5 < ratio < 1.2


class TestMajorityVote:
    def test_simple_majority(self):
        votes = [
            np.array([1.0, 1.0, -1.0]),
            np.array([1.0, -1.0, -1.0]),
            np.array([-1.0, 1.0, -1.0]),
        ]
        assert np.array_equal(majority_vote(votes), [1.0, 1.0, -1.0])

    def test_tie_breaks_positive(self):
        votes = [np.array([1.0]), np.array([-1.0])]
        assert majority_vote(votes)[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            majority_vote([])

    def test_rejects_non_signs(self):
        with pytest.raises(ValueError):
            majority_vote([np.array([0.5, 1.0])])
