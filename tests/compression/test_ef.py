"""Tests for EF-signSGD error feedback."""

import numpy as np
import pytest

from repro.compression.ef import EFSignCompressor


class TestEFSign:
    def test_memory_identity(self, rng):
        # Invariant: corrected = decoded + new_memory, exactly.
        compressor = EFSignCompressor()
        grad = rng.standard_normal(30)
        payload = compressor.compress(grad)
        assert np.allclose(payload.decode() + compressor.memory, grad, atol=1e-12)

    def test_memory_accumulates_across_rounds(self, rng):
        compressor = EFSignCompressor()
        g1, g2 = rng.standard_normal(20), rng.standard_normal(20)
        d1 = compressor.compress(g1).decode()
        mem1 = compressor.memory
        d2 = compressor.compress(g2).decode()
        assert np.allclose(mem1 + g2, d2 + compressor.memory, atol=1e-12)
        assert d1.shape == d2.shape

    def test_scale_is_l1_mean_of_corrected(self, rng):
        compressor = EFSignCompressor()
        grad = rng.standard_normal(25)
        payload = compressor.compress(grad)
        assert payload.scale == pytest.approx(np.abs(grad).mean())

    def test_total_transmitted_tracks_total_gradient(self, rng):
        # Error feedback's defining property: sum of decoded messages
        # approaches sum of gradients (memory stays bounded).
        compressor = EFSignCompressor()
        total_grad = np.zeros(40)
        total_sent = np.zeros(40)
        for _ in range(200):
            grad = rng.standard_normal(40)
            total_grad += grad
            total_sent += compressor.compress(grad).decode()
        residual = total_grad - total_sent
        assert np.allclose(residual, compressor.memory, atol=1e-9)
        assert np.abs(residual).max() < 10  # bounded, not growing ~200

    def test_reset_clears_memory(self, rng):
        compressor = EFSignCompressor()
        compressor.compress(rng.standard_normal(5))
        compressor.reset()
        assert compressor.memory is None

    def test_dimension_change_rejected(self, rng):
        compressor = EFSignCompressor()
        compressor.compress(rng.standard_normal(5))
        with pytest.raises(ValueError):
            compressor.compress(rng.standard_normal(6))

    def test_memory_property_is_copy(self, rng):
        compressor = EFSignCompressor()
        compressor.compress(rng.standard_normal(5))
        view = compressor.memory
        view[0] = 1e9
        assert compressor.memory[0] != 1e9
