"""Tests for the SSDM stochastic sign compressor."""

import numpy as np
import pytest

from repro.compression.ssdm import (
    BlockScaledSignPayload,
    SSDMCompressor,
    stochastic_sign,
)


class TestStochasticSign:
    def test_signs_are_pm_one(self, rng):
        signs, _ = stochastic_sign(rng.standard_normal(100), rng)
        assert np.isin(signs, (-1.0, 1.0)).all()

    def test_norm_returned(self, rng):
        vector = rng.standard_normal(10)
        _, norm = stochastic_sign(vector, rng)
        assert norm == pytest.approx(np.linalg.norm(vector))

    def test_zero_vector_fair_coin(self):
        rng = np.random.default_rng(0)
        signs, norm = stochastic_sign(np.zeros(2000), rng)
        assert norm == 0.0
        assert abs(signs.mean()) < 0.1

    def test_unbiased_estimator(self):
        # E[norm * sign~(v)] == v (Appendix A).
        rng = np.random.default_rng(1)
        vector = rng.standard_normal(16)
        norm = np.linalg.norm(vector)
        total = np.zeros(16)
        trials = 30_000
        draw_rng = np.random.default_rng(2)
        for _ in range(trials):
            signs, _ = stochastic_sign(vector, draw_rng)
            total += norm * signs
        estimate = total / trials
        # std of the mean ~ norm / sqrt(trials)
        assert np.abs(estimate - vector).max() < 5 * norm / np.sqrt(trials) + 0.05

    def test_extreme_element_always_kept(self):
        # An element equal to the norm has flip probability 1.
        rng = np.random.default_rng(3)
        vector = np.array([5.0, 0.0, 0.0])
        for _ in range(50):
            signs, _ = stochastic_sign(vector, rng)
            assert signs[0] == 1.0


class TestSSDMCompressor:
    def test_requires_rng(self, rng):
        with pytest.raises(ValueError):
            SSDMCompressor().compress(rng.standard_normal(4))

    def test_payload_size_global(self, rng):
        payload = SSDMCompressor().compress(rng.standard_normal(80), rng=rng)
        assert payload.nbytes == 10 + 4  # bits + one fp32 norm

    def test_block_payload_size(self, rng):
        payload = SSDMCompressor(block_size=16).compress(
            rng.standard_normal(80), rng=rng
        )
        assert isinstance(payload, BlockScaledSignPayload)
        assert payload.nbytes == 10 + 4 * 5  # bits + 5 block norms

    def test_block_decode_shape(self, rng):
        vector = rng.standard_normal(50)  # not a multiple of 16
        payload = SSDMCompressor(block_size=16).compress(vector, rng=rng)
        assert payload.decode().shape == (50,)

    def test_block_unbiased(self):
        rng = np.random.default_rng(4)
        vector = rng.standard_normal(32)
        compressor = SSDMCompressor(block_size=8)
        total = np.zeros(32)
        trials = 20_000
        for _ in range(trials):
            total += compressor.compress(vector, rng=rng).decode()
        estimate = total / trials
        assert np.abs(estimate - vector).max() < 0.2

    def test_block_of_zeros_decodes_to_zero(self, rng):
        vector = np.concatenate([np.zeros(8), np.ones(8)])
        payload = SSDMCompressor(block_size=8).compress(vector, rng=rng)
        assert np.allclose(payload.decode()[:8], 0.0)

    def test_small_vector_falls_back_to_global(self, rng):
        payload = SSDMCompressor(block_size=64).compress(
            rng.standard_normal(10), rng=rng
        )
        # Single-block fallback is the plain scaled payload.
        from repro.compression.base import ScaledSignPayload

        assert isinstance(payload, ScaledSignPayload)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            SSDMCompressor(block_size=0)

    def test_nominal_bits(self):
        assert SSDMCompressor().nominal_bits_per_element() == 1.0
        assert SSDMCompressor(block_size=32).nominal_bits_per_element() == 2.0
