"""Shared fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def rngs():
    def make(count, seed=0):
        seeds = np.random.SeedSequence(seed).spawn(count)
        return [np.random.default_rng(s) for s in seeds]

    return make
