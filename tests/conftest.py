"""Shared fixtures and options."""

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden SyncPlan snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def rngs():
    def make(count, seed=0):
        seeds = np.random.SeedSequence(seed).spawn(count)
        return [np.random.default_rng(s) for s in seeds]

    return make
