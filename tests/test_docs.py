"""Documentation stays executable: run every python block in the docs."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _python_blocks(path: pathlib.Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


@pytest.mark.parametrize("doc", ["docs/tutorial.md", "README.md"])
def test_doc_code_blocks_execute(doc):
    path = ROOT / doc
    blocks = _python_blocks(path)
    assert blocks, f"{doc} has no python blocks?"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(block, namespace)  # noqa: S102 - executing our own docs
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc} block {index} failed: {error!r}\n{block}")
