"""SyncPlan IR unit tests and golden-plan snapshots.

The golden files under ``tests/sched/golden/`` pin the exact compiled plan
(steps, transfers, weights, tags, cost annotations) for one representative
shape per topology.  Any schedule change — intended or not — shows up as a
readable JSON diff.  Refresh intentionally with::

    python -m pytest tests/sched/test_plan.py --update-golden
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.allreduce import get_topology
from repro.sched.plan import (
    Barrier,
    CompileContext,
    GridSpec,
    MergeSign,
    Pack,
    SendRecv,
    SyncPlan,
    Transfer,
    full_precision_plan,
    plan_segment_lengths,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

GOLDEN_CASES = {
    "ring_m5_d103": ("ring", {}, 5, 103, None),
    "segmented_ring_m4_d90_seg40": ("ring", {}, 4, 90, 40),
    "torus_2x3_d101": ("torus", {"rows": 2, "cols": 3}, 6, 101, None),
    "tree_m7_a2_d64": ("tree", {"arity": 2}, 7, 64, None),
    "halving_doubling_m8_d37": ("halving_doubling", {}, 8, 37, None),
}


def _compile(name, build_kwargs, num_workers, dimension, segment_elems):
    topology = get_topology(name).build(num_workers, **build_kwargs)
    return get_topology(name).compile_one_bit(
        CompileContext(
            num_workers=num_workers,
            dimension=dimension,
            meta=dict(topology.meta),
            segment_elems=segment_elems,
        )
    )


class TestPlanHelpers:
    @pytest.mark.parametrize(
        "total,parts", [(10, 3), (103, 5), (3, 4), (0, 2), (64, 64)]
    )
    def test_plan_segment_lengths_matches_array_split(self, total, parts):
        expected = [len(part) for part in np.array_split(np.arange(total), parts)]
        assert plan_segment_lengths(total, parts) == expected

    def test_digest_is_stable_and_content_sensitive(self):
        a = full_precision_plan("ring", 4, 100)
        b = full_precision_plan("ring", 4, 100)
        c = full_precision_plan("ring", 4, 101)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert len(a.digest()) == 12

    def test_validate_rejects_unpaired_sendrecv(self):
        plan = SyncPlan(
            kind="one_bit",
            topology="ring",
            num_workers=2,
            dimension=8,
            grids=(GridSpec(name="g", lane_ranks=(0, 1), num_segments=1),),
            steps=(
                Pack(grid="g", start=0, stop=8),
                SendRecv(
                    grid="g",
                    tag="t",
                    transfers=(Transfer(src_lane=0, dst_lane=1, seg=0),),
                ),
            ),
        )
        with pytest.raises(ValueError, match="MergeSign"):
            plan.validate()

    def test_validate_rejects_duplicate_wave_destinations(self):
        from repro.sched.plan import Merge

        merge = Merge(
            dst_lane=1, src_lane=0, seg=0, received_weight=1, local_weight=1
        )
        plan = SyncPlan(
            kind="one_bit",
            topology="ring",
            num_workers=2,
            dimension=8,
            grids=(GridSpec(name="g", lane_ranks=(0, 1), num_segments=1),),
            steps=(
                SendRecv(
                    grid="g",
                    tag="t",
                    transfers=(Transfer(src_lane=0, dst_lane=1, seg=0),),
                ),
                MergeSign(
                    grid="g",
                    waves=((merge, merge),),
                    compress_elems=None,
                    rng_elems=8,
                    bitop_elems=8,
                ),
            ),
        )
        with pytest.raises(ValueError, match="duplicate destination"):
            plan.validate()

    def test_validate_rejects_unknown_grid(self):
        plan = SyncPlan(
            kind="one_bit",
            topology="ring",
            num_workers=2,
            dimension=8,
            grids=(),
            steps=(Pack(grid="ghost", start=0, stop=8),),
        )
        with pytest.raises(ValueError, match="ghost"):
            plan.validate()

    def test_fused_hop_invariant_holds_for_all_compiled_plans(self):
        for name, build_kwargs, num, dim, seg in GOLDEN_CASES.values():
            plan = _compile(name, build_kwargs, num, dim, seg)
            plan.validate()
            for pos, step in enumerate(plan.steps):
                if isinstance(step, SendRecv):
                    assert isinstance(plan.steps[pos + 1], MergeSign)

    def test_barriers_balance_in_all_compiled_plans(self):
        for name, build_kwargs, num, dim, seg in GOLDEN_CASES.values():
            plan = _compile(name, build_kwargs, num, dim, seg)
            depth = 0
            for step in plan.steps:
                if isinstance(step, Barrier):
                    depth += 1 if step.kind == "begin" else -1
                    assert depth >= 0
            assert depth == 0


class TestGoldenPlans:
    @pytest.mark.parametrize("case_name", sorted(GOLDEN_CASES))
    def test_plan_matches_golden(self, case_name, update_golden):
        name, build_kwargs, num, dim, seg = GOLDEN_CASES[case_name]
        plan = _compile(name, build_kwargs, num, dim, seg)
        plan.validate()
        # Round-trip through JSON so tuples in the IR compare equal to the
        # lists they deserialize to.
        document = {
            "digest": plan.digest(),
            "plan": json.loads(json.dumps(plan.to_json_dict())),
        }
        path = GOLDEN_DIR / f"{case_name}.json"
        if update_golden:
            path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
            return
        assert path.exists(), (
            f"missing golden snapshot {path}; run "
            "pytest tests/sched/test_plan.py --update-golden"
        )
        recorded = json.loads(path.read_text())
        assert document["digest"] == recorded["digest"], (
            f"plan digest changed for {case_name}: "
            f"{recorded['digest']} -> {document['digest']}; if intended, "
            "refresh with --update-golden"
        )
        assert document["plan"] == recorded["plan"]
