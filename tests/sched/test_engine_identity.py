"""Cross-engine identity over every registered one-bit topology.

The SyncPlan contract: both executors interpreting the same plan must
produce bit-for-bit identical global updates AND identical accounting —
total bytes, total messages, per-link counters, and the simulated timeline —
on every topology with a registered compiler, including ragged sizes
(``D % M != 0``), empty segments (``D < M``), segmented-ring pipelining, and
K-sync full-precision rounds.  One parametrized suite replaces the old
per-topology copies: a newly registered topology that is not covered here
fails :func:`test_every_registered_topology_has_cases`.
"""

import numpy as np
import pytest

from repro.allreduce import get_topology, one_bit_topology_names
from repro.comm.cluster import Cluster
from repro.core.marsit import MarsitConfig, MarsitSynchronizer

ROUNDS = 3

# name -> list of (build_kwargs, num_workers, dimension, config_overrides)
CASES = {
    "ring": [
        ({}, 8, 512, {}),
        ({}, 5, 103, {}),
        ({}, 4, 3, {}),
        ({}, 6, 500, {"segment_elems": 64}),
        ({}, 6, 500, {"segment_elems": 100}),
        ({}, 6, 500, {"segment_elems": 1000}),
    ],
    "torus": [
        ({"rows": 4, "cols": 4}, 16, 256, {}),
        ({"rows": 2, "cols": 3}, 6, 101, {}),
        ({"rows": 1, "cols": 4}, 4, 64, {}),
        ({"rows": 3, "cols": 1}, 3, 50, {}),
    ],
    "tree": [
        ({"arity": 2}, 7, 200, {}),
        ({"arity": 3}, 13, 257, {}),
        ({"arity": 2}, 4, 65, {}),
    ],
    "halving_doubling": [
        ({}, 8, 256, {}),
        ({}, 4, 37, {}),
        ({}, 2, 3, {}),
    ],
}

PARAMS = [
    pytest.param(name, case, k_sync, id=f"{name}-{idx}-K{k_sync}")
    for name, cases in sorted(CASES.items())
    for idx, case in enumerate(cases)
    for k_sync in (None, 2)
]


def _run(name, build_kwargs, num_workers, dimension, engine, k_sync, config):
    topology = get_topology(name).build(num_workers, **build_kwargs)
    cluster = Cluster(topology)
    sync = MarsitSynchronizer(
        MarsitConfig(
            global_lr=0.25,
            seed=42,
            engine=engine,
            full_precision_every=k_sync,
            **config,
        ),
        num_workers,
        dimension,
    )
    rng = np.random.default_rng(9)
    outputs = []
    for round_idx in range(1, ROUNDS + 1):
        updates = [rng.standard_normal(dimension) for _ in range(num_workers)]
        report = sync.synchronize(cluster, updates, round_idx)
        outputs.append(np.stack(report.global_updates))
    return cluster, sync, outputs, report


def test_every_registered_topology_has_cases():
    assert set(CASES) == set(one_bit_topology_names())


@pytest.mark.parametrize("name,case,k_sync", PARAMS)
def test_engines_identical(name, case, k_sync):
    build_kwargs, num_workers, dimension, config = case
    scalar_cluster, scalar_sync, scalar_out, scalar_rep = _run(
        name, build_kwargs, num_workers, dimension, "scalar", k_sync, config
    )
    batched_cluster, batched_sync, batched_out, batched_rep = _run(
        name, build_kwargs, num_workers, dimension, "batched", k_sync, config
    )
    for reference, candidate in zip(scalar_out, batched_out):
        assert np.array_equal(reference, candidate)
    assert np.array_equal(
        scalar_sync.state.compensation, batched_sync.state.compensation
    )
    assert batched_cluster.total_bytes == scalar_cluster.total_bytes
    assert batched_cluster.total_messages == scalar_cluster.total_messages
    for key, link in scalar_cluster.links.items():
        assert batched_cluster.links[key].bytes_sent == link.bytes_sent
        assert batched_cluster.links[key].messages_sent == link.messages_sent
    assert batched_cluster.timeline.seconds == scalar_cluster.timeline.seconds
    # The plan is a property of the topology, not the executor.
    assert scalar_rep.plan_digest == batched_rep.plan_digest
    assert scalar_rep.num_plan_steps == batched_rep.num_plan_steps
    assert scalar_rep.plan_digest is not None
    assert scalar_rep.num_plan_steps > 0
