"""Golden snapshots for post-crash (degraded) SyncPlans.

Same idiom as :mod:`tests.sched.test_plan`, but the plans come from
:func:`repro.faults.recovery.compile_degraded_plan`, so the snapshots pin
both the degraded *schedule* (the survivors' ring/tree) and the recovery
*provenance* (which family degraded, which original ranks survived) that
feeds the digest.  Refresh intentionally with::

    python -m pytest tests/sched/test_degraded_golden.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.comm.topology import (
    halving_doubling_topology,
    ring_topology,
    torus_topology,
    tree_topology,
)
from repro.faults.recovery import compile_degraded_plan

GOLDEN_DIR = Path(__file__).parent / "golden"

# case -> (original topology, surviving original ranks, dimension)
DEGRADED_CASES = {
    "degraded_ring_m6_crash2": (ring_topology(6), [0, 1, 3, 4, 5], 103),
    "degraded_torus_2x3_crash4": (torus_topology(2, 3), [0, 1, 2, 3, 5], 101),
    "degraded_tree_m7_a2_crash3": (
        tree_topology(7, arity=2), [0, 1, 2, 4, 5, 6], 64,
    ),
    "degraded_hd_m8_crash5": (
        halving_doubling_topology(8), [0, 1, 2, 3, 4, 6, 7], 37,
    ),
}


class TestDegradedGoldenPlans:
    @pytest.mark.parametrize("case_name", sorted(DEGRADED_CASES))
    def test_degraded_plan_matches_golden(self, case_name, update_golden):
        topology, survivors, dimension = DEGRADED_CASES[case_name]
        plan, rebuilt = compile_degraded_plan(topology, survivors, dimension)
        plan.validate()
        document = {
            "digest": plan.digest(),
            "degraded_to": rebuilt.name,
            "plan": json.loads(json.dumps(plan.to_json_dict())),
        }
        path = GOLDEN_DIR / f"{case_name}.json"
        if update_golden:
            path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
            return
        assert path.exists(), (
            f"missing golden snapshot {path}; run "
            "pytest tests/sched/test_degraded_golden.py --update-golden"
        )
        recorded = json.loads(path.read_text())
        assert document["digest"] == recorded["digest"], (
            f"degraded plan digest changed for {case_name}: "
            f"{recorded['digest']} -> {document['digest']}; if intended, "
            "refresh with --update-golden"
        )
        assert document["degraded_to"] == recorded["degraded_to"]
        assert document["plan"] == recorded["plan"]

    def test_non_power_of_two_butterfly_snapshot_degrades_to_ring(self):
        # 8-node halving-doubling minus one is 7 — not a power of two — so
        # the recorded snapshot must be the ring fallback.
        plan, rebuilt = compile_degraded_plan(
            *DEGRADED_CASES["degraded_hd_m8_crash5"][:2], dimension=37
        )
        assert rebuilt.name == "ring"
        assert plan.topology == "ring"
