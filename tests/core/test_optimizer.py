"""Tests for Marsit-driven optimizers (Algorithm 2 variants)."""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig
from repro.core.optimizer import MarsitAdam, MarsitMomentum, MarsitSGD


def cluster(m):
    return Cluster(ring_topology(m))


class TestMarsitSGD:
    def test_transform_scales_by_local_lr(self, rng):
        opt = MarsitSGD(MarsitConfig(global_lr=0.01), 0.5, 2, 8)
        grad = rng.standard_normal(8)
        assert np.allclose(opt.transform(0, grad), 0.5 * grad)

    def test_step_returns_consensus(self, rng):
        m, d = 3, 24
        opt = MarsitSGD(MarsitConfig(global_lr=0.01), 0.1, m, d)
        report = opt.step(cluster(m), [rng.standard_normal(d) for _ in range(m)], 1)
        for update in report.global_updates[1:]:
            assert np.array_equal(update, report.global_updates[0])

    def test_rejects_wrong_grad_count(self, rng):
        opt = MarsitSGD(MarsitConfig(global_lr=0.01), 0.1, 3, 8)
        with pytest.raises(ValueError):
            opt.step(cluster(3), [rng.standard_normal(8)] * 2, 1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            MarsitSGD(MarsitConfig(global_lr=0.01), 0.0, 2, 4)


class TestMarsitMomentum:
    def test_matches_reference_heavy_ball(self, rng):
        opt = MarsitMomentum(
            MarsitConfig(global_lr=0.01), 0.1, 1, 6, momentum=0.9
        )
        buffer = np.zeros(6)
        for _ in range(5):
            grad = rng.standard_normal(6)
            buffer = 0.9 * buffer + grad
            assert np.allclose(opt.transform(0, grad), 0.1 * buffer)

    def test_buffers_are_per_worker(self, rng):
        opt = MarsitMomentum(MarsitConfig(global_lr=0.01), 0.1, 2, 4)
        g = rng.standard_normal(4)
        opt.transform(0, g)
        # Worker 1's buffer is untouched by worker 0's update.
        assert np.allclose(opt.transform(1, g), 0.1 * g)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            MarsitMomentum(MarsitConfig(global_lr=0.01), 0.1, 2, 4, momentum=1.0)


class TestMarsitAdam:
    def test_matches_reference_adam(self, rng):
        lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-8
        opt = MarsitAdam(
            MarsitConfig(global_lr=0.01), lr, 1, 5, beta1=b1, beta2=b2, eps=eps
        )
        m = np.zeros(5)
        v = np.zeros(5)
        for t in range(1, 6):
            grad = rng.standard_normal(5)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad**2
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            expected = lr * m_hat / (np.sqrt(v_hat) + eps)
            assert np.allclose(opt.transform(0, grad), expected)

    def test_first_step_magnitude_near_lr(self, rng):
        # Bias correction makes |update| ~ lr on step one.
        opt = MarsitAdam(MarsitConfig(global_lr=0.01), 0.01, 1, 100)
        update = opt.transform(0, rng.standard_normal(100))
        assert np.abs(update).max() < 0.011
        assert np.abs(update).mean() > 0.005

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            MarsitAdam(MarsitConfig(global_lr=0.01), 0.1, 1, 4, beta1=1.0)
