"""Tests for Marsit's extended paradigms: tree and segmented-ring sync.

Section 5: "Marsit can be easily extended to other all-reduce paradigms
including segmented-ring all-reduce and tree all-reduce."
"""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology, tree_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer


def mean_sign(vectors):
    return np.mean([np.where(v >= 0, 1.0, -1.0) for v in vectors], axis=0)


class TestTreeMarsit:
    def test_consensus(self, rng):
        m, d = 6, 200
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.1), m, d)
        cluster = Cluster(tree_topology(m, arity=2))
        report = sync.synchronize(
            cluster, [rng.standard_normal(d) for _ in range(m)], 1
        )
        for update in report.global_updates[1:]:
            assert np.array_equal(update, report.global_updates[0])
        cluster.assert_drained()

    def test_unbiased(self, rng):
        m, d = 5, 800
        base = [rng.standard_normal(d) for _ in range(m)]
        target = mean_sign(base)
        acc = np.zeros(d)
        trials = 120
        for trial in range(trials):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=1.0, seed=trial), m, d
            )
            cluster = Cluster(tree_topology(m, arity=2))
            acc += sync.synchronize(
                cluster, [b.copy() for b in base], 1
            ).global_updates[0]
        assert np.abs(acc / trials - target).mean() < 4.0 / np.sqrt(trials)

    def test_wide_arity(self, rng):
        m, d = 7, 64
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.1), m, d)
        cluster = Cluster(tree_topology(m, arity=6))
        report = sync.synchronize(
            cluster, [rng.standard_normal(d) for _ in range(m)], 1
        )
        assert np.isin(report.global_updates[0] / 0.1, (-1.0, 1.0)).all()

    def test_one_bit_per_edge(self, rng):
        m, d = 4, 8000
        cluster = Cluster(tree_topology(m, arity=2))
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.1), m, d)
        sync.synchronize(cluster, [rng.standard_normal(d) for _ in range(m)], 1)
        # Tree: 2 (M-1) messages of D bits (up + down per edge).
        assert cluster.total_bytes == 2 * (m - 1) * d // 8

    def test_full_precision_round_on_tree(self, rng):
        m, d = 5, 30
        sync = MarsitSynchronizer(
            MarsitConfig(global_lr=0.1, full_precision_every=2), m, d
        )
        cluster = Cluster(tree_topology(m, arity=2))
        updates = [rng.standard_normal(d) for _ in range(m)]
        report = sync.synchronize(cluster, updates, 0)
        assert report.full_precision
        assert np.allclose(
            report.global_updates[0], np.mean(updates, axis=0), atol=1e-5
        )


class TestSegmentedRingMarsit:
    def test_consensus_and_one_bit(self, rng):
        m, d = 4, 1030  # not a multiple of the segment size
        config = MarsitConfig(global_lr=0.1, segment_elems=128)
        sync = MarsitSynchronizer(config, m, d)
        cluster = Cluster(ring_topology(m))
        report = sync.synchronize(
            cluster, [rng.standard_normal(d) for _ in range(m)], 1
        )
        for update in report.global_updates[1:]:
            assert np.array_equal(update, report.global_updates[0])
        assert np.isin(report.global_updates[0] / 0.1, (-1.0, 1.0)).all()
        cluster.assert_drained()

    def test_unbiased(self, rng):
        m, d = 3, 900
        base = [rng.standard_normal(d) for _ in range(m)]
        target = mean_sign(base)
        acc = np.zeros(d)
        trials = 120
        for trial in range(trials):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=1.0, seed=trial, segment_elems=100),
                m, d,
            )
            cluster = Cluster(ring_topology(m))
            acc += sync.synchronize(
                cluster, [b.copy() for b in base], 1
            ).global_updates[0]
        assert np.abs(acc / trials - target).mean() < 4.0 / np.sqrt(trials)

    def test_matches_plain_ring_volume_up_to_padding(self, rng):
        m, d = 4, 4096
        plain = Cluster(ring_topology(m))
        MarsitSynchronizer(MarsitConfig(global_lr=0.1), m, d).synchronize(
            plain, [rng.standard_normal(d) for _ in range(m)], 1
        )
        segmented = Cluster(ring_topology(m))
        MarsitSynchronizer(
            MarsitConfig(global_lr=0.1, segment_elems=512), m, d
        ).synchronize(segmented, [rng.standard_normal(d) for _ in range(m)], 1)
        # Same bit volume modulo byte-padding of the smaller segments.
        assert segmented.total_bytes <= plain.total_bytes * 1.1

    def test_rejects_bad_segment_config(self):
        with pytest.raises(ValueError):
            MarsitConfig(global_lr=0.1, segment_elems=0)


class TestEliasSignSum:
    def test_elias_saves_bytes_and_matches(self, rng):
        from repro.allreduce import signsum_ring_allreduce

        m, d = 8, 4000
        signs = [
            np.where(rng.standard_normal(d) >= 0, 1.0, -1.0) for _ in range(m)
        ]
        fixed = Cluster(ring_topology(m))
        r_fixed = signsum_ring_allreduce(fixed, [s.copy() for s in signs])
        coded = Cluster(ring_topology(m))
        r_coded = signsum_ring_allreduce(
            coded, [s.copy() for s in signs], elias_coded=True
        )
        assert np.array_equal(r_fixed[0], r_coded[0])
        assert coded.total_bytes < fixed.total_bytes
        # Entropy coding cannot reach Marsit's flat one bit per element.
        one_bit_volume = 2 * (m - 1) * m * (d // m) / 8
        assert coded.total_bytes > one_bit_volume


class TestZigzag:
    def test_roundtrip(self):
        from repro.comm.bits import zigzag_decode, zigzag_encode

        values = np.array([-10, -1, 0, 1, 2, 63])
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_strictly_positive(self):
        from repro.comm.bits import zigzag_encode

        values = np.arange(-50, 51)
        encoded = zigzag_encode(values)
        assert encoded.min() >= 1
        assert len(set(encoded.tolist())) == len(values)

    def test_decode_rejects_nonpositive(self):
        from repro.comm.bits import zigzag_decode

        with pytest.raises(ValueError):
            zigzag_decode(np.array([0]))
