"""Batched sign-op kernels must match the packed per-lane reference exactly.

``transient_vector_batch`` draws each lane's uniforms from that lane's own
generator with ``rng.random(out=...)``, which consumes the identical stream
as the scalar ``rng.random(n)`` — so under cloned generators the batched and
per-lane results must be bit-for-bit equal, including ragged lane lengths
and per-lane weight vectors.
"""

import copy

import numpy as np
import pytest

from repro.comm.bits import PackedBits, PackedBitsBatch
from repro.core.sign_ops import (
    merge_sign_bits_batch,
    merge_sign_bits_packed,
    transient_vector_batch,
    transient_vector_packed,
)


def make_batch(lanes: int, lengths: list[int], seed: int) -> PackedBitsBatch:
    rng = np.random.default_rng(seed)
    n = max(lengths) if lengths else 0
    bits = (rng.random((lanes, n)) < 0.5).astype(np.uint8)
    return PackedBitsBatch.from_bit_matrix(
        bits, lengths=np.array(lengths, dtype=np.int64)
    )


class TestTransientVectorBatch:
    @pytest.mark.parametrize("lengths", [[64, 64, 64], [1, 63, 200], [0, 5]])
    def test_matches_per_lane_packed_reference(self, lengths):
        lanes = len(lengths)
        local = make_batch(lanes, lengths, 0)
        rngs = [np.random.default_rng(100 + lane) for lane in range(lanes)]
        clones = [copy.deepcopy(rng) for rng in rngs]
        batched = transient_vector_batch(local, 3, 2, rngs)
        for lane in range(lanes):
            expected = transient_vector_packed(local.row(lane), 3, 2, clones[lane])
            assert batched.row(lane).equals(expected)
        # Both paths must have consumed the same amount of stream.
        for rng, clone in zip(rngs, clones):
            assert rng.random() == clone.random()

    def test_vector_weights_apply_per_lane(self):
        local = make_batch(3, [100, 100, 100], 1)
        received = np.array([1, 2, 5])
        weights = np.array([4, 3, 1])
        rngs = [np.random.default_rng(7 + lane) for lane in range(3)]
        clones = [copy.deepcopy(rng) for rng in rngs]
        batched = transient_vector_batch(local, received, weights, rngs)
        for lane in range(3):
            expected = transient_vector_packed(
                local.row(lane),
                int(received[lane]),
                int(weights[lane]),
                clones[lane],
            )
            assert batched.row(lane).equals(expected)

    def test_rejects_invalid_weights_and_rng_count(self):
        local = make_batch(2, [10, 10], 2)
        rngs = [np.random.default_rng(0), np.random.default_rng(1)]
        with pytest.raises(ValueError, match=">= 1"):
            transient_vector_batch(local, 0, 1, rngs)
        with pytest.raises(ValueError, match=">= 1"):
            transient_vector_batch(local, 1, np.array([1, 0]), rngs)
        with pytest.raises(ValueError, match="one generator per lane"):
            transient_vector_batch(local, 1, 1, rngs[:1])


class TestMergeSignBitsBatch:
    @pytest.mark.parametrize("lengths", [[64, 64], [3, 65, 129], [0, 1]])
    def test_matches_per_lane_packed_reference(self, lengths):
        lanes = len(lengths)
        received = make_batch(lanes, lengths, 10)
        local = make_batch(lanes, lengths, 11)
        transient = make_batch(lanes, lengths, 12)
        merged = merge_sign_bits_batch(received, local, transient)
        for lane in range(lanes):
            expected = merge_sign_bits_packed(
                received.row(lane), local.row(lane), transient.row(lane)
            )
            assert merged.row(lane).equals(expected)

    def test_transient_resolves_disagreements_only(self):
        ones = PackedBitsBatch.from_bit_matrix(np.ones((1, 64), dtype=np.uint8))
        zeros = PackedBitsBatch.from_bit_matrix(np.zeros((1, 64), dtype=np.uint8))
        # Agreeing lanes ignore the transient entirely.
        assert merge_sign_bits_batch(ones, ones, zeros).equals(ones)
        assert merge_sign_bits_batch(zeros, zeros, ones).equals(zeros)
        # Disagreeing lanes take exactly the transient bit.
        assert merge_sign_bits_batch(ones, zeros, ones).equals(ones)
        assert merge_sign_bits_batch(ones, zeros, zeros).equals(zeros)

    def test_shape_mismatch_raises(self):
        a = make_batch(2, [10, 10], 0)
        b = make_batch(2, [10, 9], 0)
        with pytest.raises(ValueError, match="mismatch"):
            merge_sign_bits_batch(a, b, a)
