"""Lockstep engine selection and strategy plumbing.

Cross-engine identity itself is covered by the parametrized suite in
``tests/sched/test_engine_identity.py``, which runs every registered
topology under both executors.  This module keeps the engine-agnostic
concerns: config validation, the consensus-check flag, the ``M = 1``
short-circuit, and strategy passthrough.
"""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.train.strategies import MarsitStrategy

ROUNDS = 3


def _run(topology, num_workers, dimension, engine, rounds=ROUNDS, **config):
    cluster = Cluster(topology)
    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=0.25, seed=42, engine=engine, **config),
        num_workers,
        dimension,
    )
    rng = np.random.default_rng(9)
    outputs = []
    for round_idx in range(1, rounds + 1):
        updates = [rng.standard_normal(dimension) for _ in range(num_workers)]
        report = sync.synchronize(cluster, updates, round_idx)
        outputs.append(np.stack(report.global_updates))
    return cluster, sync, outputs


def test_single_worker_short_circuits():
    _, _, scalar_out = _run(ring_topology(1), 1, 10, "scalar")
    _, _, batched_out = _run(ring_topology(1), 1, 10, "batched")
    for reference, candidate in zip(scalar_out, batched_out):
        assert np.array_equal(reference, candidate)


class TestConsensusFlag:
    def test_default_engine_is_batched_with_verification(self):
        config = MarsitConfig(global_lr=1.0)
        assert config.engine == "batched"
        assert config.verify_consensus is True

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            MarsitConfig(global_lr=1.0, engine="turbo")

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_verify_consensus_off_keeps_results(self, engine):
        _, _, checked = _run(
            ring_topology(4), 4, 64, engine, verify_consensus=True
        )
        _, _, unchecked = _run(
            ring_topology(4), 4, 64, engine, verify_consensus=False
        )
        for reference, candidate in zip(checked, unchecked):
            assert np.array_equal(reference, candidate)


class TestStrategyPassthrough:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_marsit_strategy_forwards_engine_flags(self, engine):
        strategy = MarsitStrategy(
            local_lr=0.1,
            global_lr=0.5,
            num_workers=4,
            dimension=16,
            engine=engine,
            verify_consensus=False,
        )
        config = strategy._optimizer.synchronizer.config
        assert config.engine == engine
        assert config.verify_consensus is False
