"""Batched lockstep engine vs the scalar per-message reference.

The lane-stacked engine is a pure re-scheduling of the same arithmetic:
under a shared seed it must produce bit-for-bit identical global updates AND
identical accounting — total bytes, total messages, per-link counters, and
the simulated timeline — on every supported topology, including ragged
sizes (``D % M != 0``), empty segments (``D < M``), and ``M = 1``.
"""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology, torus_topology, tree_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.train.strategies import MarsitStrategy

ROUNDS = 3


def _run(topology, num_workers, dimension, engine, rounds=ROUNDS, **config):
    cluster = Cluster(topology)
    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=0.25, seed=42, engine=engine, **config),
        num_workers,
        dimension,
    )
    rng = np.random.default_rng(9)
    outputs = []
    for round_idx in range(1, rounds + 1):
        updates = [rng.standard_normal(dimension) for _ in range(num_workers)]
        report = sync.synchronize(cluster, updates, round_idx)
        outputs.append(np.stack(report.global_updates))
    return cluster, sync, outputs


def assert_engines_identical(topology_factory, num_workers, dimension, **config):
    scalar_cluster, scalar_sync, scalar_out = _run(
        topology_factory(), num_workers, dimension, "scalar", **config
    )
    batched_cluster, batched_sync, batched_out = _run(
        topology_factory(), num_workers, dimension, "batched", **config
    )
    for reference, candidate in zip(scalar_out, batched_out):
        assert np.array_equal(reference, candidate)
    assert np.array_equal(
        scalar_sync.state.compensation, batched_sync.state.compensation
    )
    assert batched_cluster.total_bytes == scalar_cluster.total_bytes
    assert batched_cluster.total_messages == scalar_cluster.total_messages
    for key, link in scalar_cluster.links.items():
        assert batched_cluster.links[key].bytes_sent == link.bytes_sent
        assert batched_cluster.links[key].messages_sent == link.messages_sent
    assert batched_cluster.timeline.seconds == scalar_cluster.timeline.seconds


class TestEngineIdentity:
    @pytest.mark.parametrize("num_workers,dimension", [(8, 512), (5, 103), (4, 3)])
    def test_ring(self, num_workers, dimension):
        assert_engines_identical(
            lambda: ring_topology(num_workers), num_workers, dimension
        )

    @pytest.mark.parametrize(
        "rows,cols,dimension", [(4, 4, 256), (2, 3, 101), (1, 4, 64), (3, 1, 50)]
    )
    def test_torus(self, rows, cols, dimension):
        assert_engines_identical(
            lambda: torus_topology(rows, cols), rows * cols, dimension
        )

    @pytest.mark.parametrize(
        "num_workers,arity,dimension", [(7, 2, 200), (13, 3, 257), (4, 2, 65)]
    )
    def test_tree(self, num_workers, arity, dimension):
        assert_engines_identical(
            lambda: tree_topology(num_workers, arity=arity),
            num_workers,
            dimension,
        )

    @pytest.mark.parametrize("segment_elems", [64, 100, 1000])
    def test_segmented_ring(self, segment_elems):
        assert_engines_identical(
            lambda: ring_topology(6),
            6,
            500,
            segment_elems=segment_elems,
        )

    def test_full_precision_rounds_interleave(self):
        assert_engines_identical(
            lambda: ring_topology(4), 4, 96, full_precision_every=2
        )

    def test_single_worker_short_circuits(self):
        _, _, scalar_out = _run(ring_topology(1), 1, 10, "scalar")
        _, _, batched_out = _run(ring_topology(1), 1, 10, "batched")
        for reference, candidate in zip(scalar_out, batched_out):
            assert np.array_equal(reference, candidate)


class TestConsensusFlag:
    def test_default_engine_is_batched_with_verification(self):
        config = MarsitConfig(global_lr=1.0)
        assert config.engine == "batched"
        assert config.verify_consensus is True

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            MarsitConfig(global_lr=1.0, engine="turbo")

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_verify_consensus_off_keeps_results(self, engine):
        _, _, checked = _run(
            ring_topology(4), 4, 64, engine, verify_consensus=True
        )
        _, _, unchecked = _run(
            ring_topology(4), 4, 64, engine, verify_consensus=False
        )
        for reference, candidate in zip(checked, unchecked):
            assert np.array_equal(reference, candidate)


class TestStrategyPassthrough:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_marsit_strategy_forwards_engine_flags(self, engine):
        strategy = MarsitStrategy(
            local_lr=0.1,
            global_lr=0.5,
            num_workers=4,
            dimension=16,
            engine=engine,
            verify_consensus=False,
        )
        config = strategy._optimizer.synchronizer.config
        assert config.engine == engine
        assert config.verify_consensus is False
