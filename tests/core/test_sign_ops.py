"""Tests for the Marsit ``⊙`` merge operator (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sign_ops import (
    expected_merge_probability,
    merge_sign_bits,
    transient_vector,
)


class TestMergeTruthTable:
    def test_agreement_kept(self):
        received = np.array([1, 1, 0, 0], dtype=np.uint8)
        local = np.array([1, 1, 0, 0], dtype=np.uint8)
        transient = np.array([0, 1, 0, 1], dtype=np.uint8)  # irrelevant
        merged = merge_sign_bits(received, local, transient)
        assert np.array_equal(merged, [1, 1, 0, 0])

    def test_disagreement_takes_transient(self):
        received = np.array([1, 0, 1, 0], dtype=np.uint8)
        local = np.array([0, 1, 0, 1], dtype=np.uint8)
        transient = np.array([1, 1, 0, 0], dtype=np.uint8)
        merged = merge_sign_bits(received, local, transient)
        assert np.array_equal(merged, transient)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            merge_sign_bits(np.ones(3, dtype=np.uint8), np.ones(2, dtype=np.uint8),
                            np.ones(3, dtype=np.uint8))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            merge_sign_bits(np.array([2]), np.array([1]), np.array([0]))

    @given(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
    def test_operator_formula(self, v, l, r):
        # merged = (v AND l) OR ((v XOR l) AND r)
        merged = merge_sign_bits(
            np.array([v], dtype=np.uint8),
            np.array([l], dtype=np.uint8),
            np.array([r], dtype=np.uint8),
        )[0]
        assert merged == ((v & l) | ((v ^ l) & r))


class TestTransientVector:
    def test_probability_where_local_one(self):
        # Eq. 2 with m = 4: local bit 1 -> P(r=1) = 1/4.
        rng = np.random.default_rng(0)
        local = np.ones(200_000, dtype=np.uint8)
        r = transient_vector(local, received_weight=3, local_weight=1, rng=rng)
        assert r.mean() == pytest.approx(0.25, abs=0.01)

    def test_probability_where_local_zero(self):
        # Eq. 2 with m = 4: local bit 0 -> P(r=1) = 3/4.
        rng = np.random.default_rng(0)
        local = np.zeros(200_000, dtype=np.uint8)
        r = transient_vector(local, received_weight=3, local_weight=1, rng=rng)
        assert r.mean() == pytest.approx(0.75, abs=0.01)

    def test_weighted_generalization(self):
        # TAR column phase: local represents a whole row (weight = cols).
        rng = np.random.default_rng(1)
        local = np.ones(200_000, dtype=np.uint8)
        r = transient_vector(local, received_weight=6, local_weight=2, rng=rng)
        assert r.mean() == pytest.approx(2 / 8, abs=0.01)

    def test_rejects_bad_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            transient_vector(np.ones(4, dtype=np.uint8), 0, 1, rng)

    def test_drawable_before_reception(self):
        # The transient depends only on the local bits — the Section 4.1.1
        # parallelism claim.  Same rng state + same local bits => same draw,
        # regardless of what will be received.
        local = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        r1 = transient_vector(local, 2, 1, np.random.default_rng(7))
        r2 = transient_vector(local, 2, 1, np.random.default_rng(7))
        assert np.array_equal(r1, r2)


class TestMergeUnbiasedness:
    def test_single_merge_expectation(self):
        # Merge worker 2's deterministic bits into worker 1's: expected bit
        # equals the average of the two bits.
        rng = np.random.default_rng(2)
        n = 100_000
        received = (rng.random(n) < 0.7).astype(np.uint8)  # p = 0.7
        local = (rng.random(n) < 0.3).astype(np.uint8)  # q = 0.3
        transient = transient_vector(local, 1, 1, rng)
        merged = merge_sign_bits(received, local, transient)
        assert merged.mean() == pytest.approx(0.5, abs=0.01)

    @given(
        p=st.floats(0.0, 1.0),
        q=st.floats(0.0, 1.0),
        a=st.integers(1, 8),
        b=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_weighted_expectation_property(self, p, q, a, b):
        rng = np.random.default_rng(int(p * 1000) * 31 + int(q * 1000))
        n = 60_000
        received = (rng.random(n) < p).astype(np.uint8)
        local = (rng.random(n) < q).astype(np.uint8)
        transient = transient_vector(local, a, b, rng)
        merged = merge_sign_bits(received, local, transient)
        expected = expected_merge_probability(p, q, a, b)
        assert abs(merged.mean() - float(expected)) < 0.02

    def test_chain_of_merges_is_mean_of_signs(self):
        # Full induction: merging M workers one by one yields
        # P(bit) = fraction of +1 among them, per coordinate.
        rng = np.random.default_rng(3)
        m, n = 5, 40_000
        worker_bits = [(rng.random(n) < rng.random()) for _ in range(m)]
        worker_bits = [w.astype(np.uint8) for w in worker_bits]
        counts = np.zeros(n)
        trials = 60
        for trial in range(trials):
            trial_rng = np.random.default_rng(100 + trial)
            merged = worker_bits[0]
            for hop in range(1, m):
                local = worker_bits[hop]
                transient = transient_vector(local, hop, 1, trial_rng)
                merged = merge_sign_bits(merged, local, transient)
            counts += merged
        empirical = counts / trials
        target = np.mean(worker_bits, axis=0)
        assert abs(empirical.mean() - target.mean()) < 0.01
