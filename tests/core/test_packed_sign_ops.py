"""Packed sign-op kernels: bit-identity with the unpacked reference.

``transient_vector_packed`` consumes the same single ``rng.random`` batch as
``transient_vector``, so under a shared seed the packed pipeline must produce
*exactly* the bits of the unpacked one — not just the same distribution.
"""

import numpy as np
import pytest

from repro.comm.bits import PackedBits
from repro.core.sign_ops import (
    expected_merge_probability,
    merge_sign_bits,
    merge_sign_bits_packed,
    transient_vector,
    transient_vector_packed,
)

SIZES = [0, 1, 63, 64, 65, 100, 1000, 4097]


def random_bits(size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(size) < 0.5).astype(np.uint8)


class TestPackedTransientBitIdentity:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("weights", [(1, 1), (3, 1), (7, 2)])
    def test_same_seed_same_bits(self, size, weights):
        received_weight, local_weight = weights
        local_bits = random_bits(size, size + 5)
        reference = transient_vector(
            local_bits, received_weight, local_weight,
            rng=np.random.default_rng(17),
        )
        packed = transient_vector_packed(
            PackedBits.from_bits(local_bits), received_weight, local_weight,
            rng=np.random.default_rng(17),
        )
        assert np.array_equal(packed.to_bits(), reference)

    def test_rejects_bad_weights(self):
        packed = PackedBits.from_bits(random_bits(10, 0))
        with pytest.raises(ValueError):
            transient_vector_packed(packed, 0, 1, np.random.default_rng(0))


class TestPackedMergeBitIdentity:
    @pytest.mark.parametrize("size", SIZES)
    def test_matches_unpacked(self, size):
        received = random_bits(size, size + 20)
        local = random_bits(size, size + 21)
        transient = random_bits(size, size + 22)
        reference = merge_sign_bits(received, local, transient)
        packed = merge_sign_bits_packed(
            PackedBits.from_bits(received),
            PackedBits.from_bits(local),
            PackedBits.from_bits(transient),
        )
        assert np.array_equal(packed.to_bits(), reference)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            merge_sign_bits_packed(
                PackedBits.from_bits(random_bits(64, 1)),
                PackedBits.from_bits(random_bits(65, 2)),
                PackedBits.from_bits(random_bits(64, 3)),
            )

    @pytest.mark.parametrize("size", SIZES)
    def test_full_hop_pipeline_identity(self, size):
        """Draw + merge, packed vs unpacked, one shared seed end-to-end."""
        received = random_bits(size, size + 30)
        local = random_bits(size, size + 31)
        ref_transient = transient_vector(local, 3, 1, np.random.default_rng(7))
        ref_merged = merge_sign_bits(received, local, ref_transient)
        packed_transient = transient_vector_packed(
            PackedBits.from_bits(local), 3, 1, np.random.default_rng(7)
        )
        packed_merged = merge_sign_bits_packed(
            PackedBits.from_bits(received),
            PackedBits.from_bits(local),
            packed_transient,
        )
        assert np.array_equal(packed_merged.to_bits(), ref_merged)


class TestPackedMergeUnbiasedness:
    @pytest.mark.parametrize("weights", [(1, 1), (3, 1), (5, 3)])
    def test_merge_probability_invariant(self, weights):
        """E[merged] = (a p + b q) / (a + b) holds on the packed path."""
        received_weight, local_weight = weights
        size = 200_000
        received_prob, local_prob = 0.7, 0.4
        rng = np.random.default_rng(123)
        received = PackedBits.from_bits(rng.random(size) < received_prob)
        local_bits = (rng.random(size) < local_prob).astype(np.uint8)
        transient = transient_vector_packed(
            PackedBits.from_bits(local_bits), received_weight, local_weight, rng
        )
        merged = merge_sign_bits_packed(
            received, PackedBits.from_bits(local_bits), transient
        )
        expected = expected_merge_probability(
            received_prob, local_prob, received_weight, local_weight
        )
        observed = merged.popcount() / size
        assert observed == pytest.approx(float(expected), abs=0.01)
