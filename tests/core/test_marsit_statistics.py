"""Distributional properties of Marsit's one-bit estimate."""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer


class TestOneBitDistribution:
    def test_bit_probability_matches_worker_fraction(self):
        # Construct 5 workers whose signs at coordinate j are +1 for exactly
        # j of them: P(consensus bit = 1) must be j/5.
        m, trials = 5, 3000
        vectors = []
        for worker in range(m):
            # coordinate j is positive for workers < j
            vector = np.array(
                [1.0 if worker < j else -1.0 for j in range(m + 1)]
            )
            vectors.append(vector)
        counts = np.zeros(m + 1)
        for trial in range(trials):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=1.0, seed=trial), m, m + 1
            )
            report = sync.synchronize(
                Cluster(ring_topology(m)), [v.copy() for v in vectors], 1
            )
            counts += report.global_updates[0] > 0
        empirical = counts / trials
        expected = np.arange(m + 1) / m
        assert np.abs(empirical - expected).max() < 4.0 / np.sqrt(trials)

    def test_variance_matches_bernoulli(self):
        # Var(update_j) = (2 eta)^2 p_j (1 - p_j) for the one-bit sample.
        m, d, trials, eta = 4, 400, 800, 0.5
        rng = np.random.default_rng(0)
        vectors = [rng.standard_normal(d) for _ in range(m)]
        fractions = np.mean([(v >= 0) for v in vectors], axis=0)
        samples = np.empty((trials, d))
        for trial in range(trials):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=eta, seed=trial), m, d
            )
            samples[trial] = sync.synchronize(
                Cluster(ring_topology(m)), [v.copy() for v in vectors], 1
            ).global_updates[0]
        empirical_var = samples.var(axis=0)
        expected_var = (2 * eta) ** 2 * fractions * (1 - fractions)
        # Average over coordinates to beat the per-coordinate noise.
        assert empirical_var.mean() == pytest.approx(
            expected_var.mean(), rel=0.1
        )

    def test_full_precision_round_bitwise_consensus(self, rng):
        m, d = 4, 64
        sync = MarsitSynchronizer(
            MarsitConfig(global_lr=0.1, full_precision_every=1), m, d
        )
        report = sync.synchronize(
            Cluster(ring_topology(m)),
            [rng.standard_normal(d) for _ in range(m)],
            0,
        )
        for update in report.global_updates[1:]:
            assert np.array_equal(update, report.global_updates[0])

    def test_same_seed_same_bits(self, rng):
        m, d = 3, 128
        vectors = [rng.standard_normal(d) for _ in range(m)]

        def run():
            sync = MarsitSynchronizer(MarsitConfig(global_lr=1.0, seed=42), m, d)
            return sync.synchronize(
                Cluster(ring_topology(m)), [v.copy() for v in vectors], 1
            ).global_updates[0]

        assert np.array_equal(run(), run())

    def test_different_seeds_differ(self, rng):
        m, d = 3, 512
        vectors = [rng.standard_normal(d) for _ in range(m)]

        def run(seed):
            sync = MarsitSynchronizer(MarsitConfig(global_lr=1.0, seed=seed), m, d)
            return sync.synchronize(
                Cluster(ring_topology(m)), [v.copy() for v in vectors], 1
            ).global_updates[0]

        assert not np.array_equal(run(1), run(2))
