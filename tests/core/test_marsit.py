"""Tests for the Marsit synchronizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology, star_topology, torus_topology
from repro.core.marsit import MarsitConfig, MarsitState, MarsitSynchronizer


def ring_cluster(m):
    return Cluster(ring_topology(m))


class TestConfig:
    def test_round_schedule(self):
        config = MarsitConfig(global_lr=0.01, full_precision_every=5)
        assert config.is_full_precision_round(0)
        assert not config.is_full_precision_round(1)
        assert config.is_full_precision_round(5)

    def test_none_means_never(self):
        config = MarsitConfig(global_lr=0.01, full_precision_every=None)
        assert not any(config.is_full_precision_round(t) for t in range(100))

    def test_schedule_multiplier(self):
        config = MarsitConfig(
            global_lr=0.1, global_lr_schedule=lambda t: 0.5 if t >= 10 else 1.0
        )
        assert config.effective_global_lr(0) == pytest.approx(0.1)
        assert config.effective_global_lr(10) == pytest.approx(0.05)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            MarsitConfig(global_lr=0.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MarsitConfig(global_lr=0.1, full_precision_every=0)


class TestOneBitSync:
    def test_consensus_on_ring(self, rng):
        m, d = 4, 100
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), m, d)
        report = sync.synchronize(
            ring_cluster(m), [rng.standard_normal(d) for _ in range(m)], 1
        )
        for update in report.global_updates[1:]:
            assert np.array_equal(update, report.global_updates[0])
        assert not report.full_precision

    def test_update_is_scaled_signs(self, rng):
        m, d = 3, 30
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.05), m, d)
        report = sync.synchronize(
            ring_cluster(m), [rng.standard_normal(d) for _ in range(m)], 1
        )
        assert np.isin(report.global_updates[0] / 0.05, (-1.0, 1.0)).all()

    def test_one_bit_on_wire(self, rng):
        m, d = 4, 8000
        cluster = ring_cluster(m)
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), m, d)
        sync.synchronize(cluster, [rng.standard_normal(d) for _ in range(m)], 1)
        # Ring: 2 (M-1) hops of D/M bits each per worker chain.
        expected_bits = 2 * (m - 1) * m * (d // m)
        assert cluster.total_bytes == pytest.approx(expected_bits / 8, rel=0.02)

    def test_unanimous_signs_survive_exactly(self, rng):
        # When all workers agree on a coordinate's sign, the merge never
        # flips it (the AND path of the operator).
        m, d = 5, 200
        base = np.abs(rng.standard_normal(d)) + 0.1
        updates = [base * (1.0 + 0.1 * rng.random(d)) for _ in range(m)]
        sync = MarsitSynchronizer(MarsitConfig(global_lr=1.0), m, d)
        report = sync.synchronize(ring_cluster(m), updates, 1)
        assert (report.global_updates[0] == 1.0).all()

    def test_unbiased_mean_sign(self, rng):
        m, d = 3, 1500
        base = [rng.standard_normal(d) for _ in range(m)]
        mean_sign = np.mean([np.where(b >= 0, 1.0, -1.0) for b in base], axis=0)
        acc = np.zeros(d)
        trials = 150
        for trial in range(trials):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=1.0, seed=trial), m, d
            )
            report = sync.synchronize(
                ring_cluster(m), [b.copy() for b in base], 1
            )
            acc += report.global_updates[0]
        error = np.abs(acc / trials - mean_sign).mean()
        assert error < 4.0 / np.sqrt(trials)

    def test_compensation_identity(self, rng):
        # Line 10: c_{t+1} = (update + c_t) - g_t, exactly.
        m, d = 3, 50
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), m, d)
        updates = [rng.standard_normal(d) for _ in range(m)]
        old_comp = [c.copy() for c in sync.state.compensation]
        report = sync.synchronize(ring_cluster(m), updates, 1)
        for w in range(m):
            expected = updates[w] + old_comp[w] - report.global_updates[w]
            assert np.allclose(sync.state.compensation[w], expected, atol=1e-12)

    def test_torus_consensus_and_one_bit(self, rng):
        d = 1024
        cluster = Cluster(torus_topology(2, 3))
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), 6, d)
        report = sync.synchronize(
            cluster, [rng.standard_normal(d) for _ in range(6)], 1
        )
        for update in report.global_updates[1:]:
            assert np.array_equal(update, report.global_updates[0])
        # Same volume as a flat ring at 1 bit/elem (allreduce-optimal).
        assert cluster.total_bytes < 2 * 6 * d / 8

    def test_torus_unbiased(self, rng):
        d = 600
        base = [rng.standard_normal(d) for _ in range(4)]
        mean_sign = np.mean([np.where(b >= 0, 1.0, -1.0) for b in base], axis=0)
        acc = np.zeros(d)
        trials = 150
        for trial in range(trials):
            sync = MarsitSynchronizer(
                MarsitConfig(global_lr=1.0, seed=trial), 4, d
            )
            cluster = Cluster(torus_topology(2, 2))
            acc += sync.synchronize(cluster, [b.copy() for b in base], 1).global_updates[0]
        assert np.abs(acc / trials - mean_sign).mean() < 4.0 / np.sqrt(trials)

    def test_rejects_unsupported_topology(self, rng):
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), 3, 10)
        with pytest.raises(ValueError):
            sync.synchronize(
                Cluster(star_topology(3)), [rng.standard_normal(10)] * 3, 1
            )

    def test_single_worker_signs_local(self, rng):
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.5), 1, 6)
        vector = np.array([1.0, -2.0, 0.0, 3.0, -0.1, 5.0])
        report = sync.synchronize(ring_cluster(1), [vector], 1)
        assert np.array_equal(
            report.global_updates[0], 0.5 * np.array([1, -1, 1, 1, -1, 1.0])
        )

    def test_compression_time_charged(self, rng):
        m, d = 4, 4000
        cluster = ring_cluster(m)
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), m, d)
        sync.synchronize(cluster, [rng.standard_normal(d) for _ in range(m)], 1)
        assert cluster.timeline.seconds[Phase.COMPRESSION] > 0


class TestFullPrecisionSync:
    def test_round_zero_is_full_precision(self, rng):
        m, d = 3, 40
        sync = MarsitSynchronizer(
            MarsitConfig(global_lr=0.01, full_precision_every=10), m, d
        )
        updates = [rng.standard_normal(d) for _ in range(m)]
        report = sync.synchronize(ring_cluster(m), updates, 0)
        assert report.full_precision
        assert report.bits_per_element == 32.0
        assert np.allclose(
            report.global_updates[0], np.mean(updates, axis=0), atol=1e-5
        )

    def test_compensation_reset(self, rng):
        m, d = 3, 20
        sync = MarsitSynchronizer(
            MarsitConfig(global_lr=0.01, full_precision_every=2), m, d
        )
        updates = [rng.standard_normal(d) for _ in range(m)]
        sync.synchronize(ring_cluster(m), updates, 1)  # one-bit: c != 0
        assert any(np.abs(c).max() > 0 for c in sync.state.compensation)
        sync.synchronize(ring_cluster(m), updates, 2)  # full precision
        for c in sync.state.compensation:
            assert np.allclose(c, 0.0)

    def test_full_precision_includes_compensation(self, rng):
        m, d = 2, 10
        sync = MarsitSynchronizer(
            MarsitConfig(global_lr=0.01, full_precision_every=2), m, d
        )
        updates1 = [rng.standard_normal(d) for _ in range(m)]
        sync.synchronize(ring_cluster(m), updates1, 1)
        comp = [c.copy() for c in sync.state.compensation]
        updates2 = [rng.standard_normal(d) for _ in range(m)]
        report = sync.synchronize(ring_cluster(m), updates2, 2)
        expected = np.mean([updates2[w] + comp[w] for w in range(m)], axis=0)
        assert np.allclose(report.global_updates[0], expected, atol=1e-5)


class TestValidation:
    def test_dimension_mismatch(self, rng):
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), 2, 10)
        with pytest.raises(ValueError):
            sync.synchronize(ring_cluster(2), [rng.standard_normal(9)] * 2, 1)

    def test_worker_count_mismatch(self, rng):
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.01), 2, 10)
        with pytest.raises(ValueError):
            sync.synchronize(ring_cluster(3), [rng.standard_normal(10)] * 3, 1)

    def test_state_zeros(self):
        state = MarsitState.zeros(3, 7)
        assert len(state.compensation) == 3
        assert all(c.shape == (7,) for c in state.compensation)
