"""Property-based tests (hypothesis) on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allreduce.ring import ring_allreduce_mean
from repro.allreduce.torus import torus_allreduce_sum
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology, torus_topology
from repro.compression.ef import EFSignCompressor
from repro.compression.qsgd import QSGDCompressor
from repro.compression.ssdm import SSDMCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.topk import TopKCompressor
from repro.core.marsit import MarsitConfig, MarsitSynchronizer


finite_vectors = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
    max_size=50,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestCompressorProperties:
    @given(finite_vectors, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_ssdm_decode_dimension_and_sign_structure(self, vector, seed):
        rng = np.random.default_rng(seed)
        payload = SSDMCompressor().compress(vector, rng=rng)
        decoded = payload.decode()
        assert decoded.shape == vector.shape
        norm = np.linalg.norm(vector)
        assert np.allclose(np.abs(decoded), norm)

    @given(finite_vectors, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_qsgd_decode_bounded_by_norm(self, vector, seed):
        rng = np.random.default_rng(seed)
        payload = QSGDCompressor(num_levels=4).compress(vector, rng=rng)
        decoded = payload.decode()
        # Each decoded element is at most (1 + 1/levels) * norm.
        assert np.abs(decoded).max() <= np.linalg.norm(vector) * 1.26 + 1e-9

    @given(finite_vectors, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_terngrad_support_subset(self, vector, seed):
        rng = np.random.default_rng(seed)
        payload = TernGradCompressor().compress(vector, rng=rng)
        decoded = payload.decode()
        # Nonzero entries only where the input is nonzero.
        assert not np.any((decoded != 0) & (vector == 0))

    @given(finite_vectors, st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_topk_preserves_top_magnitudes(self, vector, k):
        payload = TopKCompressor(k=k).compress(vector)
        decoded = payload.decode()
        kept = np.flatnonzero(decoded)
        assert len(kept) == min(k, np.count_nonzero(vector) + (vector == 0).sum()) \
            or len(kept) <= min(k, vector.size)
        if kept.size:
            min_kept = np.abs(vector[kept]).min()
            dropped = np.setdiff1d(np.arange(vector.size), kept)
            if dropped.size:
                assert np.abs(vector[dropped]).max() <= min_kept + 1e-12

    @given(st.lists(finite_vectors, min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_ef_memory_identity_over_sequence(self, vectors):
        dim = vectors[0].size
        vectors = [v[:dim] if v.size >= dim else np.resize(v, dim)
                   for v in vectors]
        compressor = EFSignCompressor()
        total_in = np.zeros(dim)
        total_out = np.zeros(dim)
        for vector in vectors:
            total_in += vector
            total_out += compressor.compress(vector).decode()
        assert np.allclose(total_in - total_out, compressor.memory, atol=1e-9)


class TestCollectiveProperties:
    @given(
        m=st.integers(2, 6),
        d=st.integers(1, 40),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_ring_mean_is_permutation_invariant(self, m, d, seed):
        rng = np.random.default_rng(seed)
        vectors = [rng.standard_normal(d) for _ in range(m)]
        mean_a = ring_allreduce_mean(Cluster(ring_topology(m)), vectors)[0]
        perm = list(reversed(vectors))
        mean_b = ring_allreduce_mean(Cluster(ring_topology(m)), perm)[0]
        assert np.allclose(mean_a, mean_b, atol=1e-5)

    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_torus_matches_numpy(self, rows, cols, seed):
        m = rows * cols
        rng = np.random.default_rng(seed)
        vectors = [rng.standard_normal(12) for _ in range(m)]
        result = torus_allreduce_sum(Cluster(torus_topology(rows, cols)), vectors)
        assert np.allclose(result[0], np.sum(vectors, axis=0), atol=1e-4)


class TestMarsitProperties:
    @given(
        m=st.integers(2, 5),
        d=st.integers(1, 64),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=25, deadline=None)
    def test_one_bit_consensus_and_structure(self, m, d, seed):
        rng = np.random.default_rng(seed)
        sync = MarsitSynchronizer(MarsitConfig(global_lr=0.5, seed=seed), m, d)
        cluster = Cluster(ring_topology(m))
        updates = [rng.standard_normal(d) for _ in range(m)]
        report = sync.synchronize(cluster, updates, round_idx=1)
        first = report.global_updates[0]
        for update in report.global_updates[1:]:
            assert np.array_equal(update, first)
        assert np.isin(first / 0.5, (-1.0, 1.0)).all()
        cluster.assert_drained()

    @given(
        m=st.integers(2, 4),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=20, deadline=None)
    def test_compensation_telescopes(self, m, seed):
        # Over any prefix of rounds: sum(updates_in) + c_0 =
        # sum(g_t applied) + c_now, per worker, exactly.
        d = 24
        rng = np.random.default_rng(seed)
        sync = MarsitSynchronizer(
            MarsitConfig(global_lr=0.1, seed=seed), m, d
        )
        total_in = [np.zeros(d) for _ in range(m)]
        total_applied = [np.zeros(d) for _ in range(m)]
        for round_idx in range(1, 5):
            updates = [rng.standard_normal(d) for _ in range(m)]
            report = sync.synchronize(
                Cluster(ring_topology(m)), updates, round_idx
            )
            for w in range(m):
                total_in[w] += updates[w]
                total_applied[w] += report.global_updates[w]
        for w in range(m):
            assert np.allclose(
                total_in[w] - total_applied[w],
                sync.state.compensation[w],
                atol=1e-10,
            )
