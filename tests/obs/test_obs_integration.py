"""Acceptance tests: tracing a real Marsit round end to end.

The ISSUE acceptance criteria, verbatim: with tracing enabled, a 4-worker
one-bit ring round exports valid Chrome trace JSON whose span tree is
round -> phase -> per-hop steps; span self-times sum to the cluster
timeline's phase totals with *exact* float equality; and the scalar and
batched engines emit identical traffic metrics.
"""

import json

import numpy as np
import pytest

from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology, torus_topology, tree_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.obs import Observability, chrome_trace

WORKERS = 4
DIMENSION = 256


def _trace_round(engine: str, topology=None, **config_kwargs):
    obs = Observability.tracing()
    cluster = Cluster(
        topology if topology is not None else ring_topology(WORKERS),
        obs=obs,
    )
    num = cluster.num_workers
    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=0.01, seed=3, engine=engine, **config_kwargs),
        num,
        DIMENSION,
    )
    rng = np.random.default_rng(11)
    updates = rng.standard_normal((num, DIMENSION))
    sync.synchronize(cluster, updates, round_idx=1)
    return obs, cluster


class TestSpanTree:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_round_phase_hop_hierarchy(self, engine):
        obs, _ = _trace_round(engine)
        tracer = obs.tracer
        assert tracer.open_depth() == 0
        roots = tracer.roots()
        assert [span.name for span in roots] == ["round"]
        root = roots[0]
        assert root.cat == "marsit"
        assert root.args["engine"] == engine
        phases = tracer.children_of(root.index)
        assert [span.name for span in phases] == [
            "reduce-scatter", "all-gather",
        ]
        for phase_span in phases:
            hops = tracer.children_of(phase_span.index)
            # A 4-ring runs M-1 = 3 hops in each of the two phases.
            assert len(hops) == WORKERS - 1
            assert all(span.name == "hop" for span in hops)
            assert all(span.cat == "step" for span in hops)
            # Hops tile their parent: each starts where the previous ended.
            for earlier, later in zip(hops, hops[1:]):
                assert earlier.end_s <= later.start_s

    def test_hop_spans_carry_wire_args(self):
        obs, cluster = _trace_round("batched")
        hops = [span for span in obs.tracer.spans if span.name == "hop"]
        assert sum(span.args["bytes"] for span in hops) == cluster.total_bytes
        assert all(span.args["links"] == WORKERS for span in hops)
        assert all(span.args["tag"] for span in hops)


class TestExactTimeEquality:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_tracer_clock_equals_timeline_total(self, engine):
        obs, cluster = _trace_round(engine)
        assert obs.tracer.now == cluster.timeline.total

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_phase_totals_exactly_equal(self, engine):
        obs, cluster = _trace_round(engine)
        for phase in Phase:
            assert (
                obs.tracer.phase_totals[phase] == cluster.timeline.seconds[phase]
            )

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_span_self_times_sum_to_timeline(self, engine):
        obs, cluster = _trace_round(engine)
        tracer = obs.tracer
        for phase in Phase:
            attributed = sum(
                span.phase_self_s.get(phase.value, 0.0)
                for span in tracer.spans
            ) + tracer.unattributed.get(phase.value, 0.0)
            # Exact: tracer and timeline accumulate the same floats in the
            # same order, and each charge lands in exactly one span.
            assert attributed == cluster.timeline.seconds[phase]

    def test_root_duration_is_total_time(self):
        obs, cluster = _trace_round("batched")
        root = obs.tracer.roots()[0]
        assert root.start_s == pytest.approx(0.0)
        assert root.end_s == cluster.timeline.total
        hops = [span for span in obs.tracer.spans if span.name == "hop"]
        # Self-times are the raw charged increments: exactly the timeline.
        assert (
            sum(span.phase_self_s["communication"] for span in hops)
            == cluster.timeline.seconds[Phase.COMMUNICATION]
        )
        # Durations are clock differences: equal up to float rounding.
        assert sum(span.duration_s for span in hops) == pytest.approx(
            cluster.timeline.seconds[Phase.COMMUNICATION], rel=1e-12
        )


class TestChromeExport:
    def test_trace_json_is_valid_and_complete(self):
        obs, cluster = _trace_round("batched")
        document = json.loads(
            json.dumps(chrome_trace(obs.tracer, obs.metrics))
        )
        events = document["traceEvents"]
        for event in events:
            assert event["ph"] in {"M", "X", "i"}
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert "round" in names
        assert "reduce-scatter" in names
        assert names.count("hop") == 2 * (WORKERS - 1)
        totals = document["otherData"]["phase_totals_s"]
        assert totals == cluster.timeline.breakdown()


class TestEngineMetricIdentity:
    def _metric_fingerprint(self, obs):
        snapshot = obs.metrics.snapshot()
        wire = {
            name: entry
            for name, entry in snapshot.items()
            if name.startswith(("wire.", "marsit.", "cluster."))
        }
        return json.dumps(wire, sort_keys=True)

    def test_scalar_and_batched_identical_traffic_metrics(self):
        scalar_obs, scalar_cluster = _trace_round("scalar")
        batched_obs, batched_cluster = _trace_round("batched")
        assert self._metric_fingerprint(scalar_obs) == self._metric_fingerprint(
            batched_obs
        )
        assert scalar_cluster.total_bytes == batched_cluster.total_bytes
        assert scalar_cluster.total_messages == batched_cluster.total_messages

    def test_identity_holds_on_torus_and_tree(self):
        for topology_factory in (
            lambda: torus_topology(2, 2),
            lambda: tree_topology(WORKERS, arity=2),
        ):
            fingerprints = []
            for engine in ("scalar", "batched"):
                obs, _ = _trace_round(engine, topology=topology_factory())
                fingerprints.append(self._metric_fingerprint(obs))
            assert fingerprints[0] == fingerprints[1]

    def test_algorithm_metrics_recorded(self):
        obs, _ = _trace_round("batched")
        metrics = obs.metrics
        agreement = metrics.get("marsit.sign_agreement")
        assert agreement is not None
        assert 0.0 <= agreement.value <= 1.0
        assert metrics.get("marsit.comp_norm").value >= 0.0
        draws = metrics.total("marsit.transient_draws")
        merged = metrics.total("marsit.merged_bits")
        assert 0 < draws < merged
        assert metrics.get("marsit.bits_per_element").value == pytest.approx(
            1.0, rel=0.3
        )

    def test_full_precision_round_traced(self):
        obs, cluster = _trace_round(
            "batched", full_precision_every=1
        )
        root = obs.tracer.roots()[0]
        assert root.args["full_precision"] is True
        phases = obs.tracer.children_of(root.index)
        assert [span.name for span in phases] == ["fp-allreduce"]
        assert obs.tracer.now == cluster.timeline.total
