"""Unit tests for the simulated-time span tracer."""

import pytest

from repro.comm.timing import Phase
from repro.obs import NullTracer, Observability, SimTracer
from repro.obs.tracer import NULL_OBS


class TestSimTracer:
    def test_clock_starts_at_zero(self):
        tracer = SimTracer()
        assert tracer.now == 0.0
        assert tracer.spans == []

    def test_advance_moves_clock_and_phase_totals(self):
        tracer = SimTracer()
        tracer.advance(Phase.COMMUNICATION, 0.5)
        tracer.advance(Phase.COMPRESSION, 0.25)
        assert tracer.now == 0.75
        assert tracer.phase_totals[Phase.COMMUNICATION] == 0.5
        assert tracer.phase_totals[Phase.COMPRESSION] == 0.25

    def test_unattributed_charges_outside_spans(self):
        tracer = SimTracer()
        tracer.advance(Phase.COMPUTATION, 1.0)
        assert tracer.unattributed == {"computation": 1.0}

    def test_span_nesting_and_depth(self):
        tracer = SimTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.advance(Phase.COMMUNICATION, 1.0)
        outer, inner = tracer.spans
        assert outer.name == "outer" and outer.depth == 0
        assert inner.name == "inner" and inner.depth == 1
        assert inner.parent == outer.index
        assert outer.parent == -1

    def test_self_time_excludes_children(self):
        tracer = SimTracer()
        with tracer.span("outer"):
            tracer.advance(Phase.COMPRESSION, 0.5)
            with tracer.span("inner"):
                tracer.advance(Phase.COMMUNICATION, 1.0)
        outer, inner = tracer.spans
        assert outer.phase_self_s == {"compression": 0.5}
        assert inner.phase_self_s == {"communication": 1.0}
        # Durations include children; self time does not.
        assert outer.duration_s == 1.5
        assert outer.self_time_s == 0.5
        assert inner.duration_s == 1.0

    def test_record_step_is_a_leaf_of_exact_width(self):
        tracer = SimTracer()
        with tracer.span("phase-span"):
            record = tracer.record_step(
                "hop", Phase.COMMUNICATION, 0.125, tag="rs:0", bytes=100
            )
        assert record.end_s is not None
        assert record.duration_s == 0.125
        assert record.args["tag"] == "rs:0"
        assert record.args["bytes"] == 100
        assert record.parent == 0

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError, match="no span open"):
            SimTracer().end()

    def test_open_span_duration_raises(self):
        tracer = SimTracer()
        tracer.begin("open")
        with pytest.raises(ValueError, match="still open"):
            _ = tracer.spans[0].duration_s

    def test_instant_events(self):
        tracer = SimTracer()
        tracer.advance(Phase.COMPUTATION, 2.0)
        tracer.instant("marker", round=3)
        assert tracer.events == [
            {"name": "marker", "ts_s": 2.0, "args": {"round": 3}}
        ]

    def test_roots_and_children(self):
        tracer = SimTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.roots()] == ["a"]
        assert [s.name for s in tracer.children_of(0)] == ["b", "c"]

    def test_phase_breakdown_names_match_phase_values(self):
        tracer = SimTracer()
        assert set(tracer.phase_breakdown()) == {p.value for p in Phase}


class TestNullTracer:
    def test_all_methods_are_noops(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.begin("x")
        tracer.end()
        tracer.advance(Phase.COMMUNICATION, 1.0)
        tracer.record_step("hop", Phase.COMMUNICATION, 1.0)
        tracer.instant("marker")
        with tracer.span("y"):
            pass

    def test_span_returns_shared_context(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestObservability:
    def test_default_is_disabled(self):
        obs = Observability()
        assert obs.enabled is False
        assert obs.metrics is None

    def test_null_obs_is_disabled_singleton(self):
        assert NULL_OBS.enabled is False

    def test_tracing_enables_both(self):
        obs = Observability.tracing()
        assert obs.enabled is True
        assert obs.tracer.enabled is True
        assert obs.metrics is not None

    def test_metrics_only(self):
        obs = Observability.metrics_only()
        assert obs.enabled is True
        assert obs.tracer.enabled is False
        assert obs.metrics is not None

    def test_disabled_classmethod(self):
        assert Observability.disabled().enabled is False
