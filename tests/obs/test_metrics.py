"""Unit tests for the metrics registry."""

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_defaults_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("wire.link_bytes", link="0->1").inc(10)
        registry.counter("wire.link_bytes", link="1->2").inc(20)
        assert registry.total("wire.link_bytes") == 30
        assert registry.total("missing") == 0.0


class TestGauge:
    def test_set_keeps_series(self):
        gauge = MetricsRegistry().gauge("depth")
        assert math.isnan(gauge.value)
        gauge.set(2.0)
        gauge.set(4.0)
        assert gauge.value == 4.0
        assert gauge.series == [2.0, 4.0]
        assert gauge.mean() == 3.0

    def test_empty_mean_is_nan(self):
        assert math.isnan(MetricsRegistry().gauge("depth").mean())


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        histogram = MetricsRegistry().histogram(
            "latency", bounds=(1.0, 10.0)
        )
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == 55.5
        assert histogram.min == 0.5
        assert histogram.max == 50.0
        assert histogram.mean() == 18.5

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricsRegistry().histogram("bad", bounds=(10.0, 1.0))

    def test_default_bounds_cover_link_latency(self):
        histogram = MetricsRegistry().histogram("wire.step_makespan_s")
        histogram.observe(25e-6)
        assert histogram.count == 1
        # 25us lands strictly inside the log-spaced default buckets.
        assert histogram.counts[0] == 0
        assert histogram.counts[-1] == 0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", x="1") is not registry.counter("a", x="2")
        assert len(registry) == 3

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        assert registry.gauge("g", a="1", b="2") is registry.gauge(
            "g", b="2", a="1"
        )

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("m")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("m")

    def test_get_returns_none_for_missing(self):
        assert MetricsRegistry().get("nope") is None

    def test_snapshot_qualified_names(self):
        registry = MetricsRegistry()
        registry.counter("plain").inc(1)
        registry.counter("labeled", link="0->1").inc(2)
        registry.gauge("g").set(3.0)
        snap = registry.snapshot()
        assert snap["plain"] == {"kind": "counter", "value": 1.0}
        assert snap['labeled{link=0->1}']["value"] == 2.0
        assert snap["g"]["kind"] == "gauge"
        assert snap["g"]["value"] == 3.0

    def test_iter_yields_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        kinds = sorted(metric.kind for metric in registry)
        assert kinds == ["counter", "gauge"]

    def test_types_exported(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)
