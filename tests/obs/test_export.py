"""Exporter tests: Chrome trace JSON, JSONL, text summaries."""

import json

from repro.comm.timing import Phase, TimeLine
from repro.obs import (
    MetricsRegistry,
    SimTracer,
    chrome_trace,
    jsonl_lines,
    render_result_report,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer() -> SimTracer:
    tracer = SimTracer()
    with tracer.span("round", cat="marsit", round=0):
        with tracer.span("reduce-scatter", cat="phase"):
            tracer.record_step(
                "hop", Phase.COMMUNICATION, 0.25, tag="rs:0", bytes=64
            )
        tracer.instant("consensus", round=0)
    return tracer


class TestChromeTrace:
    def test_structure(self):
        document = chrome_trace(_sample_tracer())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        phases = [event["ph"] for event in document["traceEvents"]]
        assert phases.count("M") == 2
        assert phases.count("X") == 3
        assert phases.count("i") == 1

    def test_timestamps_are_microseconds(self):
        document = chrome_trace(_sample_tracer())
        hop = next(
            e for e in document["traceEvents"] if e.get("name") == "hop"
        )
        assert hop["dur"] == 0.25 * 1e6
        assert hop["args"]["tag"] == "rs:0"
        assert hop["args"]["phase_self_s"] == {"communication": 0.25}

    def test_open_spans_close_at_now(self):
        tracer = SimTracer()
        tracer.begin("open")
        tracer.advance(Phase.COMMUNICATION, 1.0)
        document = chrome_trace(tracer)
        span = next(
            e for e in document["traceEvents"] if e.get("name") == "open"
        )
        assert span["dur"] == 1e6

    def test_metrics_ride_in_other_data(self):
        metrics = MetricsRegistry()
        metrics.counter("wire.steps").inc(3)
        document = chrome_trace(_sample_tracer(), metrics)
        assert document["otherData"]["metrics"]["wire.steps"]["value"] == 3.0
        assert "phase_totals_s" in document["otherData"]

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _sample_tracer())
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 6


class TestJsonl:
    def test_every_line_parses(self):
        metrics = MetricsRegistry()
        metrics.gauge("depth").set(1.0)
        lines = jsonl_lines(_sample_tracer(), metrics)
        parsed = [json.loads(line) for line in lines]
        kinds = [record["type"] for record in parsed]
        assert kinds.count("span") == 3
        assert kinds.count("instant") == 1
        assert kinds.count("metric") == 1

    def test_span_lines_carry_tree_fields(self):
        lines = jsonl_lines(_sample_tracer())
        spans = [
            json.loads(line)
            for line in lines
            if json.loads(line)["type"] == "span"
        ]
        root = next(s for s in spans if s["name"] == "round")
        assert root["parent"] == -1
        hop = next(s for s in spans if s["name"] == "hop")
        assert hop["depth"] == 2

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(str(path), _sample_tracer())
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)


class TestSummaryTable:
    def test_with_timeline_and_metrics(self):
        timeline = TimeLine()
        timeline.add(Phase.COMMUNICATION, 0.9)
        timeline.add(Phase.COMPRESSION, 0.1)
        metrics = MetricsRegistry()
        metrics.counter("wire.steps").inc(4)
        metrics.gauge("depth").set(2.0)
        metrics.histogram("mk").observe(0.5)
        text = summary_table(metrics, timeline)
        assert "communication" in text
        assert "90.0%" in text
        assert "wire.steps" in text
        assert "counter" in text

    def test_empty(self):
        assert summary_table() == "(nothing recorded)"


class TestResultReport:
    def test_renders_totals_and_history(self):
        report = render_result_report(
            {
                "strategy": "marsit",
                "rounds_run": 2,
                "final_accuracy": 0.5,
                "best_accuracy": 0.6,
                "total_sim_time_s": 0.002,
                "total_comm_bytes": 1234,
                "avg_bits_per_element": 1.0,
                "diverged": False,
                "time_breakdown_s": {"communication": 0.002},
                "history": [
                    {
                        "round": 0,
                        "sim_time_s": 0.001,
                        "comm_bytes": 600,
                        "train_loss": 2.0,
                        "test_accuracy": 0.4,
                        "test_loss": 2.1,
                        "bits_per_element": 1.0,
                    }
                ],
            }
        )
        assert "marsit" in report
        assert "1,234" in report
        assert "communication" in report
        assert "Evaluation history" in report

    def test_tolerates_minimal_document(self):
        report = render_result_report({"strategy": "psgd"})
        assert "psgd" in report
