"""CLI tests for the observability flags and the ``report`` subcommand."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestTrainFlags:
    def test_parser_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["--trace", "t.json", "--metrics-jsonl", "m.jsonl", "--save", "r.json"]
        )
        assert args.trace == "t.json"
        assert args.metrics_jsonl == "m.jsonl"
        assert args.save == "r.json"

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args([])
        assert args.trace is None
        assert args.metrics_jsonl is None
        assert args.save is None

    def test_run_writes_trace_metrics_and_result(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        run = tmp_path / "run.json"
        code = main(
            [
                "--strategy", "marsit", "--workers", "2", "--rounds", "3",
                "--trace", str(trace),
                "--metrics-jsonl", str(metrics),
                "--save", str(run),
            ]
        )
        assert code == 0
        document = json.loads(trace.read_text())
        assert any(
            event.get("name") == "round"
            for event in document["traceEvents"]
        )
        for line in metrics.read_text().splitlines():
            assert json.loads(line)["type"] == "metric"
        assert json.loads(run.read_text())["strategy"] == "marsit"


class TestReportSubcommand:
    def test_report_prints_saved_run(self, tmp_path, capsys):
        run = tmp_path / "run.json"
        assert (
            main(
                [
                    "--strategy", "marsit", "--workers", "2", "--rounds", "3",
                    "--save", str(run),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", str(run)]) == 0
        out = capsys.readouterr().out
        assert "strategy        : marsit" in out
        assert "Evaluation history" in out

    def test_report_missing_file_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_invalid_json_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad)]) == 2

    def test_report_requires_a_path(self):
        with pytest.raises(SystemExit):
            main(["report"])
