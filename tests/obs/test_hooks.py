"""Callback / hook API tests: dispatch, probes, and trainer integration."""

import json

import numpy as np

from repro import quick_train
from repro.obs import (
    CallbackList,
    JSONLLogger,
    MetricsRegistry,
    RoundMetricsProbe,
    TrainerCallback,
)


class _Recorder(TrainerCallback):
    def __init__(self):
        self.calls = []

    def on_round_start(self, round_idx, **context):
        self.calls.append(("round_start", round_idx, sorted(context)))

    def on_sync_done(self, round_idx, step, **context):
        self.calls.append(("sync_done", round_idx, sorted(context)))

    def on_eval(self, round_idx, record, **context):
        self.calls.append(("eval", round_idx, sorted(context)))


class TestCallbackList:
    def test_dispatches_in_order(self):
        first, second = _Recorder(), _Recorder()
        callbacks = CallbackList([first, second])
        callbacks.on_round_start(0, cluster=None)
        callbacks.on_sync_done(0, None, cluster=None)
        callbacks.on_eval(0, None, cluster=None)
        assert len(first.calls) == len(second.calls) == 3
        assert first.calls == second.calls

    def test_append_and_len(self):
        callbacks = CallbackList()
        assert len(callbacks) == 0
        callbacks.append(_Recorder())
        assert len(callbacks) == 1
        assert list(callbacks)

    def test_base_hooks_are_noops(self):
        callback = TrainerCallback()
        callback.on_round_start(0)
        callback.on_sync_done(0, None)
        callback.on_eval(0, None)


class TestTrainerIntegration:
    def test_hooks_fire_every_round(self):
        recorder = _Recorder()
        result = quick_train(
            strategy="marsit", num_workers=2, rounds=4, callbacks=[recorder]
        )
        starts = [c for c in recorder.calls if c[0] == "round_start"]
        syncs = [c for c in recorder.calls if c[0] == "sync_done"]
        evals = [c for c in recorder.calls if c[0] == "eval"]
        assert [c[1] for c in starts] == [0, 1, 2, 3]
        assert [c[1] for c in syncs] == [0, 1, 2, 3]
        assert len(evals) == len(result.history)
        # Context always carries the cluster and the trainer.
        assert starts[0][2] == ["cluster", "trainer"]

    def test_round_metrics_probe_records_phase_deltas(self):
        metrics = MetricsRegistry()
        quick_train(
            strategy="marsit",
            num_workers=2,
            rounds=3,
            callbacks=[RoundMetricsProbe(metrics)],
        )
        bits = metrics.get("round.bits_per_element")
        assert bits is not None and len(bits.series) == 3
        comm = metrics.get("round.phase_s", phase="communication")
        assert comm is not None and all(s > 0 for s in comm.series)
        assert metrics.get("eval.test_accuracy") is not None

    def test_jsonl_logger_saves_parseable_events(self, tmp_path):
        logger = JSONLLogger()
        quick_train(
            strategy="marsit", num_workers=2, rounds=3, callbacks=[logger]
        )
        path = tmp_path / "events.jsonl"
        logger.save(str(path))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        kinds = {record["type"] for record in records}
        assert kinds == {"round_start", "sync_done", "eval"}
        sync = next(r for r in records if r["type"] == "sync_done")
        assert sync["bits_per_element"] == 1.0
        assert sync["total_bytes"] > 0


class TestStrategyCallbacks:
    def test_marsit_strategy_fires_hooks(self):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology
        from repro.train.strategies import MarsitStrategy

        recorder = _Recorder()
        strategy = MarsitStrategy(
            local_lr=0.05,
            global_lr=0.01,
            num_workers=2,
            dimension=32,
            callbacks=[recorder],
        )
        cluster = Cluster(ring_topology(2))
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal(32) for _ in range(2)]
        strategy.step(cluster, grads, 0)
        assert [c[0] for c in recorder.calls] == ["round_start", "sync_done"]
        assert recorder.calls[0][2] == ["cluster", "strategy"]
