"""Chaos suite: randomized seeded fault plans against the whole stack.

Three invariants, each across every one-bit topology and both executors:

1. **Determinism** — a seeded :class:`FaultPlan` replays exactly: same
   outputs, same wire counters, same timeline, same ``faults.*`` counters.
2. **Cross-engine identity** — the scalar (per-message) and lane-stacked
   (bulk-exchange) engines see byte-identical faults under one seed, even
   though they interleave their fault queries completely differently.  This
   is the content-keyed-RNG contract of :mod:`repro.faults.inject`.
3. **Graceful degradation** — terminal losses abort cleanly and leave a
   drained cluster; retry-mode losses at realistic rates (≤5%) cost time and
   bytes but not accuracy; a fail-stop crash degrades the topology and the
   run completes on the survivors with an early full-precision resync.

Marked ``slow`` alongside the benchmark suites; deselect with
``-m 'not slow'``.
"""

import numpy as np
import pytest

from repro import quick_train
from repro.allreduce import get_topology, one_bit_topology_names
from repro.comm.cluster import Cluster
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.faults import (
    BitFlip,
    FaultInjector,
    FaultPlan,
    LinkJitter,
    MessageDrop,
    QuorumLostError,
    Straggler,
    WorkerCrash,
)
from repro.train.strategies import MarsitStrategy

pytestmark = pytest.mark.slow

ROUNDS = 3

# name -> (build_kwargs, num_workers, dimension, config_overrides)
CASES = {
    "ring": ({}, 6, 257, {}),
    "ring-segmented": ({}, 6, 500, {"segment_elems": 64}),
    "torus": ({"rows": 2, "cols": 3}, 6, 101, {}),
    "tree": ({"arity": 2}, 7, 128, {}),
    "halving_doubling": ({}, 8, 96, {}),
}
TOPOLOGY_OF = {
    "ring": "ring",
    "ring-segmented": "ring",
    "torus": "torus",
    "tree": "tree",
    "halving_doubling": "halving_doubling",
}


def _chaos_plan(seed: int) -> FaultPlan:
    """A randomized composite plan: every fault type, parameters from seed."""
    rng = np.random.default_rng(seed)
    return FaultPlan(
        seed=seed,
        events=(
            LinkJitter(sigma=float(rng.uniform(0.05, 0.3))),
            Straggler(
                worker=int(rng.integers(0, 6)),
                factor=float(rng.uniform(1.2, 2.5)),
            ),
            MessageDrop(prob=float(rng.uniform(0.01, 0.05))),
            BitFlip(prob=float(rng.uniform(0.002, 0.01))),
        ),
        max_attempts=3,
    )


def _run(case_name, engine, plan, rounds=ROUNDS, extra_events=()):
    build_kwargs, num_workers, dimension, overrides = CASES[case_name]
    name = TOPOLOGY_OF[case_name]
    topology = get_topology(name).build(num_workers, **build_kwargs)
    cluster = Cluster(topology)
    if extra_events:
        plan = FaultPlan(
            seed=plan.seed,
            events=plan.events + tuple(extra_events),
            max_attempts=plan.max_attempts,
        )
    injector = FaultInjector(plan)
    cluster.attach_faults(injector)
    sync = MarsitSynchronizer(
        MarsitConfig(
            global_lr=0.25,
            seed=42,
            engine=engine,
            full_precision_every=2,
            **overrides,
        ),
        num_workers,
        dimension,
    )
    rng = np.random.default_rng(9)
    outputs = []
    reports = []
    for round_idx in range(1, rounds + 1):
        updates = [rng.standard_normal(dimension) for _ in range(num_workers)]
        report = sync.synchronize(cluster, updates, round_idx)
        outputs.append(np.stack(report.global_updates))
        reports.append(report)
    return cluster, sync, outputs, reports, injector


def test_every_one_bit_topology_is_covered():
    assert set(TOPOLOGY_OF.values()) == set(one_bit_topology_names())


@pytest.mark.parametrize("case_name", sorted(CASES))
@pytest.mark.parametrize("plan_seed", [101, 202])
def test_engines_identical_under_faults(case_name, plan_seed):
    plan = _chaos_plan(plan_seed)
    s_cluster, s_sync, s_out, s_rep, s_inj = _run(case_name, "scalar", plan)
    b_cluster, b_sync, b_out, b_rep, b_inj = _run(case_name, "batched", plan)
    for reference, candidate in zip(s_out, b_out):
        assert np.array_equal(reference, candidate)
    assert np.array_equal(
        s_sync.state.compensation, b_sync.state.compensation
    )
    assert b_cluster.total_bytes == s_cluster.total_bytes
    assert b_cluster.total_messages == s_cluster.total_messages
    for key, link in s_cluster.links.items():
        assert b_cluster.links[key].bytes_sent == link.bytes_sent
        assert b_cluster.links[key].messages_sent == link.messages_sent
    assert b_cluster.timeline.seconds == s_cluster.timeline.seconds
    # Both engines must have experienced the *same* faults, not merely
    # equivalent ones.
    assert b_inj.counters == s_inj.counters
    assert s_inj.counters.get("drops", 0) + s_inj.counters.get(
        "flipped_bits", 0
    ) > 0, "chaos plan fired no faults; the test is vacuous"
    s_cluster.assert_drained()
    b_cluster.assert_drained()


@pytest.mark.parametrize("engine", ["scalar", "batched"])
def test_seeded_plans_replay_exactly(engine):
    plan = _chaos_plan(77)
    first = _run("ring", engine, plan)
    second = _run("ring", engine, plan)
    for reference, candidate in zip(first[2], second[2]):
        assert np.array_equal(reference, candidate)
    assert first[0].timeline.seconds == second[0].timeline.seconds
    assert first[4].counters == second[4].counters
    # A different seed realizes a different failure history.
    other = _run("ring", engine, _chaos_plan(78))
    assert other[4].counters != first[4].counters


def test_terminal_loss_aborts_cleanly_and_the_next_round_recovers():
    # mode="timeout" is the scalar-engine diagnostic: the receiver times out
    # (LookupError), the caller voids the round with abort_step +
    # discard_pending, and the cluster is spotless for the next round.
    plan = FaultPlan(
        seed=4,
        events=(
            MessageDrop(
                prob=1.0, links=((0, 1),), mode="timeout", last_round=1
            ),
        ),
    )
    build_kwargs, num_workers, dimension, _ = CASES["ring"]
    topology = get_topology("ring").build(num_workers, **build_kwargs)
    cluster = Cluster(topology)
    cluster.attach_faults(FaultInjector(plan))
    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=0.25, seed=1, engine="scalar"),
        num_workers,
        dimension,
    )
    rng = np.random.default_rng(0)
    updates = [rng.standard_normal(dimension) for _ in range(num_workers)]
    with pytest.raises(LookupError):
        sync.synchronize(cluster, updates, 1)
    aborted = cluster.abort_step()
    assert aborted, "the failed hop left no step bytes to void"
    assert cluster.discard_pending() > 0
    cluster.assert_drained()
    charged = cluster.timeline.total
    # Round 2 falls outside the drop window and completes consensus.
    report = sync.synchronize(cluster, updates, 2)
    assert len(report.global_updates) == num_workers
    for update in report.global_updates[1:]:
        assert np.array_equal(update, report.global_updates[0])
    assert cluster.timeline.total > charged
    cluster.assert_drained()


@pytest.mark.parametrize("case_name", ["ring", "torus", "tree"])
def test_crash_recovery_completes_on_survivors(case_name):
    crash = WorkerCrash(worker=2, round_idx=2)
    results = {}
    for engine in ("scalar", "batched"):
        cluster, sync, outputs, reports, injector = _run(
            case_name,
            engine,
            FaultPlan(seed=1),
            rounds=4,
            extra_events=(crash,),
        )
        _, num_workers, _, _ = CASES[case_name]
        # The crash round recovers: degraded topology, forced FP resync.
        assert [r.recovered for r in reports] == [False, True, False, False]
        assert reports[1].full_precision
        assert cluster.num_workers == num_workers - 1
        assert sync.active_workers == [
            w for w in range(num_workers) if w != 2
        ]
        assert injector.counters["crashes"] == 1
        assert injector.counters["recoveries"] == 1
        assert injector.counters["forced_resyncs"] == 1
        # Post-crash rounds still reach consensus across *all* M report
        # entries (dead entries carry the consensus update).
        for report in reports[1:]:
            for update in report.global_updates[1:]:
                assert np.array_equal(update, report.global_updates[0])
        # The degraded plan advertises its lineage.
        assert reports[2].plan_digest != reports[0].plan_digest
        cluster.assert_drained()
        results[engine] = (outputs, injector.counters, cluster.timeline.seconds)
    scalar, batched = results["scalar"], results["batched"]
    for reference, candidate in zip(scalar[0], batched[0]):
        assert np.array_equal(reference, candidate)
    assert scalar[1] == batched[1]
    assert scalar[2] == batched[2]


def test_quorum_loss_stops_the_run():
    plan = FaultPlan(
        seed=0,
        events=(
            WorkerCrash(worker=1, round_idx=1),
            WorkerCrash(worker=2, round_idx=1),
        ),
        quorum=0.75,
    )
    build_kwargs, num_workers, dimension, _ = CASES["ring"]
    cluster = Cluster(get_topology("ring").build(num_workers, **build_kwargs))
    cluster.attach_faults(FaultInjector(plan))
    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=0.25, seed=1), num_workers, dimension
    )
    rng = np.random.default_rng(0)
    updates = [rng.standard_normal(dimension) for _ in range(num_workers)]
    sync.synchronize(cluster, updates, 0)
    with pytest.raises(QuorumLostError, match="quorum"):
        sync.synchronize(cluster, updates, 1)


def test_strategy_step_reports_the_recovery():
    strategy = MarsitStrategy(
        local_lr=0.05, global_lr=0.01, num_workers=6, dimension=64
    )
    cluster = Cluster(get_topology("ring").build(6))
    cluster.attach_faults(
        FaultInjector(FaultPlan(events=(WorkerCrash(worker=4, round_idx=1),)))
    )
    rng = np.random.default_rng(2)
    grads = [rng.standard_normal(64) for _ in range(6)]
    assert not strategy.step(cluster, grads, 0).recovered
    step = strategy.step(cluster, grads, 1)
    assert step.recovered
    assert not strategy.step(cluster, grads, 2).recovered


def test_training_tolerates_realistic_loss_rates():
    # ≤5% retry-mode drops cost retransmissions and waits, never accuracy
    # beyond noise: the transport is reliable, so the math is unchanged —
    # only the simulated clock and wire totals move.
    clean = quick_train(strategy="marsit", num_workers=4, rounds=20)
    lossy_plan = FaultPlan(seed=13, events=(MessageDrop(prob=0.05),))
    lossy = quick_train(
        strategy="marsit", num_workers=4, rounds=20, faults=lossy_plan
    )
    assert not lossy.diverged
    assert lossy.rounds_run == clean.rounds_run
    assert abs(lossy.final_accuracy - clean.final_accuracy) <= 0.15
    assert lossy.total_comm_bytes > clean.total_comm_bytes
    assert lossy.total_sim_time_s > clean.total_sim_time_s
    summary = lossy.fault_summary
    assert summary["counters"]["drops"] == summary["counters"]["retries"] > 0


def test_training_survives_a_crash_end_to_end():
    plan = FaultPlan(seed=3, events=(WorkerCrash(worker=2, round_idx=5),))
    result = quick_train(
        strategy="marsit", num_workers=6, rounds=15, faults=plan
    )
    assert not result.diverged
    assert result.rounds_run == 15
    summary = result.fault_summary
    assert summary["dead_workers"] == [2]
    assert summary["active_workers"] == [0, 1, 3, 4, 5]
    assert summary["counters"] == {
        "crashes": 1, "forced_resyncs": 1, "recoveries": 1,
    }
    assert result.final_accuracy > 0.5
