"""Tests for bound evaluators, deviation measurement, and matching rate."""

import math

import numpy as np
import pytest

from repro.theory.bounds import (
    cascading_deviation_bound,
    marsit_convergence_bound,
    ps_deviation_bound,
    recommended_learning_rates,
)
from repro.theory.deviation import (
    cascading_deviation,
    empirical_deviation,
    ps_compression_deviation,
)
from repro.theory.matching import matching_rate, sign_cosine


class TestBounds:
    def test_ps_bound_formula(self):
        assert ps_deviation_bound(100, 2.0) == 400.0

    def test_cascading_bound_explodes_with_m(self):
        values = [cascading_deviation_bound(64, m, 1.0) for m in (1, 2, 3, 4)]
        assert values == sorted(values)
        assert values[3] / values[1] > 1e3

    def test_cascading_bound_overflow_is_inf(self):
        assert cascading_deviation_bound(10**6, 100, 1.0) == math.inf

    def test_cascading_equals_ps_at_m1_up_to_factor_2(self):
        # At M=1 the theorem bounds coincide modulo the 2^M constant.
        assert cascading_deviation_bound(50, 1, 3.0) == pytest.approx(
            2 * ps_deviation_bound(50, 3.0)
        )

    def test_recommended_rates(self):
        rates = recommended_learning_rates(num_workers=4, rounds=100, dimension=25)
        assert rates.local_lr == pytest.approx(0.2)
        assert rates.global_lr == pytest.approx(0.02)

    def test_marsit_bound_linear_speedup(self):
        # Quadrupling M halves the first term (K = 0 kills the second).
        b1 = marsit_convergence_bound(1, 10_000, 0)
        b4 = marsit_convergence_bound(4, 10_000, 0)
        assert b4 == pytest.approx(b1 / 2)

    def test_marsit_bound_k_penalty(self):
        small_k = marsit_convergence_bound(4, 10_000, 5)
        large_k = marsit_convergence_bound(4, 10_000, 50)
        assert large_k > small_k

    def test_bounds_reject_bad_args(self):
        with pytest.raises(ValueError):
            ps_deviation_bound(0, 1.0)
        with pytest.raises(ValueError):
            cascading_deviation_bound(10, 0, 1.0)
        with pytest.raises(ValueError):
            recommended_learning_rates(0, 1, 1)


class TestDeviation:
    def test_empirical_deviation(self):
        assert empirical_deviation(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == 5.0

    def test_ps_deviation_within_theorem_bound(self, rng):
        d, m, trials = 32, 4, 50
        gradients = [rng.standard_normal(d) for _ in range(m)]
        g_bound = max(np.linalg.norm(g) for g in gradients)
        bound = ps_deviation_bound(d, g_bound)
        values = [
            ps_compression_deviation(gradients, np.random.default_rng(t))
            for t in range(trials)
        ]
        assert max(values) <= bound

    def test_cascading_deviation_grows_with_m(self, rng):
        d = 32
        base = [rng.standard_normal(d) for _ in range(8)]

        def mean_dev(m):
            return np.mean([
                cascading_deviation(base[:m], np.random.default_rng(t))
                for t in range(30)
            ])

        assert mean_dev(8) > mean_dev(2) > 0

    def test_cascading_worse_than_ps(self, rng):
        d, m = 64, 6
        gradients = [rng.standard_normal(d) for _ in range(m)]
        ps_values = [
            ps_compression_deviation(gradients, np.random.default_rng(t))
            for t in range(20)
        ]
        cascade_values = [
            cascading_deviation(gradients, np.random.default_rng(t))
            for t in range(20)
        ]
        assert np.mean(cascade_values) > np.mean(ps_values)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            cascading_deviation([], rng)


class TestMatching:
    def test_perfect_match(self, rng):
        vector = rng.standard_normal(50)
        assert matching_rate(vector, vector) == 1.0

    def test_opposite_signs(self, rng):
        vector = rng.standard_normal(50) + 10.0
        assert matching_rate(-vector, vector) == 0.0

    def test_random_near_half(self, rng):
        a = rng.standard_normal(20_000)
        b = rng.standard_normal(20_000)
        assert matching_rate(a, b) == pytest.approx(0.5, abs=0.02)

    def test_zero_convention(self):
        assert matching_rate(np.array([0.0]), np.array([1.0])) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            matching_rate(np.array([]), np.array([]))

    def test_sign_cosine_bounds(self, rng):
        a = rng.standard_normal(30)
        assert sign_cosine(a, a) == pytest.approx(1.0)
        assert sign_cosine(a, -a) == pytest.approx(-1.0)
        assert sign_cosine(a, np.zeros(30)) == 0.0
