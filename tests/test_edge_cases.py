"""Edge-case tests across modules: initializers, empties, strategy options."""

import numpy as np
import pytest

from repro.nn.init import kaiming_uniform, xavier_uniform


class TestInitializers:
    def test_kaiming_bound(self, rng):
        weights = kaiming_uniform(rng, (1000,), fan_in=25)
        bound = np.sqrt(6.0 / 25)
        assert np.abs(weights).max() <= bound
        assert np.abs(weights).max() > 0.8 * bound  # actually fills the range

    def test_kaiming_rejects_bad_fan(self, rng):
        with pytest.raises(ValueError):
            kaiming_uniform(rng, (4,), fan_in=0)

    def test_xavier_bound(self, rng):
        weights = xavier_uniform(rng, (30, 20))
        bound = np.sqrt(6.0 / 50)
        assert np.abs(weights).max() <= bound

    def test_xavier_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            xavier_uniform(rng, (5,))


class TestEmptyAndDegenerate:
    def test_module_without_parameters(self):
        from repro.nn.layers import Flatten

        layer = Flatten()
        assert layer.num_parameters() == 0
        assert layer.flatten_grads().size == 0
        assert layer.flatten_params().size == 0

    def test_meanabs_zero_vector(self):
        from repro.compression.signsgd import MeanAbsSignCompressor

        payload = MeanAbsSignCompressor().compress(np.zeros(8))
        assert np.allclose(payload.decode(), 0.0)

    def test_topk_all_zero_vector(self):
        from repro.compression.topk import TopKCompressor

        payload = TopKCompressor(k=3).compress(np.zeros(10))
        assert np.allclose(payload.decode(), 0.0)

    def test_marsit_dimension_one(self, rng):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology
        from repro.core.marsit import MarsitConfig, MarsitSynchronizer

        sync = MarsitSynchronizer(MarsitConfig(global_lr=1.0), 3, 1)
        report = sync.synchronize(
            Cluster(ring_topology(3)),
            [np.array([1.0]), np.array([-1.0]), np.array([1.0])],
            1,
        )
        assert report.global_updates[0].shape == (1,)

    def test_ring_allreduce_dimension_zero(self):
        from repro.allreduce.ring import ring_allreduce_sum
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology

        results = ring_allreduce_sum(
            Cluster(ring_topology(3)), [np.zeros(0) for _ in range(3)]
        )
        assert results[0].size == 0


class TestMarsitStrategyOptions:
    def test_segment_elems_passthrough(self, rng):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology
        from repro.train.strategies import MarsitStrategy

        strategy = MarsitStrategy(
            local_lr=0.1, global_lr=0.01, num_workers=3, dimension=90,
            segment_elems=16,
        )
        result = strategy.step(
            Cluster(ring_topology(3)),
            [rng.standard_normal(90) for _ in range(3)], 1,
        )
        assert np.isin(result.updates[0] / 0.01, (-1.0, 1.0)).all()

    def test_global_lr_schedule_applied(self, rng):
        from repro.comm.cluster import Cluster
        from repro.comm.topology import ring_topology
        from repro.train.strategies import MarsitStrategy

        strategy = MarsitStrategy(
            local_lr=0.1, global_lr=1.0, num_workers=2, dimension=10,
            global_lr_schedule=lambda t: 0.5,
        )
        result = strategy.step(
            Cluster(ring_topology(2)),
            [rng.standard_normal(10) for _ in range(2)], 1,
        )
        assert np.isin(result.updates[0], (-0.5, 0.5)).all()


class TestQuickTrainExtras:
    def test_cli_module_importable(self):
        import repro.__main__ as cli

        parser = cli.build_parser()
        args = parser.parse_args(["--workers", "3"])
        assert args.workers == 3

    def test_version_exposed(self):
        import repro

        assert repro.__version__
