"""Benchmark-suite configuration.

Every bench regenerates one paper table/figure; experiments run exactly once
via ``benchmark.pedantic(..., rounds=1, iterations=1)`` and print/save their
report.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer, return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
