"""Table 2: Top-1 accuracy of six schemes across the five paper workloads.

Paper's Table 2 (32-node cluster):

| model/dataset        | PSGD  | signSGD | EF-signSGD | SSDM  | Marsit-100 | Marsit |
| AlexNet/CIFAR-10     | 82.38 | 80.74   | 82.25      | 81.89 | 82.30      | 81.58 |
| ResNet-20/CIFAR-10   | 93.42 | 88.92   | 91.85      | 89.18 | 92.18      | 90.15 |
| ResNet-18/ImageNet   | 69.18 | 67.17   | 68.14      | 68.10 | 68.96      | 68.40 |
| ResNet-50/ImageNet   | 74.87 | 72.74   | 73.89      | 73.35 | 74.35      | 74.10 |
| DistilBERT/IMDb      | 92.16 | 89.12   | 90.57      | 91.41 | 90.13      | 90.26 |

Shapes to hold at simulation scale: PSGD is the (near-)top of every row;
Marsit / Marsit-K land within a few points of PSGD and above (or level
with) the best existing compressed baselines on most rows; one-bit schemes
never catastrophically fail.  Exact per-cell values are substrate-dependent
(synthetic data, mini models) and are *not* asserted.
"""

from repro.bench import WORKLOADS, build_strategy, format_table, save_report, strategy_names
from repro.train import DistributedTrainer, TrainConfig
from benchmarks.conftest import run_once

M = 4
# The alexnet row doubles as Table 1's workload; all five paper rows run.
ROWS = (
    "cifar10-alexnet",
    "cifar10-resnet20",
    "imagenet-resnet18",
    "imagenet-resnet50",
    "imdb-distilbert",
)


def _run_experiment():
    table = {}
    rows = []
    for key in ROWS:
        spec = WORKLOADS[key]
        train_set, test_set = spec.make_data()
        row = {}
        for strategy_name in strategy_names():
            strategy = build_strategy(strategy_name, spec, M, train_set)
            config = TrainConfig(
                num_workers=M,
                rounds=spec.rounds,
                batch_size=spec.batch_size,
                topology="ring",
                eval_every=max(1, spec.rounds // 10),
                seed=0,
            )
            result = DistributedTrainer(
                spec.model_factory, train_set, test_set, strategy, config
            ).run()
            row[strategy_name] = result
        table[key] = row
        rows.append(
            [spec.title]
            + [f"{100 * row[name].best_accuracy():.2f}" for name in strategy_names()]
        )
    report = format_table(["model / dataset", *strategy_names()], rows)
    save_report(
        "table2_accuracy",
        f"Table 2 reproduction (M={M}, best test accuracy %)\n" + report,
    )
    return table


def test_table2_accuracy(benchmark):
    table = run_once(benchmark, _run_experiment)

    for key, row in table.items():
        best = {name: result.best_accuracy() for name, result in row.items()}
        psgd = best["psgd"]
        # Everything learns: no scheme collapses to chance.
        chance = 1.0 / WORKLOADS[key].make_data()[0].num_classes
        for name, accuracy in best.items():
            assert accuracy > 1.5 * chance, f"{key}/{name} at chance"
        # PSGD is at (or within noise of) the top of the row.
        assert psgd >= max(best.values()) - 0.05, f"{key}: psgd not near top"
        # Marsit variants stay close to PSGD (the headline claim).
        marsit_best = max(best["marsit"], best["marsit-k"])
        assert marsit_best >= psgd - 0.10, f"{key}: marsit far from psgd"
