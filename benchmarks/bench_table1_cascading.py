"""Table 1: cascading compression vs no compression.

Paper's finding (Table 1, MNIST/AlexNet, best of stepsize grid):

- cascading, M=3: lower accuracy (87.2 +/- 2.31 vs 99.1 +/- 0.13) in more
  rounds — note the paper's cascading variance is ~20x PSGD's;
- cascading, M=8: fails to converge ("divergence"), while non-compressed
  PSGD *improves* with more workers.

Reproduction protocol: the CIFAR-like image workload on AlexNet-mini (the
8-pixel MNIST-like set is too easy at simulation scale for the degradation
to bind), 3 seeds per cell, fixed lr = 0.03 (the paper's CIFAR stepsize),
cascading with the norm-controlled deterministic sign compressor + momentum
(see DESIGN.md section 2 for why the literal stochastic-l2 SSDM cascade
cannot learn at any scale).  Expected shape: PSGD high and tight at both M;
cascading degraded on average and wildly unstable, worse at M=8.
"""

import numpy as np

from repro.bench import format_table, save_report
from repro.compression.signsgd import MeanAbsSignCompressor
from repro.data import cifar10_like, train_test_split
from repro.nn.zoo import alexnet_mini
from repro.train import (
    CascadingSSDMStrategy,
    DistributedTrainer,
    PSGDStrategy,
    TrainConfig,
)
from benchmarks.conftest import run_once

ROUNDS = 120
TARGET_ACCURACY = 0.95
SEEDS = (0, 1, 2)
LR = 0.03


def _factory():
    return alexnet_mini(in_channels=3, image_size=16, num_classes=10, width=8,
                        seed=7)


def _run_cell(method, num_workers, train_set, test_set):
    accuracies, rounds_to, times = [], [], []
    for seed in SEEDS:
        config = TrainConfig(
            num_workers=num_workers, rounds=ROUNDS, batch_size=16,
            topology="ring", eval_every=15, seed=seed,
        )
        if method == "cascading":
            strategy = CascadingSSDMStrategy(
                lr=LR, num_workers=num_workers, seed=seed,
                compressor=MeanAbsSignCompressor(), normalize=False,
                momentum=0.9,
            )
        else:
            strategy = PSGDStrategy(lr=LR, num_workers=num_workers)
        result = DistributedTrainer(
            _factory, train_set, test_set, strategy, config
        ).run()
        accuracies.append(result.best_accuracy())
        reached = result.rounds_to_accuracy(TARGET_ACCURACY)
        rounds_to.append(reached if reached is not None else ROUNDS + 1)
        time_to = result.time_to_accuracy(TARGET_ACCURACY)
        if time_to is not None:
            times.append(time_to)
    return {
        "mean_acc": float(np.mean(accuracies)),
        "std_acc": float(np.std(accuracies)),
        "median_rounds": float(np.median(rounds_to)),
        "mean_time_ms": 1e3 * float(np.mean(times)) if times else float("nan"),
        "converge_rate": float(np.mean([r <= ROUNDS for r in rounds_to])),
    }


def _run_experiment():
    data = cifar10_like(num_samples=1600, size=16, noise=1.0, seed=1)
    train_set, test_set = train_test_split(data, 0.25, seed=1)
    cells = {}
    rows = []
    for method in ("cascading", "no compression"):
        for m in (3, 8):
            cell = _run_cell(method, m, train_set, test_set)
            cells[(method, m)] = cell
            median = cell["median_rounds"]
            rows.append(
                [
                    method,
                    m,
                    f"{median:.0f}" if median <= ROUNDS else f"{ROUNDS}+",
                    f"{100 * cell['mean_acc']:.1f} +/- {100 * cell['std_acc']:.2f}",
                    f"{cell['mean_time_ms']:.1f}"
                    if cell["converge_rate"] > 0.5
                    else "NA (no convergence)",
                ]
            )
    report = format_table(
        ["method", "M", f"rounds to {TARGET_ACCURACY:.0%} (median)",
         "best acc (%)", f"sim time to {TARGET_ACCURACY:.0%} (ms)"],
        rows,
    )
    save_report("table1_cascading", "Table 1 reproduction (3 seeds/cell)\n" + report)
    return cells


def test_table1_cascading_vs_no_compression(benchmark):
    cells = run_once(benchmark, _run_experiment)

    psgd3, psgd8 = cells[("no compression", 3)], cells[("no compression", 8)]
    casc3, casc8 = cells[("cascading", 3)], cells[("cascading", 8)]

    # Non-compressed: high, tight, converges at both scales.
    assert psgd3["mean_acc"] > TARGET_ACCURACY
    assert psgd8["mean_acc"] > TARGET_ACCURACY
    assert psgd8["converge_rate"] == 1.0
    # Cascading: degraded on average and far less stable (Table 1's
    # 2.31-vs-0.13 std signature).
    assert casc3["mean_acc"] < psgd3["mean_acc"]
    assert casc8["mean_acc"] < casc3["mean_acc"]
    assert casc8["mean_acc"] < psgd8["mean_acc"] - 0.05
    assert max(casc3["std_acc"], casc8["std_acc"]) > 3 * psgd3["std_acc"]
