"""Figure 1b: matching rate of each aggregation scheme.

The paper scores schemes by the fraction of coordinates whose aggregated
sign matches the non-compressed aggregation's sign (MNIST/AlexNet, M = 3);
cascading compression is the lowest bar (~56%).  Reproduction: aggregate
real model gradients from the MNIST-like workload under each scheme and
measure :func:`repro.theory.matching.matching_rate` against the exact mean.

Expected ordering: fp32 = 100%; error-feedback and majority-sign schemes
high; Marsit's one-bit consensus in between (it is a one-bit *sample*, so
its per-round matching is stochastic but unbiased); literal cascading SSDM
the lowest, at chance level.
"""

import numpy as np

from repro.allreduce.cascading import cascading_ring_allreduce
from repro.bench import format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.compression.ef import EFSignCompressor
from repro.compression.signsgd import MeanAbsSignCompressor, majority_vote
from repro.compression.ssdm import SSDMCompressor
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.data import mnist_like, shard_iid, train_test_split
from repro.data.sharding import WorkerBatchIterator
from repro.nn.losses import CrossEntropyLoss
from repro.nn.zoo import alexnet_mini
from repro.theory.matching import matching_rate
from benchmarks.conftest import run_once

M = 3
TRIALS = 12


def _worker_gradients(trial):
    data = mnist_like(num_samples=1200, size=8, noise=0.8, seed=0)
    train_set, _ = train_test_split(data, 0.25, seed=1)
    model = alexnet_mini(in_channels=1, image_size=8, num_classes=10, width=4,
                         seed=7)
    loss_fn = CrossEntropyLoss()
    shards = shard_iid(train_set, M, seed=0)
    grads = []
    for worker, shard in enumerate(shards):
        iterator = WorkerBatchIterator(shard, 32, seed=100 * trial + worker)
        x, y = iterator.next_batch()
        model.zero_grad()
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        grads.append(model.flatten_grads())
    return grads


def _scheme_estimates(grads, trial):
    exact = np.mean(grads, axis=0)
    rng = np.random.default_rng(1000 + trial)
    dimension = exact.size

    estimates = {"fp32 (exact)": exact}

    signs = [np.where(g >= 0, 1.0, -1.0) for g in grads]
    estimates["signsgd majority"] = majority_vote(signs)

    ef = [EFSignCompressor() for _ in range(M)]
    estimates["ef-signsgd"] = np.mean(
        [ef[w].compress(grads[w]).decode() for w in range(M)], axis=0
    )

    ssdm = SSDMCompressor()
    estimates["ssdm (PS)"] = np.mean(
        [ssdm.compress(g, rng=rng).decode() for g in grads], axis=0
    )

    cluster = Cluster(ring_topology(M))
    rngs = [np.random.default_rng(10 * trial + i) for i in range(M)]
    estimates["cascading (SSDM)"] = cascading_ring_allreduce(
        cluster, [g.copy() for g in grads], SSDMCompressor(), rngs,
        charge_time=False,
    )[0]

    cluster = Cluster(ring_topology(M))
    rngs = [np.random.default_rng(20 * trial + i) for i in range(M)]
    estimates["cascading (meanabs)"] = cascading_ring_allreduce(
        cluster, [g.copy() for g in grads], MeanAbsSignCompressor(), rngs,
        charge_time=False,
    )[0]

    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=1.0, seed=trial, verify_consensus=False),
        M,
        dimension,
    )
    cluster = Cluster(ring_topology(M))
    estimates["marsit"] = sync.synchronize(
        cluster, [g.copy() for g in grads], round_idx=1
    ).global_updates[0]

    return exact, estimates


def _run_experiment():
    rates = {}
    for trial in range(TRIALS):
        grads = _worker_gradients(trial)
        exact, estimates = _scheme_estimates(grads, trial)
        for name, estimate in estimates.items():
            rates.setdefault(name, []).append(matching_rate(estimate, exact))
    means = {name: float(np.mean(values)) for name, values in rates.items()}
    rows = [
        [name, f"{100 * mean:.1f}"]
        for name, mean in sorted(means.items(), key=lambda kv: -kv[1])
    ]
    report = format_table(["scheme", "matching rate (%)"], rows)
    save_report(
        "fig1b_matching_rate",
        f"Figure 1b reproduction (M={M}, {TRIALS} trials)\n" + report,
    )
    return means


def test_fig1b_matching_rate(benchmark):
    means = run_once(benchmark, _run_experiment)

    assert means["fp32 (exact)"] == 1.0
    # Cascading SSDM is the lowest bar, near chance (paper: ~56%).
    compressed = {k: v for k, v in means.items() if k != "fp32 (exact)"}
    assert min(compressed, key=compressed.get) == "cascading (SSDM)"
    assert means["cascading (SSDM)"] < 0.60
    # Deterministic-sign schemes retain most of the direction.
    assert means["signsgd majority"] > 0.8
    assert means["ef-signsgd"] > 0.8
    # Marsit's one-bit sample beats the cascading anti-pattern.
    assert means["marsit"] > means["cascading (SSDM)"]
    # Even cascading with a norm-controlled compressor degrades vs majority.
    assert means["cascading (meanabs)"] < means["signsgd majority"]
