"""Marsit across all-reduce paradigms (Section 5's extension claim).

"Marsit can be easily extended to other all-reduce paradigms including
segmented-ring all-reduce and tree all-reduce."  This bench synchronizes the
same gradients through all four implemented paradigms and compares

- wire volume (bits per element of the full vector, summed network-wide),
- sequential steps (the latency term), and
- the estimate quality (matching rate vs the exact mean sign),

confirming each paradigm stays one-bit-per-hop and unbiased while trading
volume against latency exactly as the underlying collective does.
"""

import numpy as np
import pytest

from repro.bench import format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology, torus_topology, tree_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.theory.matching import matching_rate
from benchmarks.conftest import run_once

M = 8
DIMENSION = 40_000
TRIALS = 6


def _paradigms():
    return {
        "ring (RAR)": lambda: (Cluster(ring_topology(M)), {}),
        "torus 2x4 (TAR)": lambda: (Cluster(torus_topology(2, 4)), {}),
        "tree (arity 2)": lambda: (Cluster(tree_topology(M, arity=2)), {}),
        "segmented ring": lambda: (
            Cluster(ring_topology(M)), {"segment_elems": 4096}
        ),
    }


def _run_experiment():
    rng = np.random.default_rng(0)
    gradients = [rng.standard_normal(DIMENSION) for _ in range(M)]
    mean_sign = np.mean(
        [np.where(g >= 0, 1.0, -1.0) for g in gradients], axis=0
    )
    rows = []
    data = {}
    for name, build in _paradigms().items():
        rates = []
        bytes_total = steps = 0
        for trial in range(TRIALS):
            cluster, extra = build()
            sync = MarsitSynchronizer(
                MarsitConfig(
                    global_lr=1.0, seed=trial, verify_consensus=False, **extra
                ),
                M,
                DIMENSION,
            )
            report = sync.synchronize(
                cluster, [g.copy() for g in gradients], 1
            )
            rates.append(matching_rate(report.global_updates[0], mean_sign))
            if trial == 0:
                bytes_total = cluster.total_bytes
                steps = round(
                    cluster.timeline.seconds[Phase.COMMUNICATION]
                    / cluster.cost_model.latency_s
                )
        entry = {
            "bits_per_elem": 8.0 * bytes_total / DIMENSION,
            "steps": steps,
            "matching": float(np.mean(rates)),
        }
        data[name] = entry
        rows.append(
            [
                name,
                f"{entry['bits_per_elem']:.2f}",
                entry["steps"],
                f"{100 * entry['matching']:.1f}",
            ]
        )
    report_text = format_table(
        ["paradigm", "network bits/elem", "sequential steps", "matching (%)"],
        rows,
    )
    save_report(
        "marsit_paradigms",
        f"Marsit across paradigms (M={M}, D={DIMENSION:,})\n" + report_text,
    )
    return data


def test_marsit_paradigms(benchmark):
    data = run_once(benchmark, _run_experiment)

    ring = data["ring (RAR)"]
    torus = data["torus 2x4 (TAR)"]
    tree = data["tree (arity 2)"]
    segmented = data["segmented ring"]

    # Every paradigm realizes the same unbiased estimator: for iid random
    # gradients the expected matching is 1/2 + E|mean sign|/2 ~ 0.64 at
    # M = 8, and all four paradigms land on it together.
    matchings = [entry["matching"] for entry in data.values()]
    for name, entry in data.items():
        assert entry["matching"] > 0.60, name
    assert max(matchings) - min(matchings) < 0.02

    # Ring and torus are volume-optimal (~2 (M-1)/M bits/elem per worker,
    # x M workers network-wide = 2 (M-1) bits/elem); segmented matches the
    # ring up to byte padding; the tree trades volume for depth.
    expected_ring = 2.0 * (M - 1)
    assert ring["bits_per_elem"] == pytest.approx(expected_ring, rel=0.05)
    assert torus["bits_per_elem"] == pytest.approx(expected_ring, rel=0.05)
    assert segmented["bits_per_elem"] <= 1.1 * ring["bits_per_elem"]
    assert tree["bits_per_elem"] == pytest.approx(2.0 * (M - 1), rel=0.05)

    # Latency: torus < ring; tree's depth beats the flat ring too;
    # segmented multiplies steps (pipelining is what hides them in reality).
    assert torus["steps"] < ring["steps"]
    assert tree["steps"] < ring["steps"]
    assert segmented["steps"] > ring["steps"]

