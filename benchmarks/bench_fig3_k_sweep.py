"""Figure 3: the accuracy/time/bits trade-off of Marsit's K.

The paper trains CIFAR-10/AlexNet for 400 rounds with
K in {1, 50, 100, 200, inf} and reports (Fig 3b): time to converge, final
accuracy, and average wire bits per element — 32 at K=1 down to 1 at K=inf,
with interior K averaging ``((K-1) * 1 + 32) / K``.

Reproduction: the CIFAR-like AlexNet-mini workload for 200 rounds with
K in {1, 25, 50, 100, inf} (scaled to the shorter simulated run).  Expected
shape: accuracy is highest at K=1 (always full precision) and lowest at
K=inf; per-round communication time falls as K grows; measured average bits
match the closed form.
"""

from repro.bench import (
    WORKLOADS,
    calibrate_global_lr,
    format_table,
    print_series,
    save_report,
)
from repro.train import DistributedTrainer, MarsitStrategy, TrainConfig
from benchmarks.conftest import run_once

ROUNDS = 200
K_VALUES = (1, 25, 50, 100, None)  # None = infinity
M = 4


def _expected_bits(k):
    if k is None:
        return 1.0
    return ((k - 1) * 1.0 + 32.0) / k


def _run_experiment():
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, test_set = spec.make_data()
    sign_step = calibrate_global_lr(
        spec.model_factory, train_set, spec.batch_size, spec.local_lr,
        momentum=0.0,
    )
    results = {}
    curves = {}
    rows = []
    for k in K_VALUES:
        strategy = MarsitStrategy(
            local_lr=spec.local_lr,
            global_lr=2.0 * sign_step,
            num_workers=M,
            dimension=spec.dimension(),
            full_precision_every=k,
            base_optimizer="sgd",
            seed=0,
        )
        config = TrainConfig(
            num_workers=M, rounds=ROUNDS, batch_size=spec.batch_size,
            topology="ring", eval_every=10, seed=0,
        )
        result = DistributedTrainer(
            spec.model_factory, train_set, test_set, strategy, config
        ).run()
        label = "inf" if k is None else str(k)
        results[k] = result
        curves[f"K={label}"] = [
            (record.round_idx, record.test_accuracy) for record in result.history
        ]
        rows.append(
            [
                label,
                f"{result.total_sim_time_s * 1e3:.2f}",
                f"{100 * result.final_accuracy:.2f}",
                f"{100 * result.best_accuracy():.2f}",
                f"{result.avg_bits_per_element:.2f}",
            ]
        )
    table = format_table(
        ["K", "sim time (ms)", "final acc (%)", "best acc (%)", "avg bits"],
        rows,
    )
    save_report("fig3_k_sweep", f"Figure 3 reproduction (M={M}, T={ROUNDS})\n" + table)
    print_series("Figure 3a: accuracy vs round", "round", curves, precision=3)
    return results


def test_fig3_k_tradeoff(benchmark):
    results = run_once(benchmark, _run_experiment)

    for k, result in results.items():
        assert not result.diverged, f"K={k} diverged"
        assert result.avg_bits_per_element == \
            __import__("pytest").approx(_expected_bits(k), rel=0.02)

    # Communication cost falls monotonically as K grows.
    times = [results[k].total_sim_time_s for k in K_VALUES]
    assert times == sorted(times, reverse=True)

    # Accuracy: full precision every round is at least as good as never.
    assert results[1].best_accuracy() >= results[None].best_accuracy() - 0.01
    # All settings learn (the trade-off is about the last points of accuracy).
    for result in results.values():
        assert result.best_accuracy() > 0.7
