"""Figure 5: per-round time split under RAR and TAR.

The paper trains AlexNet/CIFAR-10 under both multi-hop topologies and
splits each scheme's average round time into computation (grey),
compression (red), and communication (blue).  Findings to reproduce:

- Marsit's compression overhead is minor (the transient draw overlaps
  reception);
- Marsit / Marsit-K spend the least time communicating in both topologies;
- every scheme communicates faster under TAR than under RAR (fewer
  sequential hops);
- under RAR, communication dominates computation for the non-compressed
  baseline.
"""

from repro.bench import (
    WORKLOADS,
    build_strategy,
    format_table,
    save_report,
    strategy_names,
)
from repro.train import DistributedTrainer, TrainConfig
from benchmarks.conftest import run_once

ROUNDS = 20
M = 8
TORUS_SHAPE = (2, 4)
SPEC_KEY = "cifar10-alexnet"


def _network_intensive_model():
    # Bandwidth-bound regime (the paper's RAR setting, where communication
    # dominates): 1 Gbps links with datacenter-grade 5 us latency.  At the
    # default 10 Gbps / 25 us the mini model's rounds are latency-bound and
    # every scheme's bars collapse to the hop count.
    from repro.comm.timing import CostModel

    return CostModel(latency_s=5e-6, bandwidth_Bps=1.25e8)


def _run_topology(topology):
    spec = WORKLOADS[SPEC_KEY]
    train_set, test_set = spec.make_data()
    breakdowns = {}
    for name in strategy_names():
        strategy = build_strategy(name, spec, M, train_set)
        config = TrainConfig(
            num_workers=M,
            rounds=ROUNDS,
            batch_size=spec.batch_size,
            topology=topology,
            torus_shape=TORUS_SHAPE if topology == "torus" else None,
            eval_every=ROUNDS,
            seed=0,
        )
        result = DistributedTrainer(
            spec.model_factory, train_set, test_set, strategy, config,
            cost_model=_network_intensive_model(),
        ).run()
        breakdowns[name] = {
            phase: seconds / ROUNDS
            for phase, seconds in result.time_breakdown_s.items()
        }
    return breakdowns


def _run_experiment():
    data = {"RAR": _run_topology("ring"), "TAR": _run_topology("torus")}
    rows = []
    for topology, breakdowns in data.items():
        for name, phases in breakdowns.items():
            rows.append(
                [
                    topology,
                    name,
                    f"{1e6 * phases['computation']:.1f}",
                    f"{1e6 * phases['compression']:.1f}",
                    f"{1e6 * phases['communication']:.1f}",
                    f"{1e6 * sum(phases.values()):.1f}",
                ]
            )
    table = format_table(
        ["topology", "scheme", "compute (us)", "compress (us)", "comm (us)",
         "total (us)"],
        rows,
    )
    save_report(
        "fig5_time_breakdown",
        f"Figure 5 reproduction (AlexNet-mini, M={M}, per-round avg)\n" + table,
    )
    return data


def test_fig5_time_breakdown(benchmark):
    data = run_once(benchmark, _run_experiment)

    for topology, breakdowns in data.items():
        comm = {name: phases["communication"] for name, phases in breakdowns.items()}
        # Marsit (or Marsit-K, whose FP rounds raise the average) has the
        # least communication time; plain Marsit is the strict minimum.
        assert comm["marsit"] == min(comm.values()), topology
        # Marsit's compression overhead is minor relative to one FP32 round.
        assert (
            breakdowns["marsit"]["compression"]
            < 0.5 * breakdowns["psgd"]["communication"]
        ), topology

    # Every scheme communicates faster under TAR than RAR (fewer hops).
    for name in strategy_names():
        assert (
            data["TAR"][name]["communication"]
            < data["RAR"][name]["communication"]
        ), name

    # Under RAR, communication dominates computation for PSGD.
    rar_psgd = data["RAR"]["psgd"]
    assert rar_psgd["communication"] > rar_psgd["computation"]
