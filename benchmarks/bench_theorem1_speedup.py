"""Theorem 1: linear speedup of Marsit in the number of workers.

Theorem 1 bounds ``min_t E||grad F(x_t)||^2`` by ``O(1/sqrt(MT)) +
O(K(K+1)/T)`` under the schedule ``eta_l = sqrt(M/T)``,
``eta_s = 1/sqrt(TD)`` — so at fixed T, quadrupling the workers should
roughly halve the reachable gradient norm (and the K term should vanish for
small K).

Reproduction: a noisy strongly-convex quadratic ``F(x) = ||x - x*||^2 / 2``
with per-worker gradient noise of std ``sigma``, driven by Marsit-SGD at the
theorem's learning rates.  We sweep M in {1, 2, 4, 8, 16} and report
``min_t ||grad F||^2``; the sequence must be decreasing (monotone up to a
tolerance) — the paper's "the more GPUs participate, the faster Marsit
reaches a stable point".
"""

import numpy as np

from repro.bench import format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig
from repro.core.optimizer import MarsitSGD
from repro.theory.bounds import recommended_learning_rates
from benchmarks.conftest import run_once

DIMENSION = 64
ROUNDS = 400
SIGMA = 4.0
WORKER_COUNTS = (1, 2, 4, 8, 16)


def _run_marsit_quadratic(num_workers, seed=0):
    rng = np.random.default_rng(seed)
    x_star = rng.standard_normal(DIMENSION)
    x = np.zeros(DIMENSION)
    rates = recommended_learning_rates(num_workers, ROUNDS, DIMENSION)
    optimizer = MarsitSGD(
        MarsitConfig(
            global_lr=rates.global_lr, seed=seed, verify_consensus=False
        ),
        rates.local_lr,
        num_workers,
        DIMENSION,
    )
    cluster = Cluster(ring_topology(num_workers))
    min_grad_sq = np.inf
    noise_rng = np.random.default_rng(seed + 1)
    for round_idx in range(ROUNDS):
        true_grad = x - x_star
        min_grad_sq = min(min_grad_sq, float((true_grad**2).sum()))
        grads = [
            true_grad + SIGMA * noise_rng.standard_normal(DIMENSION)
            for _ in range(num_workers)
        ]
        report = optimizer.step(cluster, grads, round_idx + 1)
        x = x - report.global_updates[0]
    return min_grad_sq


def _run_experiment():
    # Average a few seeds: the quantity is a min over a stochastic path.
    table = {}
    for m in WORKER_COUNTS:
        values = [_run_marsit_quadratic(m, seed=s) for s in (0, 1, 2)]
        table[m] = float(np.mean(values))
    rows = [[m, f"{table[m]:.4f}"] for m in WORKER_COUNTS]
    report = format_table(["M", "min ||grad F||^2"], rows)
    save_report(
        "theorem1_speedup",
        f"Theorem 1 linear-speedup check (T={ROUNDS}, sigma={SIGMA})\n" + report,
    )
    return table


def test_theorem1_linear_speedup(benchmark):
    table = run_once(benchmark, _run_experiment)

    values = [table[m] for m in WORKER_COUNTS]
    # More workers, smaller reachable gradient norm (monotone trend).
    assert values == sorted(values, reverse=True)
    # The M=16 point shows a substantial speedup over single-worker.
    assert table[16] < 0.5 * table[1]
