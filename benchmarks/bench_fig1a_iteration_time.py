"""Figure 1a: one iteration's time under each synchronization approach.

The paper (MNIST/AlexNet, M = 3) compares the length of one training
iteration under: non-compressed PS, non-compressed RAR, SSDM under PS, SSDM
under MAR (bit-length expansion), and cascading compression.  We add Marsit
(the paper's Figure 5 shows its bars).  Expected shape:

- RAR beats PS without compression (2(M-1)D vs 2MD on a congested server);
- SSDM-under-MAR spends *longer* in transmission than SSDM-under-PS because
  partial sign sums widen every hop (Section 3.1);
- cascading pays a large serialized compression period (Section 3.2.1);
- Marsit's communication is the smallest and its compression overhead minor.

The bench runs each scheme's collective once on an AlexNet-scaled gradient
through the simulated cluster and reports the alpha-beta model's per-phase
times.  Absolute values are model constants; the ordering is the result.
"""

import numpy as np

from repro.allreduce.cascading import cascading_ring_allreduce
from repro.allreduce.ps import ps_allreduce
from repro.allreduce.ring import ring_allreduce_sum, signsum_ring_allreduce
from repro.bench import format_table, save_report
from repro.comm.bits import signed_int_bit_width
from repro.comm.cluster import Cluster, SizedPayload
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology, star_topology
from repro.compression.ssdm import SSDMCompressor
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from benchmarks.conftest import run_once

M = 3
DIMENSION = 1_000_000  # AlexNet-scale gradient (paper: 23M; scaled down)
FLOPS_PER_ITERATION = 2e9  # forward+backward at the bench batch size


def _phase_times(cluster):
    seconds = cluster.timeline.seconds
    return {
        "computation": seconds[Phase.COMPUTATION],
        "compression": seconds[Phase.COMPRESSION],
        "communication": seconds[Phase.COMMUNICATION],
    }


def _charge_computation(cluster):
    cluster.charge(
        Phase.COMPUTATION, cluster.cost_model.compute_time(FLOPS_PER_ITERATION)
    )


def _fp32_ps(vectors):
    cluster = Cluster(star_topology(M + 1, server=0))
    _charge_computation(cluster)
    payloads = [np.zeros(0, dtype=np.float32)] + [
        np.asarray(v, dtype=np.float32) for v in vectors
    ]
    ps_allreduce(
        cluster, payloads,
        aggregate=lambda xs: np.mean([x for x in xs if x.size], axis=0),
        concurrent_uploads=True,
    )
    return cluster


def _fp32_rar(vectors):
    cluster = Cluster(ring_topology(M))
    _charge_computation(cluster)
    ring_allreduce_sum(cluster, vectors)
    return cluster


def _ssdm_ps(vectors, rng):
    cluster = Cluster(star_topology(M + 1, server=0))
    _charge_computation(cluster)
    compressor = SSDMCompressor()
    cluster.charge(
        Phase.COMPRESSION, cluster.cost_model.compress_time(DIMENSION)
    )
    payloads = [SizedPayload(value=None, nbytes=0)] + [
        compressor.compress(v, rng=rng) for v in vectors
    ]

    def aggregate(items):
        # Server broadcasts the aggregate's sign (1 bit/elem) plus norms —
        # the sign-descent update SSDM actually applies.
        decoded = [item.decode() for item in items if item.nbytes]
        return SizedPayload(
            value=np.mean(decoded, axis=0),
            nbytes=(DIMENSION + 7) // 8 + 4 * M,
        )

    ps_allreduce(cluster, payloads, aggregate=aggregate, concurrent_uploads=True)
    cluster.charge(
        Phase.COMPRESSION, cluster.cost_model.decompress_time(DIMENSION)
    )
    return cluster


def _ssdm_mar(vectors, rng):
    cluster = Cluster(ring_topology(M))
    _charge_computation(cluster)
    signs = [np.where(v >= 0, 1.0, -1.0) for v in vectors]
    signsum_ring_allreduce(cluster, signs)
    return cluster


def _cascading(vectors, rng):
    cluster = Cluster(ring_topology(M))
    _charge_computation(cluster)
    rngs = [np.random.default_rng(i) for i in range(M)]
    cascading_ring_allreduce(cluster, vectors, SSDMCompressor(), rngs)
    return cluster


def _marsit(vectors):
    cluster = Cluster(ring_topology(M))
    _charge_computation(cluster)
    sync = MarsitSynchronizer(
        MarsitConfig(global_lr=0.01, verify_consensus=False), M, DIMENSION
    )
    sync.synchronize(cluster, vectors, round_idx=1)
    return cluster


def _run_experiment():
    rng = np.random.default_rng(0)
    vectors = [rng.standard_normal(DIMENSION) for _ in range(M)]
    schemes = {
        "fp32 (PS)": _fp32_ps(vectors),
        "fp32 (RAR)": _fp32_rar(vectors),
        "ssdm (PS)": _ssdm_ps(vectors, rng),
        "ssdm (MAR)": _ssdm_mar(vectors, rng),
        "cascading (MAR)": _cascading(vectors, rng),
        "marsit (RAR)": _marsit(vectors),
    }
    breakdowns = {name: _phase_times(c) for name, c in schemes.items()}
    rows = [
        [
            name,
            f"{1e3 * b['computation']:.2f}",
            f"{1e3 * b['compression']:.2f}",
            f"{1e3 * b['communication']:.2f}",
            f"{1e3 * sum(b.values()):.2f}",
        ]
        for name, b in breakdowns.items()
    ]
    report = format_table(
        ["scheme", "compute (ms)", "compress (ms)", "comm (ms)", "total (ms)"],
        rows,
    )
    save_report(
        "fig1a_iteration_time",
        f"Figure 1a reproduction (M={M}, D={DIMENSION:,})\n" + report,
    )
    return breakdowns


def test_fig1a_iteration_time(benchmark):
    b = run_once(benchmark, _run_experiment)

    total = {name: sum(phases.values()) for name, phases in b.items()}
    comm = {name: phases["communication"] for name, phases in b.items()}

    # Non-compressed: RAR beats PS (server congestion).
    assert total["fp32 (RAR)"] < total["fp32 (PS)"]
    # Bit-length expansion: SSDM under MAR transmits longer than under PS.
    assert comm["ssdm (MAR)"] > comm["ssdm (PS)"]
    # Cascading pays a serialized codec period larger than Marsit's.
    assert b["cascading (MAR)"]["compression"] > b["marsit (RAR)"]["compression"]
    # Marsit has the least communication of all schemes.
    assert comm["marsit (RAR)"] == min(comm.values())
    # And the lowest total among the compressed MAR schemes.
    assert total["marsit (RAR)"] < total["cascading (MAR)"]
    assert total["marsit (RAR)"] < total["ssdm (MAR)"]
