"""Figure 4: ResNet-50 / ImageNet — time-to-accuracy and communication budget.

Paper's findings (M = 32 cluster):

- Fig 4a: PSGD takes the most wall-clock time; Marsit reaches comparable
  accuracy ~1.5x faster.
- Fig 4b: at equal accuracy Marsit spends ~90% fewer bytes than PSGD and
  ~70% fewer than the multi-bit sign schemes; given equal budget, Marsit /
  Marsit-K sit above every baseline.

Reproduction: the ResNet-50-mini / ImageNet-like workload, all six schemes,
shared round budget, under a 1 Gbps cost model (the "network-intensive
public cloud" regime the paper targets — at datacenter bandwidths our mini
models are compute-bound and no scheme's wire format matters).  Both
figures come from the same runs (x = simulated seconds for 4a,
x = cumulative bytes for 4b).

Known deviation (see EXPERIMENTS.md): deterministic signSGD majority vote
converges unusually fast on the synthetic workload, so its time-to-accuracy
beats Marsit's here, unlike in the paper; the Marsit-vs-PSGD speedup and the
byte budgets reproduce.
"""

from repro.bench import (
    WORKLOADS,
    build_strategy,
    format_table,
    print_series,
    save_report,
    strategy_names,
)
from repro.train import DistributedTrainer, TrainConfig
from benchmarks.conftest import run_once

M = 4
SPEC_KEY = "imagenet-resnet50"


def _network_intensive_model():
    from repro.comm.timing import CostModel

    return CostModel(bandwidth_Bps=1.25e8)  # 1 Gbps links


def _run_experiment():
    spec = WORKLOADS[SPEC_KEY]
    train_set, test_set = spec.make_data()
    results = {}
    for name in strategy_names():
        strategy = build_strategy(name, spec, M, train_set)
        config = TrainConfig(
            num_workers=M, rounds=spec.rounds, batch_size=spec.batch_size,
            topology="ring", eval_every=max(1, spec.rounds // 20), seed=0,
        )
        results[name] = DistributedTrainer(
            spec.model_factory, train_set, test_set, strategy, config,
            cost_model=_network_intensive_model(),
        ).run()

    time_curves = {
        name: [(r.sim_time_s * 1e3, r.test_accuracy) for r in result.history]
        for name, result in results.items()
    }
    byte_curves = {
        name: [(r.comm_bytes / 1e6, r.test_accuracy) for r in result.history]
        for name, result in results.items()
    }
    print_series("Figure 4a: accuracy vs simulated time (ms)", "ms", time_curves,
                 precision=3)
    print_series("Figure 4b: accuracy vs communication (MB)", "MB", byte_curves,
                 precision=3)

    target = 0.8 * results["psgd"].best_accuracy()
    rows = []
    for name, result in results.items():
        t_to = result.time_to_accuracy(target)
        b_to = result.bytes_to_accuracy(target)
        rows.append(
            [
                name,
                f"{100 * result.best_accuracy():.2f}",
                f"{1e3 * t_to:.2f}" if t_to is not None else "never",
                f"{b_to / 1e6:.2f}" if b_to is not None else "never",
                f"{result.total_comm_bytes / 1e6:.2f}",
            ]
        )
    table = format_table(
        ["scheme", "best acc (%)", f"ms to {100 * target:.0f}%",
         f"MB to {100 * target:.0f}%", "total MB"],
        rows,
    )
    save_report(
        "fig4_resnet50",
        f"Figure 4 reproduction (ResNet50-mini, M={M}, target={100 * target:.0f}%)\n"
        + table,
    )
    return results, target


def test_fig4a_time_to_accuracy(benchmark):
    results, target = run_once(benchmark, _run_experiment)

    psgd_time = results["psgd"].time_to_accuracy(target)
    marsit_time = min(
        t for t in (
            results["marsit"].time_to_accuracy(target),
            results["marsit-k"].time_to_accuracy(target),
        ) if t is not None
    )
    assert psgd_time is not None
    # Fig 4a: Marsit reaches the accuracy bar faster than PSGD (paper: 1.5x).
    assert marsit_time < psgd_time

    # Fig 4b: at the same bar, Marsit's byte budget is ~an order of
    # magnitude below PSGD's (paper: -90%) ...
    psgd_bytes = results["psgd"].bytes_to_accuracy(target)
    marsit_bytes = min(
        b for b in (
            results["marsit"].bytes_to_accuracy(target),
            results["marsit-k"].bytes_to_accuracy(target),
        ) if b is not None
    )
    assert marsit_bytes < 0.2 * psgd_bytes
    # ... and Marsit's per-round traffic is well below the multi-bit sign
    # schemes' (paper: -70%); at-equal-accuracy bytes depend on convergence
    # speed, which favors majority-vote on this synthetic task.
    marsit_rate = results["marsit"].total_comm_bytes / results["marsit"].rounds_run
    for name in ("signsgd", "ef-signsgd", "ssdm"):
        other_rate = results[name].total_comm_bytes / results[name].rounds_run
        assert marsit_rate < 0.4 * other_rate, name
