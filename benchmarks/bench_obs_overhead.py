"""Observability overhead benchmark: disabled instrumentation must be free.

The telemetry subsystem hangs off the cluster's accounting calls: every
``exchange``/``end_step`` checks a cached ``_obs_on`` boolean and every
``charge`` does the same before (maybe) forwarding to the tracer.  This bench
measures what those checks cost the lane-stacked lockstep engine when
instrumentation is *off* — the default for every benchmark and training run.

To keep the comparison machine-independent the baseline is rebuilt in
process: ``BareCluster`` overrides the accounting methods with their
pre-observability bodies (no ``_obs_on`` checks, no per-step message
counter), so instrumented-off and bare rounds run back to back on the same
interpreter and the delta is the instrumentation alone, not run-to-run
variance against a recorded number.  Tracing-enabled rounds are also timed,
informationally (spans and metrics are expected to cost real time).

Results go to ``benchmarks/results/obs_overhead.txt`` and machine-readable
``BENCH_obs_overhead.json`` at the repo root (``full`` / ``check`` keys).

Run the full benchmark (asserts < 3% overhead at every M)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or the seconds-long smoke mode the test suite wires in::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np
import pytest

from repro.bench import format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.obs import Observability

FULL_DIMENSION = 1_000_000
FULL_WORKERS = (8, 32)
FULL_ROUNDS = 7
CHECK_DIMENSION = 20_000
CHECK_WORKERS = (4,)
CHECK_ROUNDS = 2
#: ISSUE acceptance ceiling, asserted in full mode only.
MAX_OVERHEAD_PCT = 3.0
_SEED = 7

_JSON_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_obs_overhead.json"
)


class BareCluster(Cluster):
    """The cluster's accounting hot paths as they were before telemetry.

    ``exchange`` and ``end_step`` charge the makespan without the
    ``_obs_on`` check or the step message counter; ``charge`` is a plain
    timeline add.  Everything else is inherited.
    """

    def exchange(self, transfers, tag: str = "") -> float:
        if self._in_step:
            raise RuntimeError("cannot exchange inside an open step")
        from repro.comm.cluster import payload_nbytes

        step_bytes: dict[tuple[int, int], int] = {}
        links = self.links
        total = 0
        count = 0
        for src, dst, payload in transfers:
            key = (src, dst)
            link = links.get(key)
            if link is None:
                raise ValueError(
                    f"no link {src} -> {dst} in {self.topology.name} topology"
                )
            nbytes = (
                payload if type(payload) is int else payload_nbytes(payload)
            )
            if nbytes < 0:
                raise ValueError("nbytes must be non-negative")
            link.bytes_sent += nbytes
            link.messages_sent += 1
            total += nbytes
            count += 1
            step_bytes[key] = step_bytes.get(key, 0) + nbytes
        self.total_bytes += total
        self.total_messages += count
        if not step_bytes:
            return 0.0
        elapsed = max(
            self._link_transfer_time(link, nbytes)
            for link, nbytes in step_bytes.items()
        )
        self.timeline.add(Phase.COMMUNICATION, elapsed)
        return elapsed

    def end_step(self, tag: str = "") -> float:
        if not self._in_step:
            raise RuntimeError("no step open")
        self._in_step = False
        if not self._step_bytes:
            return 0.0
        elapsed = max(
            self._link_transfer_time(link, nbytes)
            for link, nbytes in self._step_bytes.items()
        )
        self.timeline.add(Phase.COMMUNICATION, elapsed)
        return elapsed

    def charge(self, phase: Phase, seconds: float) -> None:
        self.timeline.add(phase, seconds)


def _time_rounds(
    cluster: Cluster, num_workers: int, dimension: int, updates: np.ndarray,
    rounds: int,
) -> float:
    """Best per-round seconds of the batched one-bit engine on ``cluster``."""
    sync = MarsitSynchronizer(
        MarsitConfig(
            global_lr=0.01, seed=_SEED, engine="batched",
            verify_consensus=False,
        ),
        num_workers,
        dimension,
    )
    best = float("inf")
    for round_idx in range(1, rounds + 1):
        start = time.perf_counter()
        sync.synchronize(cluster, updates, round_idx)
        best = min(best, time.perf_counter() - start)
    return best


def run_rounds(
    dimension: int, workers: tuple[int, ...], rounds: int
) -> dict:
    """Bare vs instrumented-off vs tracing-on per-round time per M."""
    results: dict = {}
    rng = np.random.default_rng(5)
    for num_workers in workers:
        updates = rng.standard_normal((num_workers, dimension))
        topology = ring_topology(num_workers)
        bare_s = _time_rounds(
            BareCluster(topology), num_workers, dimension, updates, rounds
        )
        off_s = _time_rounds(
            Cluster(topology), num_workers, dimension, updates, rounds
        )
        traced_s = _time_rounds(
            Cluster(topology, obs=Observability.tracing()),
            num_workers, dimension, updates, rounds,
        )
        results[str(num_workers)] = {
            "bare_s": bare_s,
            "off_s": off_s,
            "traced_s": traced_s,
            "overhead_pct": 100.0 * (off_s - bare_s) / max(bare_s, 1e-12),
            "traced_pct": 100.0 * (traced_s - bare_s) / max(bare_s, 1e-12),
        }
    return results


def _write_json(mode: str, dimension: int, workers: dict) -> None:
    payload: dict = {}
    if _JSON_PATH.exists():
        try:
            payload = json.loads(_JSON_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
    payload[mode] = {"dimension": dimension, "workers": workers}
    try:
        _JSON_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    except OSError:
        pass  # read-only checkout: the printed table is still the output


def _report(mode: str, dimension: int, workers: dict) -> str:
    rows = [
        [
            f"M={num_workers}",
            f"{entry['bare_s'] * 1e3:.2f}",
            f"{entry['off_s'] * 1e3:.2f}",
            f"{entry['overhead_pct']:+.2f}%",
            f"{entry['traced_s'] * 1e3:.2f}",
            f"{entry['traced_pct']:+.2f}%",
        ]
        for num_workers, entry in workers.items()
    ]
    table = format_table(
        [
            "workers", "bare ms/round", "obs-off ms/round", "overhead",
            "tracing ms/round", "tracing cost",
        ],
        rows,
    )
    return (
        f"Observability overhead, batched one-bit ring round "
        f"({mode}, D={dimension})\n" + table
    )


def run_mode(mode: str) -> dict:
    """Run ``'full'`` or ``'check'`` mode; persist JSON + text results."""
    if mode == "full":
        dimension, workers, rounds = FULL_DIMENSION, FULL_WORKERS, FULL_ROUNDS
    else:
        dimension, workers, rounds = (
            CHECK_DIMENSION, CHECK_WORKERS, CHECK_ROUNDS,
        )
    results = run_rounds(dimension, workers, rounds)
    _write_json(mode, dimension, results)
    if mode == "full":
        save_report("obs_overhead", _report(mode, dimension, results))
    else:
        print(_report(mode, dimension, results))
    return results


@pytest.mark.slow
def test_obs_overhead(benchmark):
    from benchmarks.conftest import run_once

    results = run_once(benchmark, lambda: run_mode("full"))
    for entry in results.values():
        assert entry["overhead_pct"] < MAX_OVERHEAD_PCT


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="seconds-long smoke mode (small input, no overhead asserts)",
    )
    args = parser.parse_args()
    if args.check:
        run_mode("check")
        return
    results = run_mode("full")
    for num_workers, entry in results.items():
        assert entry["overhead_pct"] < MAX_OVERHEAD_PCT, (num_workers, entry)


if __name__ == "__main__":
    main()
