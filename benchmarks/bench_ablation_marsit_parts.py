"""Ablations of Marsit's design choices (DESIGN.md section 5).

1. **The ``⊙`` merge vs per-hop majority.**  Resolving hop disagreements
   deterministically toward the received bit (the natural biased
   alternative) systematically over-weights early ring positions; the
   stochastic transient keeps the aggregate an unbiased sample of the mean
   sign.  Measured as the bias of the final bit probability against the
   true +1 fraction.

2. **Global compensation on/off, across eta_s scales.**  A reproduction
   finding: compensation is load-bearing exactly in the theory's regime.
   When ``eta_s`` *undershoots* the per-element update scale (Theorem 1's
   ``1/sqrt(TD)`` is tiny), the compensation vector carries the un-applied
   mass forward and clearly improves accuracy; when ``eta_s`` is tuned
   *above* that scale, the overshoot residual anti-correlates consecutive
   signs and compensation hurts.  The bench measures both regimes.

3. **Elias coding of sign sums.**  Entropy-coding the SSDM-under-MAR
   integer sums (zigzag + Elias gamma) shrinks the expansion but stays well
   above Marsit's flat 1 bit/element.
"""

import numpy as np

from repro.bench import WORKLOADS, calibrate_global_lr, format_table, save_report
from repro.comm.bits import elias_gamma_encode, signed_int_bit_width
from repro.core.marsit import MarsitConfig
from repro.core.sign_ops import merge_sign_bits, transient_vector
from repro.train import DistributedTrainer, MarsitStrategy, TrainConfig
from benchmarks.conftest import run_once

M = 4


def _merge_bias(use_transient, trials=300, n=4000, seed=0):
    """|E[final bit] - true mean| for the ⊙ vs take-received resolution."""
    rng = np.random.default_rng(seed)
    worker_bits = [
        (rng.random(n) < p).astype(np.uint8) for p in (0.8, 0.6, 0.4, 0.2)
    ]
    target = np.mean(worker_bits, axis=0)
    totals = np.zeros(n)
    for trial in range(trials):
        trial_rng = np.random.default_rng(100 + trial)
        merged = worker_bits[0]
        for hop in range(1, len(worker_bits)):
            local = worker_bits[hop]
            if use_transient:
                transient = transient_vector(local, hop, 1, trial_rng)
            else:
                # Biased alternative: disagreements resolve to the received
                # bit (transient = received), i.e. merged OR-AND reduces to
                # keeping the incoming value.
                transient = merged
            merged = merge_sign_bits(merged, local, transient)
        totals += merged
    return float(np.abs(totals / trials - target).mean())


def _compensation_ablation():
    spec = WORKLOADS["imagenet-resnet50"]
    train_set, test_set = spec.make_data()
    step = calibrate_global_lr(
        spec.model_factory, train_set, spec.batch_size, spec.local_lr,
        momentum=0.0,
    )
    accuracies = {}
    for mult in (0.25, 1.0):
        for use_compensation in (True, False):
            global_lr = mult * step
            strategy = MarsitStrategy(
                local_lr=spec.local_lr, global_lr=global_lr, num_workers=M,
                dimension=spec.dimension(), base_optimizer="sgd", seed=0,
            )
            strategy._optimizer.synchronizer.config = MarsitConfig(
                global_lr=global_lr, seed=0,
                use_compensation=use_compensation, verify_consensus=False,
            )
            config = TrainConfig(
                num_workers=M, rounds=100, batch_size=spec.batch_size,
                topology="ring", eval_every=20, seed=0,
            )
            result = DistributedTrainer(
                spec.model_factory, train_set, test_set, strategy, config
            ).run()
            accuracies[(mult, use_compensation)] = result.best_accuracy()
    return accuracies


def _elias_bits_per_element(num_workers=8, dimension=20_000, seed=0):
    """Average wire bits/element for one reduce hop carrying sums over M."""
    rng = np.random.default_rng(seed)
    signs = np.where(
        rng.standard_normal((num_workers, dimension)) >= 0, 1, -1
    )
    sums = signs.sum(axis=0)  # in {-M..M}, step 2
    # Re-index by half-steps from the binomial mode (see signsum ring) so
    # common values get the short gamma codes, then zigzag to positives.
    half_steps = (sums + num_workers) // 2 - num_workers // 2
    zigzag = np.where(
        half_steps >= 0, 2 * half_steps + 1, -2 * half_steps
    ).astype(np.int64)
    _, elias_bits = elias_gamma_encode(zigzag)
    fixed_bits = signed_int_bit_width(num_workers) * dimension
    return elias_bits / dimension, fixed_bits / dimension


def _run_experiment():
    transient_bias = _merge_bias(use_transient=True)
    received_bias = _merge_bias(use_transient=False)
    compensation = _compensation_ablation()
    elias_bits, fixed_bits = _elias_bits_per_element()

    rows = [
        ["merge bias (⊙ stochastic)", f"{transient_bias:.4f}"],
        ["merge bias (take-received)", f"{received_bias:.4f}"],
        ["acc @ small eta_s, comp ON", f"{100 * compensation[(0.25, True)]:.2f}%"],
        ["acc @ small eta_s, comp OFF", f"{100 * compensation[(0.25, False)]:.2f}%"],
        ["acc @ tuned eta_s, comp ON", f"{100 * compensation[(1.0, True)]:.2f}%"],
        ["acc @ tuned eta_s, comp OFF", f"{100 * compensation[(1.0, False)]:.2f}%"],
        ["sign-sum bits/elem (fixed width, M=8)", f"{fixed_bits:.2f}"],
        ["sign-sum bits/elem (Elias gamma, M=8)", f"{elias_bits:.2f}"],
        ["Marsit bits/elem", "1.00"],
    ]
    report = format_table(["ablation", "value"], rows)
    save_report("ablation_marsit_parts", "Marsit design ablations\n" + report)
    return {
        "transient_bias": transient_bias,
        "received_bias": received_bias,
        "compensation": compensation,
        "elias_bits": elias_bits,
        "fixed_bits": fixed_bits,
    }


def test_ablations(benchmark):
    out = run_once(benchmark, _run_experiment)

    # 1. The stochastic transient is (near-)unbiased; the deterministic
    #    alternative shows an order-of-magnitude larger systematic bias.
    assert out["transient_bias"] < 0.05
    assert out["received_bias"] > 3 * out["transient_bias"]

    # 2. Compensation is load-bearing in the theory's small-eta_s regime
    #    (the paper's 1/sqrt(TD) scale), where sign steps undershoot.
    comp = out["compensation"]
    assert comp[(0.25, True)] > comp[(0.25, False)] + 0.03

    # 3. Elias coding compresses the expansion but cannot reach one bit.
    assert out["elias_bits"] < out["fixed_bits"]
    assert out["elias_bits"] > 1.5
