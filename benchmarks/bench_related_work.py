"""Related-work claims (paper Section 2) checked quantitatively.

1. **PowerSGD under RAR** — "requires to transmit multiple sequential
   vectors at a synchronization, which undermines the training efficiency
   under RAR": PowerSGD's two dependent all-reduces double the ring's
   latency term (4(M-1) hops vs Marsit's 2(M-1)), even though its volume is
   tiny.

2. **Sparsification under MAR** — top-k supports grow as they merge: the
   union of M workers' k-sparse gradients is up to Mk-sparse, so the
   message size cannot stay fixed across hops the way Marsit's one bit
   does.  Measured as the support density after each merge on real model
   gradients.
"""

import numpy as np

from repro.bench import WORKLOADS, format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology
from repro.compression.topk import TopKCompressor
from repro.data.sharding import WorkerBatchIterator, shard_iid
from repro.nn.losses import CrossEntropyLoss
from repro.train.strategies import MarsitStrategy, PowerSGDStrategy
from benchmarks.conftest import run_once

M = 8
D = 100_000


def _powersgd_vs_marsit_latency():
    rng = np.random.default_rng(0)
    grads = [rng.standard_normal(D) for _ in range(M)]

    powersgd_cluster = Cluster(ring_topology(M))
    PowerSGDStrategy(lr=0.1, num_workers=M, rank=2).step(
        powersgd_cluster, [g.copy() for g in grads], 0
    )
    marsit_cluster = Cluster(ring_topology(M))
    MarsitStrategy(
        local_lr=0.1, global_lr=0.01, num_workers=M, dimension=D
    ).step(marsit_cluster, [g.copy() for g in grads], 1)

    latency = powersgd_cluster.cost_model.latency_s
    return {
        "powersgd_steps": round(
            powersgd_cluster.timeline.seconds[Phase.COMMUNICATION] / latency
        ),
        "marsit_steps": round(
            marsit_cluster.timeline.seconds[Phase.COMMUNICATION] / latency
        ),
        "powersgd_bytes": powersgd_cluster.total_bytes,
        "marsit_bytes": marsit_cluster.total_bytes,
    }


def _topk_density_growth(k_fraction=0.01):
    spec = WORKLOADS["cifar10-alexnet"]
    train_set, _ = spec.make_data()
    model = spec.model_factory()
    loss_fn = CrossEntropyLoss()
    shards = shard_iid(train_set, M, seed=0)
    dimension = model.num_parameters()
    k = max(1, int(k_fraction * dimension))
    compressor = TopKCompressor(k=k)
    densities = []
    support: set[int] = set()
    for worker, shard in enumerate(shards):
        x, y = WorkerBatchIterator(shard, 16, seed=worker).next_batch()
        model.zero_grad()
        loss_fn(model(x), y)
        model.backward(loss_fn.backward())
        payload = compressor.compress(model.flatten_grads())
        support |= set(payload.indices.tolist())
        densities.append(len(support) / dimension)
    return densities


def _run_experiment():
    latency = _powersgd_vs_marsit_latency()
    densities = _topk_density_growth()
    rows = [
        ["powersgd ring hops / sync", latency["powersgd_steps"]],
        ["marsit ring hops / sync", latency["marsit_steps"]],
        ["powersgd bytes / sync", latency["powersgd_bytes"]],
        ["marsit bytes / sync", latency["marsit_bytes"]],
    ] + [
        [f"top-1% support after merging {m + 1} workers",
         f"{100 * density:.2f}% of D"]
        for m, density in enumerate(densities)
    ]
    report = format_table(["quantity", "value"], rows)
    save_report(
        "related_work",
        f"Related-work checks (M={M}, D={D:,})\n" + report,
    )
    return latency, densities


def test_related_work_claims(benchmark):
    latency, densities = run_once(benchmark, _run_experiment)

    # PowerSGD's sequential passes double the ring latency term:
    # 2 x 2(M-1) hops vs one pass's 2(M-1).  (+/-1 for byte-time rounding.)
    assert abs(latency["powersgd_steps"] - 4 * (M - 1)) <= 1
    assert abs(latency["marsit_steps"] - 2 * (M - 1)) <= 1
    # Top-k support grows substantially as workers merge (no fixed wire
    # size); iid workers share many top coordinates, so growth is sublinear
    # but still more than doubles by M = 8.
    assert densities[-1] > 1.8 * densities[0]
    # The density sequence is monotone non-decreasing by construction.
    assert densities == sorted(densities)
