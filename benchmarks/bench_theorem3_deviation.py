"""Theorems 2 & 3: aggregation deviation of PS compression vs cascading.

Appendix A bounds the squared deviation from the exact mean: SSDM under PS
by ``D G^2`` (Theorem 2, independent of M) and cascading compression by
``(2D)^M G^2 / M`` (Theorem 3, exploding with M).  The paper's remark: the
cascading bound "explodes rapidly with M, while centralized training does
not".

Reproduction: random bounded gradients, D = 32, M swept 1..8; empirical
``||s_2 - s_1||^2`` and ``||s_3 - s_1||^2`` averaged over trials, checked
against the closed-form bounds.
"""

import numpy as np

from repro.bench import format_table, save_report
from repro.theory.bounds import cascading_deviation_bound, ps_deviation_bound
from repro.theory.deviation import cascading_deviation, ps_compression_deviation
from benchmarks.conftest import run_once

DIMENSION = 32
WORKER_COUNTS = (1, 2, 3, 4, 6, 8)
TRIALS = 40


def _run_experiment():
    base_rng = np.random.default_rng(0)
    gradients = [base_rng.standard_normal(DIMENSION) for _ in range(max(WORKER_COUNTS))]
    g_bound = max(np.linalg.norm(g) for g in gradients)
    rows = []
    data = {}
    for m in WORKER_COUNTS:
        subset = gradients[:m]
        ps_values = [
            ps_compression_deviation(subset, np.random.default_rng(1000 + t))
            for t in range(TRIALS)
        ]
        cascade_values = [
            cascading_deviation(subset, np.random.default_rng(2000 + t))
            for t in range(TRIALS)
        ]
        data[m] = {
            "ps": float(np.mean(ps_values)),
            "ps_max": float(np.max(ps_values)),
            "cascade": float(np.mean(cascade_values)),
            "ps_bound": ps_deviation_bound(DIMENSION, g_bound),
            "cascade_bound": cascading_deviation_bound(DIMENSION, m, g_bound),
        }
        rows.append(
            [
                m,
                f"{data[m]['ps']:.1f}",
                f"{data[m]['cascade']:.3e}",
                f"{data[m]['ps_bound']:.1f}",
                f"{data[m]['cascade_bound']:.3e}",
            ]
        )
    report = format_table(
        ["M", "PS deviation", "cascading deviation", "Thm2 bound", "Thm3 bound"],
        rows,
    )
    save_report(
        "theorem3_deviation",
        f"Theorems 2/3 deviation check (D={DIMENSION}, {TRIALS} trials)\n" + report,
    )
    return data


def test_theorem3_deviation_explodes(benchmark):
    data = run_once(benchmark, _run_experiment)

    # PS deviation stays bounded by Theorem 2 and roughly flat in M.
    for m, cell in data.items():
        assert cell["ps_max"] <= cell["ps_bound"]
    flat_ratio = data[8]["ps"] / data[1]["ps"]
    assert flat_ratio < 10.0

    # Cascading deviation grows monotonically and explosively with M ...
    cascade = [data[m]["cascade"] for m in WORKER_COUNTS]
    assert cascade == sorted(cascade)
    assert data[8]["cascade"] > 1e3 * data[2]["cascade"]
    # ... while staying under the Theorem 3 upper bound.
    for m, cell in data.items():
        assert cell["cascade"] <= cell["cascade_bound"]
    # At every M > 1, cascading is far worse than PS compression.
    for m in WORKER_COUNTS[2:]:
        assert data[m]["cascade"] > 10 * data[m]["ps"]
