"""Introduction claim: gossip converges much slower than MAR on sparse rings.

Section 1: "the performance of gossip in terms of convergence rate is much
slower than MAR, especially under sparse connections such as ring topology"
(refs [8-10]).  The mechanism is the mixing matrix's spectral gap: on a
bidirectional ring of M workers the gap is O(1/M^2), so reaching consensus
takes O(M^2 log(1/eps)) gossip rounds, while a ring all-reduce computes the
exact mean in 2(M-1) steps.

The bench measures (a) the spectral gap of the Metropolis weights on rings
vs complete graphs, and (b) the number of gossip rounds to reach 1% relative
consensus error vs the all-reduce step count.
"""

import numpy as np

from repro.allreduce.gossip import gossip_average_round, gossip_mixing_matrix
from repro.bench import format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.topology import fully_connected_topology, ring_topology
from benchmarks.conftest import run_once

DIMENSION = 32
TOLERANCE = 0.01


def _spectral_gap(cluster):
    weights = gossip_mixing_matrix(cluster)
    eigenvalues = np.sort(np.abs(np.linalg.eigvalsh(weights)))[::-1]
    return float(1.0 - eigenvalues[1])


def _gossip_rounds_to_consensus(cluster, vectors):
    target = np.mean(vectors, axis=0)
    scale = max(np.linalg.norm(v - target) for v in vectors)
    mixing = gossip_mixing_matrix(cluster)
    current = [v.copy() for v in vectors]
    for round_idx in range(1, 100_000):
        current = gossip_average_round(cluster, current, mixing=mixing)
        worst = max(np.linalg.norm(v - target) for v in current)
        if worst <= TOLERANCE * scale:
            return round_idx
    return None


def _run_experiment():
    rng = np.random.default_rng(0)
    rows = []
    data = {}
    for m in (4, 8, 16):
        vectors = [rng.standard_normal(DIMENSION) for _ in range(m)]
        ring_cluster = Cluster(ring_topology(m, bidirectional=True))
        full_cluster = Cluster(fully_connected_topology(m))
        entry = {
            "ring_gap": _spectral_gap(ring_cluster),
            "full_gap": _spectral_gap(full_cluster),
            "ring_rounds": _gossip_rounds_to_consensus(ring_cluster, vectors),
            "allreduce_steps": 2 * (m - 1),
        }
        data[m] = entry
        rows.append(
            [
                m,
                f"{entry['ring_gap']:.4f}",
                f"{entry['full_gap']:.4f}",
                entry["ring_rounds"],
                entry["allreduce_steps"],
            ]
        )
    report = format_table(
        ["M", "ring spectral gap", "complete-graph gap",
         f"gossip rounds to {TOLERANCE:.0%}", "all-reduce steps (exact)"],
        rows,
    )
    save_report("intro_gossip", "Gossip vs MAR consensus speed\n" + report)
    return data


def test_gossip_slower_than_mar(benchmark):
    data = run_once(benchmark, _run_experiment)

    for m, entry in data.items():
        # Sparse ring's gap is far below the complete graph's.
        assert entry["ring_gap"] < 0.75 * entry["full_gap"]
    # The O(1/M^2) gap: quadrupling M shrinks the gap ~16x (within 2x).
    ratio = data[4]["ring_gap"] / data[16]["ring_gap"]
    assert 8.0 < ratio < 32.0
    # Gossip's rounds grow superlinearly in M (all-reduce steps grow
    # linearly), and by M = 16 gossip needs ~2x the rounds — each of which
    # moves a *full* D-vector per link, vs the all-reduce's D/M segments:
    # the volume gap is ~M x rounds-ratio.
    growth = data[16]["ring_rounds"] / data[4]["ring_rounds"]
    assert growth > 4.0
    assert data[16]["ring_rounds"] > 2 * data[16]["allreduce_steps"]
    gossip_volume = data[16]["ring_rounds"] * 2  # 2 neighbors x D each
    allreduce_volume = 2 * (16 - 1) / 16  # 2 (M-1)/M x D per worker
    assert gossip_volume > 30 * allreduce_volume
