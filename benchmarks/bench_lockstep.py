"""Lockstep-engine benchmark: simulated one-bit round wall-clock vs workers.

PR 1 made every *kernel* 64-elements-per-op fast, which left the round loop
dominated by Python interpreter overhead: O(M) sends, recvs, merges and RNG
draws per synchronous step.  The lane-stacked engine collapses each step to
one batched numpy op over all (cycle, position) lanes, so a round's cost
stops scaling with worker count at the interpreter level.

This bench times one Marsit one-bit ring round old-vs-new at
M in {8, 16, 32, 64} workers, D = 1M elements.  Both engines consume
identical per-rank RNG streams, so before timing the bench asserts their
global updates, total bytes and total messages are exactly equal.  Results
go to ``benchmarks/results/lockstep.txt`` and machine-readable
``BENCH_lockstep.json`` at the repo root (separate ``full`` / ``check``
keys, like the packed-kernel bench).

Since the SyncPlan refactor both engines are plan interpreters: the round
is compiled once to a :class:`~repro.sched.plan.SyncPlan` and executed by
``ScalarExecutor`` / ``LaneStackedExecutor``.  The bench therefore grew a
*plan-executor guard*: :func:`run_plan_guard` keeps a frozen copy of the
pre-IR hand-coded batched ring round (built on the same
``lockstep_ring_*`` primitives the compiler targets) and times it
interleaved with the plan executor in one process — the only comparison
that survives noisy shared machines.  The guard also asserts the two
produce bit-identical sign words and identical traffic/timeline charges.
Full mode asserts the executor stays within ``PLAN_OVERHEAD_CEILING``
(5%) of the hand-coded round; check mode records the ratio.

A measurement honesty note: earlier recordings timed each engine's rounds
back to back and reported a >= 4x batched-over-scalar speedup at M = 32.
Re-measuring with the engines *interleaved round by round* — so both
sample the same machine-noise windows — shows the two engines within a
few percent of each other in the quiet, memory-bound regime, and the
*pre-refactor hand-coded engines reproduce the same ~1x ratio*, so the
old figure reflected noise-window sampling, not engine cost.  The batched
engine's interpreter-overhead win is real only under CPU contention,
which cannot be asserted reliably, so the scalar-vs-batched speedup is
recorded for reference but no longer a hard floor.

Run the full benchmark (asserts the 5% plan-executor ceiling)::

    PYTHONPATH=src python benchmarks/bench_lockstep.py

or the seconds-long smoke mode the test suite wires in::

    PYTHONPATH=src python benchmarks/bench_lockstep.py --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np
import pytest

from repro.allreduce import get_topology
from repro.allreduce.ring import (
    PackedLaneGrid,
    lockstep_ring_all_gather,
    lockstep_ring_reduce_scatter,
)
from repro.bench import format_table, save_report
from repro.comm.bits import PackedBits, PackedBitsBatch
from repro.comm.cluster import Cluster
from repro.comm.timing import Phase
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer
from repro.core.sign_ops import merge_sign_bits_batch, transient_vector_batch
from repro.sched import get_executor
from repro.sched.plan import CompileContext

FULL_DIMENSION = 1_000_000
FULL_WORKERS = (8, 16, 32, 64)
CHECK_DIMENSION = 20_000
CHECK_WORKERS = (4, 8)
#: Plan executor vs the frozen hand-coded round, interleaved in-process
#: (full mode asserts; check-mode timings are noise and only recorded).
PLAN_OVERHEAD_CEILING = 1.05
GUARD_WORKERS = 32
GUARD_REPEATS = 5
_SEED = 7

_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_lockstep.json"


def _make_rngs(num_workers: int) -> list[np.random.Generator]:
    """Per-rank streams exactly as ``MarsitSynchronizer`` seeds them."""
    seeds = np.random.SeedSequence(_SEED).spawn(num_workers)
    return [np.random.default_rng(seed) for seed in seeds]


class _EngineRun:
    """One engine's persistent synchronizer + best-of round timings."""

    def __init__(self, engine: str, num_workers: int, dimension: int) -> None:
        self.cluster = Cluster(ring_topology(num_workers))
        self.sync = MarsitSynchronizer(
            MarsitConfig(
                global_lr=0.01, seed=_SEED, engine=engine,
                verify_consensus=False,
            ),
            num_workers,
            dimension,
        )
        self.best = float("inf")
        self.outputs: list[np.ndarray] = []
        self.digest: str | None = None

    def round(self, updates: np.ndarray, round_idx: int) -> None:
        start = time.perf_counter()
        report = self.sync.synchronize(self.cluster, updates, round_idx)
        self.best = min(self.best, time.perf_counter() - start)
        self.outputs.append(report.global_updates[0])
        self.digest = report.plan_digest


def run_rounds(dimension: int, workers: tuple[int, ...], rounds: int) -> dict:
    """Time scalar vs batched rounds per worker count; verify equivalence.

    The engines alternate round by round so their timings sample the same
    noise windows — timing one engine's rounds back to back and then the
    other's makes the ratio track machine load, not engine cost.
    """
    results: dict = {}
    rng = np.random.default_rng(5)
    for num_workers in workers:
        updates = rng.standard_normal((num_workers, dimension))
        old = _EngineRun("scalar", num_workers, dimension)
        new = _EngineRun("batched", num_workers, dimension)
        for round_idx in range(1, rounds + 1):
            old.round(updates, round_idx)
            new.round(updates, round_idx)
        for reference, candidate in zip(old.outputs, new.outputs):
            if not np.array_equal(reference, candidate):
                raise AssertionError(
                    f"batched engine diverged from scalar at M={num_workers}"
                )
        old_traffic = (old.cluster.total_bytes, old.cluster.total_messages)
        new_traffic = (new.cluster.total_bytes, new.cluster.total_messages)
        if old_traffic != new_traffic:
            raise AssertionError(
                f"traffic accounting diverged at M={num_workers}: "
                f"{old_traffic} vs {new_traffic}"
            )
        if old.digest != new.digest:
            raise AssertionError(
                f"plan digest diverged at M={num_workers}: "
                f"{old.digest} vs {new.digest}"
            )
        results[str(num_workers)] = {
            "old_s": old.best,
            "new_s": new.best,
            "speedup": old.best / max(new.best, 1e-12),
            "plan_digest": new.digest,
        }
    return results


# ----------------------------------------------------------------------
# Plan-executor guard: frozen hand-coded batched RAR round vs the
# LaneStackedExecutor interpreting the compiled ring plan.
# ----------------------------------------------------------------------


def _hand_coded_ring_round(
    cluster: Cluster,
    matrix: np.ndarray,
    rngs: list[np.random.Generator],
) -> PackedBits:
    """The pre-SyncPlan ``_one_bit_ring_batched`` body, frozen verbatim.

    Kept here (and only here) as the guard's reference: same schedule
    primitives, kernels, RNG stream order, and Section 4.1.1 charges the
    plan compiler emits, with zero plan interpretation in the loop.
    """
    size = matrix.shape[0]
    ranks = list(range(size))
    grid = PackedLaneGrid.from_sign_matrix(matrix, size)
    model = cluster.cost_model
    segment_elems = int(grid.lengths[0].max()) if grid.lengths.size else 0

    def combine(
        received: PackedBitsBatch,
        local: PackedBitsBatch,
        step: int,
        lane_ranks,
    ) -> PackedBitsBatch:
        transient = transient_vector_batch(
            local,
            received_weights=step + 1,
            local_weights=1,
            rngs=[rngs[rank] for rank in lane_ranks],
        )
        return merge_sign_bits_batch(received, local, transient)

    def charge_hop(step: int, transfer: float) -> None:
        overlapped = model.compress_time(segment_elems) + model.rng_time(
            segment_elems
        )
        cluster.charge(Phase.COMPRESSION, max(0.0, overlapped - transfer))
        cluster.charge(Phase.COMPRESSION, model.bitop_time(segment_elems))

    with cluster.obs.tracer.span("reduce-scatter", cat="phase", tag="m-rs"):
        cluster.charge(Phase.COMPRESSION, model.compress_time(segment_elems))
        lockstep_ring_reduce_scatter(
            cluster, [ranks], grid, combine, tag="m-rs", on_step_end=charge_hop
        )
    with cluster.obs.tracer.span("all-gather", cat="phase", tag="m-ag"):
        lockstep_ring_all_gather(cluster, [ranks], grid, tag="m-ag")
    return PackedBits.concat(grid.segments_of(0))


def run_plan_guard(
    dimension: int, num_workers: int = GUARD_WORKERS, repeats: int = GUARD_REPEATS
) -> dict:
    """Interleaved hand-coded vs plan-executor timing of one RAR round.

    Alternating the two variants inside one process makes the ratio robust
    to machine-level noise that sinks any cross-run comparison.  Also
    asserts bit-identical sign words and identical traffic + timeline.
    """
    matrix = np.random.default_rng(11).standard_normal((num_workers, dimension))
    plan = get_topology("ring").compile_one_bit(
        CompileContext(num_workers=num_workers, dimension=dimension)
    )
    executor = get_executor("batched")

    def time_hand() -> tuple[float, PackedBits, Cluster]:
        cluster = Cluster(ring_topology(num_workers))
        rngs = _make_rngs(num_workers)
        start = time.perf_counter()
        final = _hand_coded_ring_round(cluster, matrix, rngs)
        return time.perf_counter() - start, final, cluster

    def time_plan() -> tuple[float, PackedBits, Cluster]:
        cluster = Cluster(ring_topology(num_workers))
        rngs = _make_rngs(num_workers)
        start = time.perf_counter()
        final = executor.run_one_bit(
            plan, cluster, matrix, rngs, verify_consensus=False
        )
        return time.perf_counter() - start, final, cluster

    hand_best = plan_best = float("inf")
    for _ in range(repeats):
        hand_s, hand_final, hand_cluster = time_hand()
        plan_s, plan_final, plan_cluster = time_plan()
        hand_best = min(hand_best, hand_s)
        plan_best = min(plan_best, plan_s)
        if not hand_final.equals(plan_final):
            raise AssertionError(
                "plan executor diverged from the hand-coded round"
            )
        if (hand_cluster.total_bytes, hand_cluster.total_messages) != (
            plan_cluster.total_bytes,
            plan_cluster.total_messages,
        ):
            raise AssertionError("plan executor traffic accounting diverged")
        if hand_cluster.timeline.seconds != plan_cluster.timeline.seconds:
            raise AssertionError("plan executor timeline charges diverged")
    return {
        "dimension": dimension,
        "num_workers": num_workers,
        "plan_digest": plan.digest(),
        "hand_coded_s": hand_best,
        "plan_executor_s": plan_best,
        "overhead": plan_best / max(hand_best, 1e-12),
    }


def _write_json(payload_updates: dict) -> None:
    payload: dict = {}
    if _JSON_PATH.exists():
        try:
            payload = json.loads(_JSON_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.update(payload_updates)
    try:
        _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # read-only checkout: the printed table is still the output


def _report(mode: str, dimension: int, workers: dict, guard: dict) -> str:
    rows = [
        [
            f"M={num_workers}",
            f"{entry['old_s'] * 1e3:.1f}",
            f"{entry['new_s'] * 1e3:.1f}",
            f"{entry['speedup']:.1f}x",
        ]
        for num_workers, entry in workers.items()
    ]
    table = format_table(
        ["workers", "scalar ms/round", "batched ms/round", "speedup"], rows
    )
    guard_line = (
        f"plan-executor guard (M={guard['num_workers']}, interleaved): "
        f"hand-coded {guard['hand_coded_s'] * 1e3:.1f} ms, "
        f"plan {guard['plan_executor_s'] * 1e3:.1f} ms, "
        f"overhead {guard['overhead']:.3f}x"
    )
    return (
        f"Lockstep one-bit ring round wall-clock "
        f"({mode}, D={dimension})\n" + table + "\n" + guard_line
    )


def run_mode(mode: str) -> dict:
    """Run ``'full'`` or ``'check'`` mode; persist JSON + text results."""
    if mode == "full":
        # Best-of-5: machine noise swings multi-second runs several-fold,
        # so both engines need enough samples to catch a quiet window.
        dimension, workers, rounds = FULL_DIMENSION, FULL_WORKERS, 5
        guard_workers, repeats = GUARD_WORKERS, GUARD_REPEATS
    else:
        dimension, workers, rounds = CHECK_DIMENSION, CHECK_WORKERS, 2
        guard_workers, repeats = max(CHECK_WORKERS), 2
    per_worker = run_rounds(dimension, workers, rounds)
    guard = run_plan_guard(dimension, guard_workers, repeats)
    _write_json(
        {
            mode: {"dimension": dimension, "workers": per_worker},
            f"{mode}_plan_guard": guard,
        }
    )
    report = _report(mode, dimension, per_worker, guard)
    if mode == "full":
        save_report("lockstep", report)
    else:
        print(report)
    return {"workers": per_worker, "plan_guard": guard}


def _assert_full_floors(results: dict) -> None:
    guard = results["plan_guard"]
    assert guard["overhead"] <= PLAN_OVERHEAD_CEILING, guard


@pytest.mark.slow
def test_lockstep(benchmark):
    from benchmarks.conftest import run_once

    results = run_once(benchmark, lambda: run_mode("full"))
    _assert_full_floors(results)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="seconds-long smoke mode (small input, no speedup asserts)",
    )
    args = parser.parse_args()
    if args.check:
        run_mode("check")
        return
    _assert_full_floors(run_mode("full"))


if __name__ == "__main__":
    main()
