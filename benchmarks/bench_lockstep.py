"""Lockstep-engine benchmark: simulated one-bit round wall-clock vs workers.

PR 1 made every *kernel* 64-elements-per-op fast, which left the round loop
dominated by Python interpreter overhead: O(M) sends, recvs, merges and RNG
draws per synchronous step.  The lane-stacked engine collapses each step to
one batched numpy op over all (cycle, position) lanes, so a round's cost
stops scaling with worker count at the interpreter level.

This bench times one Marsit one-bit ring round old-vs-new at
M in {8, 16, 32, 64} workers, D = 1M elements.  Both engines consume
identical per-rank RNG streams, so before timing the bench asserts their
global updates, total bytes and total messages are exactly equal.  Results
go to ``benchmarks/results/lockstep.txt`` and machine-readable
``BENCH_lockstep.json`` at the repo root (separate ``full`` / ``check``
keys, like the packed-kernel bench).

Run the full benchmark (asserts the >= 4x floor at M = 32)::

    PYTHONPATH=src python benchmarks/bench_lockstep.py

or the seconds-long smoke mode the test suite wires in::

    PYTHONPATH=src python benchmarks/bench_lockstep.py --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np
import pytest

from repro.bench import format_table, save_report
from repro.comm.cluster import Cluster
from repro.comm.topology import ring_topology
from repro.core.marsit import MarsitConfig, MarsitSynchronizer

FULL_DIMENSION = 1_000_000
FULL_WORKERS = (8, 16, 32, 64)
CHECK_DIMENSION = 20_000
CHECK_WORKERS = (4, 8)
#: ISSUE acceptance floor, asserted in full mode only.
MIN_SPEEDUP_M32 = 4.0
_SEED = 7

_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_lockstep.json"


def _run_engine(
    engine: str, num_workers: int, dimension: int, updates: np.ndarray,
    rounds: int,
) -> tuple[float, list[np.ndarray], int, int]:
    """Best per-round seconds plus outputs/traffic for one engine."""
    cluster = Cluster(ring_topology(num_workers))
    sync = MarsitSynchronizer(
        MarsitConfig(
            global_lr=0.01, seed=_SEED, engine=engine, verify_consensus=False
        ),
        num_workers,
        dimension,
    )
    best = float("inf")
    outputs = []
    for round_idx in range(1, rounds + 1):
        start = time.perf_counter()
        report = sync.synchronize(cluster, updates, round_idx)
        best = min(best, time.perf_counter() - start)
        outputs.append(report.global_updates[0])
    return best, outputs, cluster.total_bytes, cluster.total_messages


def run_rounds(dimension: int, workers: tuple[int, ...], rounds: int) -> dict:
    """Time scalar vs batched rounds per worker count; verify equivalence."""
    results: dict = {}
    rng = np.random.default_rng(5)
    for num_workers in workers:
        updates = rng.standard_normal((num_workers, dimension))
        old_s, old_out, old_bytes, old_msgs = _run_engine(
            "scalar", num_workers, dimension, updates, rounds
        )
        new_s, new_out, new_bytes, new_msgs = _run_engine(
            "batched", num_workers, dimension, updates, rounds
        )
        for reference, candidate in zip(old_out, new_out):
            if not np.array_equal(reference, candidate):
                raise AssertionError(
                    f"batched engine diverged from scalar at M={num_workers}"
                )
        if (old_bytes, old_msgs) != (new_bytes, new_msgs):
            raise AssertionError(
                f"traffic accounting diverged at M={num_workers}: "
                f"{(old_bytes, old_msgs)} vs {(new_bytes, new_msgs)}"
            )
        results[str(num_workers)] = {
            "old_s": old_s,
            "new_s": new_s,
            "speedup": old_s / max(new_s, 1e-12),
        }
    return results


def _write_json(mode: str, dimension: int, workers: dict) -> None:
    payload: dict = {}
    if _JSON_PATH.exists():
        try:
            payload = json.loads(_JSON_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
    payload[mode] = {"dimension": dimension, "workers": workers}
    try:
        _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass  # read-only checkout: the printed table is still the output


def _report(mode: str, dimension: int, workers: dict) -> str:
    rows = [
        [
            f"M={num_workers}",
            f"{entry['old_s'] * 1e3:.1f}",
            f"{entry['new_s'] * 1e3:.1f}",
            f"{entry['speedup']:.1f}x",
        ]
        for num_workers, entry in workers.items()
    ]
    table = format_table(
        ["workers", "scalar ms/round", "batched ms/round", "speedup"], rows
    )
    return (
        f"Lockstep one-bit ring round wall-clock "
        f"({mode}, D={dimension})\n" + table
    )


def run_mode(mode: str) -> dict:
    """Run ``'full'`` or ``'check'`` mode; persist JSON + text results."""
    if mode == "full":
        dimension, workers, rounds = FULL_DIMENSION, FULL_WORKERS, 3
    else:
        dimension, workers, rounds = CHECK_DIMENSION, CHECK_WORKERS, 2
    results = run_rounds(dimension, workers, rounds)
    _write_json(mode, dimension, results)
    if mode == "full":
        save_report("lockstep", _report(mode, dimension, results))
    else:
        print(_report(mode, dimension, results))
    return results


@pytest.mark.slow
def test_lockstep(benchmark):
    from benchmarks.conftest import run_once

    results = run_once(benchmark, lambda: run_mode("full"))
    assert results["32"]["speedup"] >= MIN_SPEEDUP_M32


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="seconds-long smoke mode (small input, no speedup asserts)",
    )
    args = parser.parse_args()
    if args.check:
        run_mode("check")
        return
    results = run_mode("full")
    assert results["32"]["speedup"] >= MIN_SPEEDUP_M32, results


if __name__ == "__main__":
    main()
